#!/usr/bin/env python3
"""Reproduce the paper's Figure 1: CPPR flips which path is critical.

Two competing data paths:

* **path 1** crosses the clock tree (launch and capture share only the
  root) — no common clock segment, no pessimism;
* **path 2** stays under one skewed buffer — a large shared clock
  segment whose early/late spread is double-counted by plain STA.

Before CPPR the conventional analysis flags path 2 as the most critical;
after removing the common-path pessimism, path 1 is.  An optimization
flow trusting the pre-CPPR report would "fix" the wrong path.

Run:  python examples/paper_figure1.py
"""

from repro import (CpprEngine, Netlist, TimingAnalyzer, TimingConstraints,
                   format_path)


def build_design():
    netlist = Netlist("figure1")
    netlist.set_clock_root("clk")
    netlist.add_clock_buffer("b1", "clk", 1.0, 1.0)
    netlist.add_clock_buffer("b2", "clk", 1.0, 1.0)
    # b3's early/late spread is the "common path pessimism 2" of Fig. 1.
    netlist.add_clock_buffer("b3", "clk", 1.0, 3.0)
    for name, parent in [("ff1", "b1"), ("ff2", "b2"),
                         ("ff3", "b3"), ("ff4", "b3")]:
        netlist.add_flipflop(name)
        netlist.connect_clock(name, parent, 0.5, 0.5)
    netlist.add_gate("gA", 1, [(5.0, 5.0)])
    netlist.connect("ff1/Q", "gA/A0")
    netlist.connect("gA/Y", "ff2/D")
    netlist.add_gate("gB", 1, [(3.2, 3.2)])
    netlist.connect("ff3/Q", "gB/A0")
    netlist.connect("gB/Y", "ff4/D")
    return netlist.elaborate()


def main():
    analyzer = TimingAnalyzer(build_design(), TimingConstraints(10.0))
    graph = analyzer.graph

    path1 = [graph.pin(p).index for p in ("ff1/Q", "gA/A0", "gA/Y",
                                          "ff2/D")]
    path2 = [graph.pin(p).index for p in ("ff3/Q", "gB/A0", "gB/Y",
                                          "ff4/D")]

    print("                         path 1 (ff1->ff2)   path 2 (ff3->ff4)")
    pre1 = analyzer.path_pre_cppr_slack(path1, "setup")
    pre2 = analyzer.path_pre_cppr_slack(path2, "setup")
    print(f"pre-CPPR slack               {pre1:+.3f}             "
          f"{pre2:+.3f}   <- path 2 looks critical")
    credit1 = analyzer.path_credit(path1)
    credit2 = analyzer.path_credit(path2)
    print(f"common-path pessimism        {credit1:+.3f}             "
          f"{credit2:+.3f}")
    post1 = analyzer.path_post_cppr_slack(path1, "setup")
    post2 = analyzer.path_post_cppr_slack(path2, "setup")
    print(f"post-CPPR slack              {post1:+.3f}             "
          f"{post2:+.3f}   <- path 1 actually is")
    print()

    worst = CpprEngine(analyzer).worst_path("setup")
    print("The engine's global most-critical post-CPPR path:")
    print(format_path(analyzer, worst))


if __name__ == "__main__":
    main()
