#!/usr/bin/env python3
"""Compare all four CPPR timer architectures on a generated design.

Builds one of the scaled Table III suite designs, prints its statistics,
and measures each timer at increasing path counts — a miniature of the
paper's Table IV, runnable in under a minute.

Run:  python examples/design_exploration.py [design] [scale]
      python examples/design_exploration.py combo4v2 0.5
"""

import sys

from repro import (BlockBasedTimer, BranchBoundTimer, CpprEngine,
                   PairEnumTimer, TimingAnalyzer, design_statistics)
from repro.utils.measure import measure_runtime
from repro.workloads.stats import DesignStats
from repro.workloads.suite import build_design, design_names


def main():
    design = sys.argv[1] if len(sys.argv) > 1 else "combo4v2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if design not in design_names():
        raise SystemExit(f"unknown design {design!r}; "
                         f"choose from {design_names()}")

    graph, constraints = build_design(design, scale=scale)
    print(DesignStats.header())
    print(design_statistics(graph).row())
    print(f"clock period: {constraints.clock_period:.3f}")
    print()

    analyzer = TimingAnalyzer(graph, constraints)
    timers = {
        "ours (CpprEngine)": CpprEngine(analyzer),
        "pair-enumeration": PairEnumTimer(analyzer),
        "block-based": BlockBasedTimer(analyzer),
        "branch-and-bound": BranchBoundTimer(analyzer),
    }

    print(f"{'timer':<22} {'k=1':>9} {'k=20':>9} {'k=200':>9}   "
          f"worst post-CPPR slack")
    reference = None
    for name, timer in timers.items():
        cells = []
        worst = None
        for k in (1, 20, 200):
            result = measure_runtime(
                lambda t=timer, kk=k: t.top_slacks(kk, "setup"))
            cells.append(f"{result.seconds:8.3f}s")
            worst = result.value[0]
        if reference is None:
            reference = worst
        agree = "" if abs(worst - reference) < 1e-9 else "  MISMATCH!"
        print(f"{name:<22} {' '.join(cells)}   {worst:+.4f}{agree}")

    print()
    print("All four timers are exact; they differ only in time and "
          "memory. The engine's advantage grows with design size, k, "
          "and FF connectivity (try leon2).")


if __name__ == "__main__":
    main()
