#!/usr/bin/env python3
"""Targeted queries for ECO-style work: one endpoint, one register pair.

After a timing fix you rarely want the global report again — you want
"did *this* register's worst path improve?" and "how critical is the
transfer from ff_i to ff_j now?".  This example answers both with
:func:`repro.endpoint_paths` and :func:`repro.pair_paths`, then
cross-checks the pair result against the global view.

Run:  python examples/eco_queries.py
"""

from repro import (CpprEngine, TimingAnalyzer, endpoint_paths,
                   format_path, pair_paths)
from repro.workloads.suite import build_design


def main():
    graph, constraints = build_design("combo4v2", scale=0.4)
    analyzer = TimingAnalyzer(graph, constraints)
    print(graph.describe())
    print()

    # Find the globally worst capture register first.
    worst = CpprEngine(analyzer).worst_path("setup")
    capture = graph.ffs[worst.capture_ff]
    print(f"globally worst setup path captures at {capture.name} "
          f"(slack {worst.slack:+.4f})")
    print()

    # Question 1: the five worst paths into that register.
    print(f"worst paths into {capture.name}:")
    for rank, path in enumerate(
            endpoint_paths(analyzer, capture.index, 5, "setup"), start=1):
        launch = ("PI" if path.launch_ff is None
                  else graph.ffs[path.launch_ff].name)
        print(f"  {rank}. from {launch:<8} slack {path.slack:+.4f} "
              f"(credit {path.credit:+.3f}, {len(path.pins)} pins)")
    print()

    # Question 2: drill into the single worst launch/capture pair.
    launch = graph.ffs[worst.launch_ff]
    pair = pair_paths(analyzer, launch.index, capture.index, 3, "setup")
    print(f"top paths for the pair {launch.name} -> {capture.name}:")
    for path in pair:
        print(format_path(analyzer, path))
        print()

    # The pair's best path must be the global worst path.
    assert pair[0].pins == worst.pins
    assert abs(pair[0].slack - worst.slack) < 1e-9
    print("pair query agrees with the global engine: OK")


if __name__ == "__main__":
    main()
