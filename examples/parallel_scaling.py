#!/usr/bin/env python3
"""Level-parallel CPPR: scale the engine across worker processes.

The paper's Algorithm 1 performs D+2 independent passes (one per clock-
tree level plus the self-loop and primary-input families).  This example
sweeps the worker count on the scaled leon2 design — a miniature of the
paper's Figure 6.  CPython's GIL means real speedup needs the ``fork``
*process* executor; the ``thread`` executor exists for API parity and is
shown for comparison.

Run:  python examples/parallel_scaling.py
"""

import os

from repro import CpprEngine, CpprOptions, TimingAnalyzer
from repro.cppr.parallel import available_executors
from repro.utils.measure import measure_runtime
from repro.workloads.suite import build_design

K = 100


def main():
    graph, constraints = build_design("leon2", scale=0.6)
    analyzer = TimingAnalyzer(graph, constraints)
    analyzer.graph.topo_order  # pay shared setup once, outside timing
    print(graph.describe())
    print(f"executors available here: {available_executors()}")
    cpus = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity") else os.cpu_count()
    print(f"usable CPU cores: {cpus}")
    if cpus == 1:
        print("NOTE: with a single core, process workers can only add "
              "overhead; on a multicore machine the per-level passes "
              "scale like the paper's Figure 6.")
    print()

    serial = CpprEngine(analyzer)
    base = measure_runtime(lambda: serial.top_slacks(K, "setup"))
    print(f"{'serial':<16} {base.seconds:7.3f}s   1.00x")
    reference = base.value

    configs = [("thread x4", CpprOptions(executor="thread", workers=4))]
    if "process" in available_executors():
        configs += [(f"process x{w}",
                     CpprOptions(executor="process", workers=w))
                    for w in (2, 4, 8)]

    for label, options in configs:
        engine = CpprEngine(analyzer, options)
        result = measure_runtime(lambda: engine.top_slacks(K, "setup"))
        match = "" if result.value == reference else "  RESULT MISMATCH!"
        print(f"{label:<16} {result.seconds:7.3f}s   "
              f"{base.seconds / result.seconds:4.2f}x{match}")

    print()
    print("Threads show no speedup (GIL-bound pure-Python CPU work); "
          "fork processes parallelize the independent per-level passes "
          "the way the paper's threads do.")


if __name__ == "__main__":
    main()
