// A 3-stage pipelined datapath with a buffered clock network.
module pipeline (clk, in_a, in_b, in_sel, dout);
  input clk, in_a, in_b, in_sel;
  output dout;
  wire ck_root, ck_left, ck_right;
  wire s0_and, s0_xor, s0_mix;
  wire q0, q1, q2;
  wire s1_inv, s1_nor;
  wire q3, q4;
  wire s2_or;

  // clock network: one root buffer fanning out to two branch buffers
  BUF_X4 cb_root  (.A0(clk),     .Y(ck_root));
  BUF_X2 cb_left  (.A0(ck_root), .Y(ck_left));
  BUF_X2 cb_right (.A0(ck_root), .Y(ck_right));

  // stage 0
  AND2_X1 g0 (.A0(in_a),   .A1(in_b), .Y(s0_and));
  XOR2_X1 g1 (.A0(in_a),   .A1(in_sel), .Y(s0_xor));
  NAND2_X2 g2 (.A0(s0_and), .A1(s0_xor), .Y(s0_mix));
  DFF_X1 r0 (.CK(ck_left),  .D(s0_and), .Q(q0));
  DFF_X1 r1 (.CK(ck_left),  .D(s0_xor), .Q(q1));
  DFF_X2 r2 (.CK(ck_right), .D(s0_mix), .Q(q2));

  // stage 1
  INV_X1  g3 (.A0(q0), .Y(s1_inv));
  NOR2_X1 g4 (.A0(s1_inv), .A1(q1), .Y(s1_nor));
  DFF_X1 r3 (.CK(ck_left),  .D(s1_nor), .Q(q3));
  DFF_X1 r4 (.CK(ck_right), .D(q2),     .Q(q4));

  // stage 2
  OR2_X1 g5 (.A0(q3), .A1(q4), .Y(s2_or));
  BUF_X1 g6 (.A0(s2_or), .Y(dout));
endmodule
