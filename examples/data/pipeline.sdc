# constraints for the pipeline example
create_clock -period 3.2 -name core_clk [get_ports clk]
set_input_delay 0.40 -clock core_clk [get_ports in_a]
set_input_delay 0.15 -min -clock core_clk [get_ports in_a]
set_input_delay 0.35 -clock core_clk [get_ports in_b]
set_input_delay 0.50 -clock core_clk [get_ports in_sel]
set_output_delay 0.60 -clock core_clk [get_ports dout]
set_output_delay 0.05 -min -clock core_clk [get_ports dout]
