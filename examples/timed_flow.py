#!/usr/bin/env python3
"""The timed flow: delays computed from slews, loads, and OCV derates.

Same pipeline example as ``verilog_flow.py``, but instead of the
library's fixed delays, every arc — clock buffers included — is timed by
the NLDM delay calculator.  The on-chip-variation derates create the
early/late spread on the clock network, so the CPPR credits in the
report *emerge* from the variation model: widen the derates and watch
the removed pessimism grow.

Run:  python examples/timed_flow.py
"""

from pathlib import Path

from repro import CpprEngine, TimingAnalyzer
from repro.delaycalc import (Derates, WireLoadModel, default_timing,
                             read_timed_design)
from repro.library.standard import default_library

DATA = Path(__file__).parent / "data"


def analyze(derates: Derates):
    library = default_library()
    timing = default_timing(library, derates)
    design, constraints, calculated = read_timed_design(
        DATA / "pipeline.v", DATA / "pipeline.sdc", library, timing,
        wire_model=WireLoadModel(base_cap=0.2, cap_per_fanout=0.4))
    analyzer = TimingAnalyzer(design.graph, constraints)
    worst = CpprEngine(analyzer).worst_path("hold")
    return design, calculated, worst


def main():
    library = default_library()
    print("nominal delay of NAND2_X1 input-0 rise arc at a few "
          "(slew, load) points:")
    arc = default_timing(library).cell("NAND2_X1").rise[0]
    for slew in (0.02, 0.2):
        for load in (0.5, 4.0):
            print(f"  slew={slew:<5} load={load:<4} -> "
                  f"{arc.delay.lookup(slew, load):.4f}")
    print()

    print(f"{'derates':<14} {'worst hold slack':>17} "
          f"{'credit on worst path':>21}")
    for early, late in ((0.95, 1.05), (0.9, 1.12), (0.8, 1.25)):
        design, calculated, worst = analyze(Derates(early, late))
        print(f"{early:>5} / {late:<6} {worst.slack:>+17.4f} "
              f"{worst.credit:>+21.4f}")
    print()
    print("wider variation -> larger clock-path credits -> more "
          "pessimism for CPPR to remove.")

    design, calculated, worst = analyze(Derates(0.8, 1.25))
    print()
    print("worst hold path at the widest derates:")
    print(f"  {design.pretty_path(worst)}")
    print(f"  pre-CPPR {worst.pre_cppr_slack:+.4f}  "
          f"credit {worst.credit:+.4f}  post-CPPR {worst.slack:+.4f}")
    heaviest = max(calculated.net_loads, key=calculated.net_loads.get)
    print(f"  heaviest net: {heaviest} "
          f"(load {calculated.net_loads[heaviest]:.2f})")


if __name__ == "__main__":
    main()
