#!/usr/bin/env python3
"""Quickstart: build a small design, run CPPR, read the report.

This walks the full public API surface in ~60 lines:

1. describe a netlist (clock tree, flip-flops, gates, nets),
2. elaborate it into a timing graph,
3. wrap it in a :class:`TimingAnalyzer` with a clock period,
4. ask :class:`CpprEngine` for the top-k post-CPPR critical paths,
5. print a human-readable report.

Run:  python examples/quickstart.py
"""

from repro import (CpprEngine, Netlist, TimingAnalyzer, TimingConstraints,
                   format_path_report)


def build_design():
    netlist = Netlist("quickstart")

    # Clock distribution: a root driving two buffers, two flip-flops
    # under each.  Early/late delay pairs model on-chip variation; the
    # early/late *difference* along a shared clock segment is exactly the
    # pessimism CPPR later removes.
    netlist.set_clock_root("clk")
    netlist.add_clock_buffer("buf_left", "clk", 1.0, 1.6)
    netlist.add_clock_buffer("buf_right", "clk", 1.0, 1.2)
    for name, parent in [("ff_a", "buf_left"), ("ff_b", "buf_left"),
                         ("ff_c", "buf_right"), ("ff_d", "buf_right")]:
        netlist.add_flipflop(name, t_setup=0.25, t_hold=0.1,
                             clk_to_q=(0.2, 0.35))
        netlist.connect_clock(name, parent, 0.5, 0.8)

    # Data path: ff_a -> u1 -> ff_b stays inside the left subtree (large
    # shared clock path, large credit); ff_a -> u1 -> u2 -> ff_d crosses
    # to the right subtree (only the root is shared, no credit).
    netlist.add_gate("u1", num_inputs=1, arc_delays=[(1.2, 2.4)])
    netlist.connect("ff_a/Q", "u1/A0", 0.1, 0.15)
    netlist.connect("u1/Y", "ff_b/D", 0.1, 0.2)
    netlist.add_gate("u2", num_inputs=1, arc_delays=[(0.8, 1.1)])
    netlist.connect("u1/Y", "u2/A0", 0.05, 0.1)
    netlist.connect("u2/Y", "ff_d/D", 0.1, 0.2)

    # A primary input feeding ff_c: PI paths have no pessimism to remove.
    netlist.add_primary_input("din", at_early=0.0, at_late=0.4)
    netlist.add_gate("u3", num_inputs=1, arc_delays=[(0.9, 1.3)])
    netlist.connect("din", "u3/A0")
    netlist.connect("u3/Y", "ff_c/D", 0.1, 0.2)

    return netlist.elaborate()


def main():
    graph = build_design()
    print(graph.describe())
    print()

    analyzer = TimingAnalyzer(graph, TimingConstraints(clock_period=6.0))

    # Pre-CPPR: the conventional, pessimistic view.
    worst = analyzer.worst_endpoint("setup")
    print(f"worst pre-CPPR setup endpoint: {worst.name} "
          f"(slack {worst.slack:+.3f})")
    print()

    # Post-CPPR: the paper's engine.
    engine = CpprEngine(analyzer)
    for mode in ("setup", "hold"):
        paths = engine.top_paths(k=3, mode=mode)
        print(format_path_report(
            analyzer, paths,
            title=f"Top-3 post-CPPR {mode} paths"))


if __name__ == "__main__":
    main()
