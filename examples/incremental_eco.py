#!/usr/bin/env python3
"""An ECO loop: find the worst path, fix it, re-analyze incrementally.

A miniature engineering-change-order flow:

1. run CPPR, find the most critical post-CPPR path;
2. "fix" it by speeding up its slowest data edge (as resizing the
   driving gate would);
3. derive an updated timing graph with
   :func:`repro.sta.incremental.apply_delay_updates` — untouched
   structure is shared, nothing is rebuilt;
4. repeat until the worst slack is positive or the budget runs out.

Run:  python examples/incremental_eco.py
"""

from repro import CpprEngine, TimingAnalyzer
from repro.sta.incremental import DelayUpdate, apply_delay_updates
from repro.workloads.suite import build_design

MAX_FIXES = 15
SPEEDUP = 0.6  # each fix scales the chosen edge's delays by this factor


def slowest_edge(graph, path, mode="setup"):
    """The (driver, sink, early, late) of the path's slowest data edge."""
    best = None
    for u, v in zip(path.pins, path.pins[1:]):
        early, late = next((e, l) for t, e, l in graph.fanout[u] if t == v)
        if best is None or late > best[3]:
            best = (u, v, early, late)
    return best


def main():
    graph, constraints = build_design("vga_lcdv2", scale=0.5)
    print(graph.describe())
    print()
    print(f"{'iter':>4} {'worst slack':>12}  fix")

    for iteration in range(MAX_FIXES):
        analyzer = TimingAnalyzer(graph, constraints)
        worst = CpprEngine(analyzer).worst_path("setup")
        if worst.slack >= 0:
            print(f"{iteration:>4} {worst.slack:>+12.4f}  "
                  f"timing met, done")
            break
        u, v, early, late = slowest_edge(graph, worst)
        print(f"{iteration:>4} {worst.slack:>+12.4f}  speed up "
              f"{graph.pin_name(u)} -> {graph.pin_name(v)} "
              f"({late:.3f} -> {late * SPEEDUP:.3f})")
        graph = apply_delay_updates(
            graph, [DelayUpdate(u, v, early * SPEEDUP, late * SPEEDUP)])
    else:
        analyzer = TimingAnalyzer(graph, constraints)
        final = CpprEngine(analyzer).worst_path("setup")
        print(f"fix budget exhausted; final worst slack "
              f"{final.slack:+.4f}")


if __name__ == "__main__":
    main()
