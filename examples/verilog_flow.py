#!/usr/bin/env python3
"""The file-based flow: Verilog netlist + SDC constraints -> CPPR report.

Reads ``examples/data/pipeline.v`` (a 3-stage pipelined datapath with a
buffered clock network) and its SDC file, recovers the clock tree from
the netlist's buffer chain, expands every signal into rise/fall
transitions with library-driven unateness, and reports the post-CPPR
critical paths with transitions annotated.

Run:  python examples/verilog_flow.py [design.v design.sdc]
"""

import sys
from pathlib import Path

from repro import CpprEngine, TimingAnalyzer, design_statistics
from repro.io.flow import read_design
from repro.library.standard import default_library

DATA = Path(__file__).parent / "data"


def main():
    if len(sys.argv) == 3:
        verilog_path, sdc_path = sys.argv[1], sys.argv[2]
    else:
        verilog_path = DATA / "pipeline.v"
        sdc_path = DATA / "pipeline.sdc"

    library = default_library()
    design, constraints = read_design(verilog_path, sdc_path, library)
    graph = design.graph

    print(f"read {verilog_path}")
    print(f"  {graph.describe()}")
    print(f"  clock period {constraints.clock_period} "
          f"(from {sdc_path})")
    tree = graph.clock_tree
    buffers = [name for name, ff in zip(tree.names, tree.ff_of_node)
               if ff < 0 and not name.endswith("@ck")][1:]
    print(f"  recovered clock buffers: {', '.join(buffers)}")
    stats = design_statistics(graph)
    print(f"  FF connectivity {stats.ff_connectivity:.2f}, "
          f"D = {stats.num_levels}")
    print()

    analyzer = TimingAnalyzer(graph, constraints)
    engine = CpprEngine(analyzer)
    for mode in ("setup", "hold"):
        print(f"top-3 post-CPPR {mode} paths:")
        for rank, path in enumerate(engine.top_paths(3, mode), start=1):
            print(f"  {rank}. slack {path.slack:+.4f} "
                  f"(credit {path.credit:+.3f})")
            print(f"     {design.pretty_path(path)}")
        print()


if __name__ == "__main__":
    main()
