#!/usr/bin/env python3
"""Design file I/O: save a generated design, reload it, verify timing.

Demonstrates both on-disk formats (the TAU-style ``.cppr`` text format
and JSON) and shows that a round-trip preserves every post-CPPR slack
bit-for-bit.

Run:  python examples/file_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro import (CpprEngine, TimingAnalyzer, load_design,
                   load_design_json, save_design, save_design_json)
from repro.workloads.suite import build_design


def main():
    graph, constraints = build_design("vga_lcdv2", scale=0.3)
    analyzer = TimingAnalyzer(graph, constraints)
    original = CpprEngine(analyzer).top_slacks(10, "setup")
    print(f"original design: {graph.describe()}")
    print(f"top-10 post-CPPR setup slacks: "
          f"{[round(s, 3) for s in original]}")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        text_path = Path(tmp) / "design.cppr"
        json_path = Path(tmp) / "design.json"

        save_design(graph, constraints, text_path)
        save_design_json(graph, constraints, json_path)
        print(f"text format:  {text_path.stat().st_size:>8} bytes")
        print(f"json format:  {json_path.stat().st_size:>8} bytes")
        print()
        print("first lines of the text format:")
        for line in text_path.read_text().splitlines()[:6]:
            print(f"  {line}")
        print()

        for label, loader, path in [("text", load_design, text_path),
                                    ("json", load_design_json, json_path)]:
            new_graph, new_constraints = loader(path)
            reloaded = CpprEngine(
                TimingAnalyzer(new_graph, new_constraints)
            ).top_slacks(10, "setup")
            status = "OK" if reloaded == original else "MISMATCH"
            print(f"{label} round-trip: top-10 slacks identical: {status}")


if __name__ == "__main__":
    main()
