"""The ``propagation`` stage's maintained state, and its dirty replay.

A :class:`ModeState` holds everything the candidate passes would have
propagated for one analysis mode: the dual-tuple columns of every
clock-tree level plus the single-tuple self-loop / primary-input
columns, each with its launch-seed map and (on the array substrate) its
deviation-cost column.  Built once per mode via the ordinary producers
— the batched ``(D, n)`` sweep or the scalar per-level passes — and
then *maintained* across delay edits by :func:`replay`.

Replay is exact, not approximate, because the dual-tuple state is an
**order-independent function of each pin's candidate multiset** (the
correctness anchor of :mod:`repro.core.propagate`): ``best`` is the
lexicographically most pessimistic candidate — time, then smaller
from-pin, then smaller group — and ``fallback`` the most pessimistic
whose group differs from ``best``'s.  A pin's candidates are its launch
seed plus, per fanin edge, the source's two tuples shifted by the edge
delay (the same two-operand ``t + delay`` the producers compute).
Recomputing the winners directly at each dirty pin, in topological
order so sources are final first, therefore lands bit-for-bit in the
state a from-scratch sweep of the edited graph would produce.

:class:`SessionBatch` then serves the maintained columns back to the
unmodified candidate passes through the same ``batch`` protocol the
batched sweep uses (and the ``arrays=`` parameter of the single-tuple
passes), so a re-run family is the fresh engine's result by
construction.
"""

from __future__ import annotations

import math

from repro.circuit.graph import TimingGraph
from repro.cppr.grouping import group_for_level
from repro.obs import collector as _obs
from repro.cppr.propagation import (DualArrivalArrays, Seed,
                                    SingleArrivalArrays, propagate_dual,
                                    propagate_single)
from repro.cppr.tuples import NO_GROUP, NO_NODE
from repro.sta.modes import AnalysisMode

__all__ = ["LevelState", "ModeState", "SessionBatch", "build_mode_state",
           "diff_states", "refresh_costs", "replay", "reseed"]

_INF = float("inf")


class LevelState:
    """One level's dual-tuple columns, seeds, and cost column."""

    __slots__ = ("time0", "from0", "group0", "time1", "from1", "group1",
                 "cost0", "seeds", "num_seeds")

    def __init__(self, time0, from0, group0, time1, from1, group1,
                 cost0, seeds, num_seeds) -> None:
        self.time0 = time0
        self.from0 = from0
        self.group0 = group0
        self.time1 = time1
        self.from1 = from1
        self.group1 = group1
        self.cost0 = cost0
        self.seeds = seeds
        self.num_seeds = num_seeds


class SingleState:
    """One ungrouped family's single-tuple columns, seeds, and costs."""

    __slots__ = ("time", "from_pin", "cost0", "seeds")

    def __init__(self, time, from_pin, cost0, seeds) -> None:
        self.time = time
        self.from_pin = from_pin
        self.cost0 = cost0
        self.seeds = seeds


class ModeState:
    """All maintained propagation state for one analysis mode.

    Row indexing convention (shared with :mod:`repro.pipeline.bounds`
    and the session's change tracking): rows ``0 .. D-1`` are the level
    states, row ``D`` the self-loop state, row ``D+1`` the
    primary-input state.  Disabled single families hold ``None``.
    """

    __slots__ = ("mode", "levels", "self_loop", "primary_input")

    def __init__(self, mode: AnalysisMode, levels: list[LevelState],
                 self_loop: SingleState | None,
                 primary_input: SingleState | None) -> None:
        self.mode = mode
        self.levels = levels
        self.self_loop = self_loop
        self.primary_input = primary_input

    @property
    def num_rows(self) -> int:
        return len(self.levels) + 2

    def row(self, index: int) -> LevelState | SingleState | None:
        if index < len(self.levels):
            return self.levels[index]
        if index == len(self.levels):
            return self.self_loop
        return self.primary_input


# ----------------------------------------------------------------------
# Seed maps — the exact per-pin launch tuples the producers scatter
# ----------------------------------------------------------------------
def _level_seed_map(graph: TimingGraph, mode: AnalysisMode, grouping
                    ) -> dict[int, tuple[float, int, int]]:
    tree = graph.clock_tree
    is_setup = mode.is_setup
    seeds: dict[int, tuple[float, int, int]] = {}
    for ff in graph.ffs:
        if not grouping.participates(ff.index):
            continue
        node = ff.tree_node
        offset = grouping.launch_offset[ff.index]
        if is_setup:
            q_at = tree.at_late(node) + ff.clk_to_q_late - offset
        else:
            q_at = tree.at_early(node) + ff.clk_to_q_early + offset
        seeds[ff.q_pin] = (q_at, ff.ck_pin, grouping.group[ff.index])
    return seeds


def _self_loop_seed_map(graph: TimingGraph, mode: AnalysisMode
                        ) -> dict[int, tuple[float, int]]:
    tree = graph.clock_tree
    is_setup = mode.is_setup
    seeds: dict[int, tuple[float, int]] = {}
    for ff in graph.ffs:
        node = ff.tree_node
        credit = tree.credit(node)
        if is_setup:
            q_at = tree.at_late(node) + ff.clk_to_q_late - credit
        else:
            q_at = tree.at_early(node) + ff.clk_to_q_early + credit
        seeds[ff.q_pin] = (q_at, ff.ck_pin)
    return seeds


def _pi_seed_map(graph: TimingGraph, mode: AnalysisMode
                 ) -> dict[int, tuple[float, int]]:
    is_setup = mode.is_setup
    return {pi.pin: ((pi.at_late if is_setup else pi.at_early), NO_NODE)
            for pi in graph.primary_inputs}


def _single_state(graph: TimingGraph, mode: AnalysisMode, substrate: str,
                  seed_map: dict[int, tuple[float, int]]) -> SingleState:
    seeds = [Seed(pin, t, frm) for pin, (t, frm) in seed_map.items()]
    arrays = propagate_single(graph, mode, seeds, substrate)
    cost0 = arrays.fast.cost0 if arrays.fast is not None else None
    return SingleState(arrays.time, arrays.from_pin, cost0, seed_map)


def build_mode_state(graph: TimingGraph, mode: AnalysisMode,
                     substrate: str, include_self_loops: bool,
                     include_primary_inputs: bool) -> ModeState:
    """Build the mode's full state via the ordinary producers."""
    mode = AnalysisMode.coerce(mode)
    tree = graph.clock_tree
    num_levels = tree.num_levels
    num_ffs = graph.num_ffs
    levels: list[LevelState] = []

    if substrate == "array":
        from repro.core.batched import propagate_dual_batched
        batch = propagate_dual_batched(graph, mode)
        for d in range(num_levels):
            seeds = _level_seed_map(graph, mode, batch.grouping(d))
            levels.append(LevelState(
                batch.time0[d].tolist(), batch.from0[d].tolist(),
                batch.group0[d].tolist(), batch.time1[d].tolist(),
                batch.from1[d].tolist(), batch.group1[d].tolist(),
                batch.cost0[d].tolist(), seeds, batch.num_seeds(d)))
    else:
        for d in range(num_levels):
            grouping = group_for_level(tree, d, num_ffs, substrate)
            seed_map = _level_seed_map(graph, mode, grouping)
            seeds = [Seed(pin, t, frm, gid)
                     for pin, (t, frm, gid) in seed_map.items()]
            arrays = propagate_dual(graph, mode, seeds, substrate)
            cost0 = (arrays.fast.cost0 if arrays.fast is not None
                     else None)
            levels.append(LevelState(
                arrays.time0, arrays.from0, arrays.group0, arrays.time1,
                arrays.from1, arrays.group1, cost0, seed_map,
                len(seeds)))

    self_loop = (_single_state(graph, mode, substrate,
                               _self_loop_seed_map(graph, mode))
                 if include_self_loops else None)
    primary_input = (_single_state(graph, mode, substrate,
                                   _pi_seed_map(graph, mode))
                     if include_primary_inputs else None)
    return ModeState(mode, levels, self_loop, primary_input)


def reseed(state: ModeState, graph: TimingGraph, substrate: str) -> None:
    """Recompute every launch-seed map against the graph's current tree.

    Used after a clock update: group *structure* is topology-keyed and
    unchanged, but arrivals, credits, and launch offsets moved for the
    flip-flops under the edited subtree.  The affected Q pins then enter
    the dirty cone so :func:`replay` refolds the new seeds into the
    state.
    """
    tree = graph.clock_tree
    num_ffs = graph.num_ffs
    backend = "array" if substrate == "array" else "scalar"
    for d, level in enumerate(state.levels):
        grouping = group_for_level(tree, d, num_ffs, backend)
        level.seeds = _level_seed_map(graph, state.mode, grouping)
    if state.self_loop is not None:
        state.self_loop.seeds = _self_loop_seed_map(graph, state.mode)
    if state.primary_input is not None:
        state.primary_input.seeds = _pi_seed_map(graph, state.mode)


# ----------------------------------------------------------------------
# Canonical per-pin recompute (the replay kernel)
# ----------------------------------------------------------------------
def _dual_winners(cands: list[tuple[float, int, int]], is_setup: bool):
    best = cands[0]
    for c in cands:
        t, f, g = c
        bt, bf, bg = best
        if (((t > bt) if is_setup else (t < bt))
                or (t == bt and (f < bf or (f == bf and g < bg)))):
            best = c
    fb = None
    bg = best[2]
    for c in cands:
        if c[2] == bg:
            continue
        if fb is None:
            fb = c
            continue
        t, f, g = c
        ft, ff_, fg = fb
        if (((t > ft) if is_setup else (t < ft))
                or (t == ft and (f < ff_ or (f == ff_ and g < fg)))):
            fb = c
    return best, fb


def replay(state: ModeState, graph: TimingGraph, cone: list[int]
           ) -> tuple[list[set[int]], list[dict[int, float]]]:
    """Directly recompute every row's tuples at the cone's pins.

    ``cone`` must be in topological order (see
    :func:`repro.pipeline.dirty.fanout_cone`).  Returns per-row
    ``changed`` pin sets and the pins' pre-replay primary times (the
    pessimization inputs for :mod:`repro.pipeline.bounds`).
    """
    mode = state.mode
    is_setup = mode.is_setup
    empty = mode.empty_time
    fanin = graph.fanin
    levels = state.levels
    num_levels = len(levels)
    changed: list[set[int]] = [set() for _ in range(num_levels + 2)]
    old_times: list[dict[int, float]] = [{} for _ in range(num_levels + 2)]

    col = _obs.ACTIVE
    if col is not None:
        # One replayed cell per (pin, row): D level rows plus the
        # self-loop and primary-input rows.
        col.add("replay.pins", len(cone))
        col.add("replay.cells", len(cone) * (num_levels + 2))

    singles = ((num_levels, state.self_loop),
               (num_levels + 1, state.primary_input))

    for pin in cone:
        fanin_row = fanin[pin]
        for d, level in enumerate(levels):
            cands: list[tuple[float, int, int]] = []
            seed = level.seeds.get(pin)
            if seed is not None:
                cands.append(seed)
            time0 = level.time0
            time1 = level.time1
            for w, delay_early, delay_late in fanin_row:
                delay = delay_late if is_setup else delay_early
                t0 = time0[w]
                if t0 == empty:
                    continue
                cands.append((t0 + delay, w, level.group0[w]))
                t1 = time1[w]
                if t1 != empty:
                    cands.append((t1 + delay, w, level.group1[w]))
            if cands:
                best, fb = _dual_winners(cands, is_setup)
            else:
                best, fb = None, None
            n0 = best if best is not None else (empty, NO_NODE, NO_GROUP)
            n1 = fb if fb is not None else (empty, NO_NODE, NO_GROUP)
            if (time0[pin] != n0[0] or level.from0[pin] != n0[1]
                    or level.group0[pin] != n0[2] or time1[pin] != n1[0]
                    or level.from1[pin] != n1[1]
                    or level.group1[pin] != n1[2]):
                changed[d].add(pin)
                old_times[d].setdefault(pin, time0[pin])
                time0[pin] = n0[0]
                level.from0[pin] = n0[1]
                level.group0[pin] = n0[2]
                time1[pin] = n1[0]
                level.from1[pin] = n1[1]
                level.group1[pin] = n1[2]

        for row_index, single in singles:
            if single is None:
                continue
            time = single.time
            bt = empty
            bf = NO_NODE
            seed = single.seeds.get(pin)
            if seed is not None:
                bt, bf = seed
            for w, delay_early, delay_late in fanin_row:
                tw = time[w]
                if tw == empty:
                    continue
                t = tw + (delay_late if is_setup else delay_early)
                if (bt == empty or ((t > bt) if is_setup else (t < bt))
                        or (t == bt and w < bf)):
                    bt = t
                    bf = w
            if time[pin] != bt or single.from_pin[pin] != bf:
                changed[row_index].add(pin)
                old_times[row_index].setdefault(pin, time[pin])
                time[pin] = bt
                single.from_pin[pin] = bf

    return changed, old_times


def diff_states(old: ModeState, new: ModeState
                ) -> tuple[list[set[int]], list[dict[int, float]]]:
    """Per-row changed pins (and their old primary times) between builds.

    The full-rebuild fallback's substitute for :func:`replay`'s change
    tracking: when the dirty cone was too large to replay, the state is
    rebuilt wholesale and the rows diffed so family-serving decisions
    still know exactly what moved.
    """
    num_levels = len(old.levels)
    changed: list[set[int]] = [set() for _ in range(num_levels + 2)]
    old_times: list[dict[int, float]] = [{} for _ in range(num_levels + 2)]
    for d in range(num_levels):
        a, b = old.levels[d], new.levels[d]
        ch = changed[d]
        ot = old_times[d]
        for pin, (t0a, t0b) in enumerate(zip(a.time0, b.time0)):
            if (t0a != t0b or a.from0[pin] != b.from0[pin]
                    or a.group0[pin] != b.group0[pin]
                    or a.time1[pin] != b.time1[pin]
                    or a.from1[pin] != b.from1[pin]
                    or a.group1[pin] != b.group1[pin]):
                ch.add(pin)
                ot[pin] = t0a
    for row_index, a, b in ((num_levels, old.self_loop, new.self_loop),
                            (num_levels + 1, old.primary_input,
                             new.primary_input)):
        if a is None or b is None:
            continue
        ch = changed[row_index]
        ot = old_times[row_index]
        for pin, (ta, tb) in enumerate(zip(a.time, b.time)):
            if ta != tb or a.from_pin[pin] != b.from_pin[pin]:
                ch.add(pin)
                ot[pin] = ta
    return changed, old_times


# ----------------------------------------------------------------------
# Deviation-cost column maintenance (array substrate only)
# ----------------------------------------------------------------------
def refresh_costs(state: ModeState, core, changed: list[set[int]],
                  edited_positions: list[int]) -> int:
    """Patch each row's cost column where an endpoint or delay moved.

    A fanin position's cost depends on the row's primary times at its
    two endpoints and the edge delay, so the positions to recompute are
    the edited runs plus every position adjacent to a changed pin.
    Recomputes with the producers' exact formula (any non-finite result
    collapses to ``+inf``).  Returns the number of entries rewritten.
    """
    structure = core.structure
    ptr = structure.fanin_ptr_list
    src_list = structure.fanin_src_list
    dst_list = structure.fanin_dst_list
    by_src_order, by_src_starts = structure.fanin_by_src()
    is_setup = state.mode.is_setup
    delay_list = (core.fanin_late_list if is_setup
                  else core.fanin_early_list)
    isfinite = math.isfinite
    patched = 0

    num_levels = len(state.levels)
    for row_index in range(num_levels + 2):
        row = state.row(row_index)
        if row is None or row.cost0 is None:
            continue
        ch = changed[row_index]
        if not ch and not edited_positions:
            continue
        positions = set(edited_positions)
        for pin in ch:
            positions.update(range(ptr[pin], ptr[pin + 1]))
            positions.update(
                by_src_order[by_src_starts[pin]:by_src_starts[pin + 1]])
        time = row.time0 if row_index < num_levels else row.time
        cost0 = row.cost0
        for i in positions:
            t_src = time[src_list[i]]
            t_dst = time[dst_list[i]]
            if is_setup:
                c = (t_dst - t_src) - delay_list[i]
            else:
                c = (t_src + delay_list[i]) - t_dst
            cost0[i] = c if isfinite(c) else _INF
        patched += len(positions)
    return patched


# ----------------------------------------------------------------------
# Serving the maintained state back to the candidate passes
# ----------------------------------------------------------------------
class SessionBatch:
    """A :class:`ModeState` view speaking the batched-levels protocol.

    ``paths_at_level(..., batch=session_batch)`` consumes the level's
    maintained columns exactly as it would a
    :class:`~repro.core.batched.BatchedLevels` slice;
    :meth:`single_arrays` serves the ungrouped families through the
    passes' ``arrays=`` parameter.
    """

    __slots__ = ("state", "graph", "core", "backend")

    def __init__(self, state: ModeState, graph: TimingGraph,
                 core, substrate: str) -> None:
        self.state = state
        self.graph = graph
        self.core = core
        self.backend = "array" if substrate == "array" else "scalar"

    def grouping(self, level: int):
        return group_for_level(self.graph.clock_tree, level,
                               self.graph.num_ffs, self.backend)

    def num_seeds(self, level: int) -> int:
        return self.state.levels[level].num_seeds

    def _fast(self, cost0):
        if cost0 is None or self.core is None:
            return None
        from repro.core.propagate import FastDeviation
        core = self.core
        delay = (core.fanin_late_list if self.state.mode.is_setup
                 else core.fanin_early_list)
        return FastDeviation(core.fanin_ptr_list, core.fanin_src_list,
                             delay, cost0)

    def arrays(self, level: int) -> DualArrivalArrays:
        row = self.state.levels[level]
        return DualArrivalArrays(
            self.state.mode, row.time0, row.from0, row.group0,
            row.time1, row.from1, row.group1, fast=self._fast(row.cost0))

    def single_arrays(self, row: SingleState) -> SingleArrivalArrays:
        return SingleArrivalArrays(self.state.mode, row.time,
                                   row.from_pin,
                                   fast=self._fast(row.cost0))
