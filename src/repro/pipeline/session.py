"""Incremental (ECO) re-analysis sessions.

:class:`CpprSession` is the stateful driver of the staged pipeline
(:mod:`repro.pipeline`): it owns a privately mutable clone of an
analyzer's graph, applies delay/clock edits to it through
``session.update(...)``, and re-answers ``session.top_paths(...)``
queries by redoing only the work the edit invalidated —

* the **values** stage rewrites the edited delay columns in place
  (:meth:`~repro.core.arrays.CoreArrays.apply_value_updates`) instead of
  rebuilding any index structure;
* the **propagation** stage re-relaxes only the edit's dirty cone
  (:func:`repro.pipeline.state.replay` over
  :func:`repro.pipeline.dirty.fanout_cone`), falling back to a full
  rebuild — with :func:`~repro.pipeline.state.diff_states` recovering
  the change set — when the cone exceeds a quarter of the graph;
* the **families** stage re-serves a cached candidate family only when
  that is *provably* bit-identical to re-running it: no clock-dirty
  flip-flop participates in it, clock-driven time changes left its
  rows untouched, and — for delay edits — the
  :func:`~repro.pipeline.bounds.sigma_min` lower bound on any
  edit-crossing path's slack strictly clears the family's cached k-th
  slack (which simultaneously proves every cached slack exact, since a
  stale cached path would itself cross a run and drag ``sigma`` to or
  below the boundary);
* the **select** stage re-runs Algorithm 6 over the (partly cached)
  candidates and memoizes the answer under the current validity basis.

Every result is bit-for-bit identical to a fresh
:class:`~repro.cppr.engine.CpprEngine` on the edited design — the
equivalence the test-suite pins across the full backend x executor
matrix.  Construct sessions through
:meth:`repro.cppr.engine.CpprEngine.session`.

:class:`MultiCornerSession` lifts the same machinery over a
:class:`~repro.corners.CornerSet`: one per-corner :class:`CpprSession`
family over graphs that share a single
:class:`~repro.core.arrays.CoreStructure`, where one ``update(...)``
applies the edit to every corner and pays the dirty-cone computation
**once** (the cone is pure topology, identical across corners) while
sigma revalidation stays per corner (old delay values differ, so the
bounds do too).  See ``docs/MCMM.md``.
"""

from __future__ import annotations

from repro.cppr.engine import CpprOptions, _validate_options
from repro.cppr.level_paths import paths_at_level
from repro.cppr.parallel import check_deadline
from repro.cppr.output_paths import output_paths
from repro.cppr.pi_paths import primary_input_paths
from repro.cppr.select import select_top_paths
from repro.cppr.selfloop_paths import self_loop_paths
from repro.cppr.types import TimingPath
from repro.exceptions import AnalysisError
from repro.obs import collector as _obs
from repro.obs import metrics as _metrics
from repro.pipeline.artifacts import ArtifactCache
from repro.pipeline.bounds import sigma_min
from repro.pipeline.dirty import clock_dirty_ffs, fanout_cone, topo_positions
from repro.pipeline.state import (ModeState, SessionBatch, build_mode_state,
                                  diff_states, refresh_costs, replay, reseed)
from repro.sta.incremental import (DelayUpdate, apply_clock_updates,
                                   resolve_delay_updates)
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["CpprSession", "MultiCornerSession"]

_INF = float("inf")

#: Sentinel distinguishing "compute the dirty cone here" from an
#: injected cone (which may legitimately be ``None`` = full rebuild).
_UNSET = object()

#: Distribution of dirty-cone sizes across replayed updates, labeled
#: by corner (``-`` outside multi-corner sessions).  Buckets are fixed
#: (powers of four around the full-rebuild threshold) so the samples
#: merge by addition like every other counter.
_DIRTY_PINS = _metrics.REGISTRY.histogram(
    "replay.dirty_pins", labels=("corner",),
    buckets=(16, 64, 256, 1024, 4096, 16384),
    help="Dirty-cone size (pins) per replayed incremental update")

#: Dirty-cone fraction above which replay loses to a full re-sweep.
FULL_SWEEP_FRACTION = 0.25


class CpprSession:
    """One incremental what-if session over a design.

    ``update()`` edits the session's private graph; ``top_paths()`` (and
    the ``top_slacks`` / ``worst_path`` / ``report`` conveniences) then
    answer against the edited design at full accuracy.  The parent
    analyzer, its graph, and any engines over them are never touched —
    a session is a fork, not a lock.

    Validity state: :attr:`tree_epoch` counts clock-tree edits,
    :attr:`values_version` delay-edit batches; the pair is the basis
    every propagation/family/select artifact is stamped with.
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 options: CpprOptions | None = None,
                 corner: str = "-") -> None:
        self.options = options or CpprOptions()
        #: Corner label stamped on replay metrics (``-`` when this
        #: session is not part of a :class:`MultiCornerSession`).
        self.corner = corner
        (self.backend, self.batched,
         self.resolved_workers) = _validate_options(self.options)
        self.graph = analyzer.graph.session_copy()
        self.analyzer = TimingAnalyzer(self.graph, analyzer.constraints)
        self.tree_epoch = 0
        self.values_version = 0
        #: Dirty fraction of the most recent :meth:`update` (pins
        #: replayed over total pins; 1.0 for a full-rebuild fallback).
        self.last_dirty_fraction = 0.0
        #: Extra ``Profile.meta`` entries merged by :meth:`profile_meta`
        #: — the timing server stamps its serving context (design
        #: token, session id) here.
        self.meta_context: dict[str, str] = {}

        self._core = None
        if self.backend == "array":
            from repro.core.arrays import (CoreArrays, CoreValues,
                                           get_core)
            parent = get_core(analyzer.graph)
            old = parent.values
            values = CoreValues(old.edge_early.copy(),
                                old.edge_late.copy(),
                                old.fanin_early.copy(),
                                old.fanin_late.copy())
            self._core = CoreArrays(self.graph,
                                    structure=parent.structure,
                                    values=values)
            self.graph._core_arrays = self._core
            # Back the session's private value columns with a shared
            # segment when the memory plane is up: ``update()`` then
            # patches the segment in place and the version slot bump
            # (inside ``apply_value_updates``) lets any reader holding
            # an older descriptor detect staleness instead of serving
            # pre-edit delays.  Plain in-process arrays are the
            # bit-identical fallback, so a failed publish is harmless.
            from repro.core import shm as _shm
            if _shm.available():
                try:
                    self._core.share_values()
                except Exception:
                    pass
            # Batched pad geometry and FF pin columns are topology-keyed;
            # share whatever the parent has already built.
            for attr in ("_batched_pads", "_batched_ff_columns"):
                value = getattr(analyzer.graph, attr, None)
                if value is not None:
                    setattr(self.graph, attr, value)

        num_levels = self.graph.clock_tree.num_levels
        self._states: dict[AnalysisMode, ModeState] = {}
        self._positions: dict[int, int] | None = None
        self._families = ArtifactCache(
            capacity=max(32, 4 * (num_levels + 3)),
            counter_prefix="pipeline.family")
        self._select = ArtifactCache(capacity=8,
                                     counter_prefix="pipeline.select")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def _basis(self) -> tuple[int, int]:
        return (self.tree_epoch, self.values_version)

    def _topo_positions(self) -> dict[int, int]:
        if self._positions is None:
            self._positions = topo_positions(self.graph)
        return self._positions

    def _state(self, mode: AnalysisMode) -> ModeState:
        state = self._states.get(mode)
        if state is None:
            with _obs.span("pipeline.propagation", mode.value):
                state = build_mode_state(
                    self.graph, mode, self.backend,
                    self.options.include_self_loops,
                    self.options.include_primary_inputs)
            self._states[mode] = state
        return state

    def _tasks(self) -> list[tuple]:
        tasks: list[tuple] = [("level", d) for d
                              in range(self.graph.clock_tree.num_levels)]
        if self.options.include_self_loops:
            tasks.append(("self_loop",))
        if self.options.include_primary_inputs:
            tasks.append(("primary_input",))
        if self.options.include_output_tests:
            tasks.append(("output",))
        return tasks

    # ------------------------------------------------------------------
    # update(): the values / propagation stages
    # ------------------------------------------------------------------
    def update(self, delays: list[DelayUpdate] | tuple = (),
               clock: dict[str, tuple[float, float]] | None = None) -> dict:
        """Apply delay and/or clock-tree edits to the session's design.

        ``delays`` is a list of :class:`~repro.sta.incremental
        .DelayUpdate`; ``clock`` maps clock-tree node names to new
        ``(early, late)`` delays of the edge from their parent (the
        contract of :func:`~repro.sta.incremental.apply_clock_updates`).
        Clock edits are processed first — they re-seed every maintained
        launch map — then delay edits patch the adjacency rows and the
        array core's value columns in place.  The combined dirty cone is
        replayed once, and every cached family is either revalidated
        (provably unaffected) or dropped.

        Returns a summary dict (``dirty_pins``, ``dirty_fraction``,
        ``families_kept`` / ``families_dropped``, ``full_rebuild``).
        """
        delays = list(delays)
        if not delays and not clock:
            return {"dirty_pins": 0, "dirty_fraction": 0.0,
                    "families_kept": len(self._families),
                    "families_dropped": 0, "full_rebuild": False}

        with _obs.span("pipeline.update"):
            roots, run_vals, dirty_ffs = self._apply_edits(delays, clock)
            return self._finish_update(roots, run_vals, dirty_ffs,
                                       len(delays))

    def _apply_edits(self, delays: list[DelayUpdate],
                     clock: dict | None
                     ) -> tuple[set[int], dict, list[int]]:
        """The values stage: mutate the session's design in place.

        Returns ``(roots, run_vals, dirty_ffs)`` for
        :meth:`_finish_update`.  Split out so
        :class:`MultiCornerSession` can apply one edit to every corner
        *before* computing the (shared, topology-only) dirty cone.
        """
        roots: set[int] = set()
        dirty_ffs: list[int] = []

        if clock:
            old_tree = self.graph.clock_tree
            new_tree = apply_clock_updates(self.graph,
                                           clock).clock_tree
            dirty_ffs = clock_dirty_ffs(old_tree, new_tree)
            self.graph.clock_tree = new_tree
            self.tree_epoch += 1
            for state in self._states.values():
                reseed(state, self.graph, self.backend)
            for index in dirty_ffs:
                roots.add(self.graph.ffs[index].q_pin)

        # Delay edits apply one at a time so each resolves against
        # the rows as the previous edit left them (repeat edits of
        # one edge, parallel-edge runs).  run_vals accumulates every
        # (early, late) value each touched run held at any point —
        # the pessimization domain of the sigma bounds.
        run_vals: dict[tuple[int, int], set] = {}
        for update in delays:
            resolved = resolve_delay_updates(self.graph, [update])
            u, v, _old_e, _old_l, new_e, new_l = resolved[0]
            key = (u, v)
            if key not in run_vals:
                run_vals[key] = {(e, l) for t, e, l
                                 in self.graph.fanout[u] if t == v}
            run_vals[key].add((new_e, new_l))
            self._patch_rows(resolved[0])
            if self._core is not None:
                self._core.apply_value_updates(resolved)
            roots.add(v)
        if delays:
            self.values_version += 1
        return roots, run_vals, dirty_ffs

    def _finish_update(self, roots: set[int], run_vals: dict,
                       dirty_ffs: list[int], num_delays: int,
                       cone=_UNSET) -> dict:
        """Replay, revalidate, and summarize one applied edit.

        ``cone`` injects a precomputed dirty cone (``None`` = full
        rebuild); :class:`MultiCornerSession` passes the union cone it
        computed once for all corners — a superset cone is exact,
        since replaying a clean pin recomputes its unchanged value.
        """
        _obs.add("pipeline.update.edits", num_delays + len(dirty_ffs))

        changed, old_times, full_rebuild, dirty = self._refresh_states(
            roots, run_vals, cone)
        kept, dropped = self._revalidate_families(
            dirty_ffs, run_vals, changed, old_times)
        self._select.purge(keys=[key for key, basis, _
                                 in self._select.entries()
                                 if basis != self._basis])
        self._invalidate_analyzer()

        num_pins = max(1, self.graph.num_pins)
        self.last_dirty_fraction = (1.0 if full_rebuild
                                    else dirty / num_pins)
        summary = {"dirty_pins": dirty,
                   "dirty_fraction": self.last_dirty_fraction,
                   "families_kept": kept, "families_dropped": dropped,
                   "full_rebuild": full_rebuild}
        col = _obs.ACTIVE
        if col is not None:
            summary["trace_id"] = col.trace_id
        return summary

    def _patch_rows(self, resolved: tuple) -> None:
        """Rewrite one edge's entry in the session's private rows.

        The first ``u -> v`` entry of ``fanout[u]`` and the first
        source-``u`` entry of ``fanin[v]`` are the same edge (the
        invariant :func:`repro.sta.incremental._patch_rows` documents);
        the session's rows are private copies, so they mutate in place.
        """
        u, v, _old_e, _old_l, new_e, new_l = resolved
        row = self.graph.fanout[u]
        for index, (target, _e, _l) in enumerate(row):
            if target == v:
                row[index] = (v, new_e, new_l)
                break
        row = self.graph.fanin[v]
        for index, (source, _e, _l) in enumerate(row):
            if source == u:
                row[index] = (u, new_e, new_l)
                break

    def _refresh_states(self, roots: set[int], run_vals: dict,
                        cone=_UNSET) -> tuple[dict, dict, bool, int]:
        """Replay (or rebuild) every built mode state over the edit.

        ``cone`` is normally computed here; a multi-corner update
        injects its shared union cone instead (``None`` = full
        rebuild).  Returns per-mode changed-pin rows, per-mode old
        primary times, whether the full-rebuild fallback ran, and the
        dirty pin count.
        """
        changed: dict[AnalysisMode, list[set[int]]] = {}
        old_times: dict[AnalysisMode, list[dict[int, float]]] = {}
        if not self._states:
            return changed, old_times, False, len(roots)

        if cone is _UNSET:
            positions = self._topo_positions()
            cap = max(64, int(FULL_SWEEP_FRACTION * self.graph.num_pins))
            with _obs.span("pipeline.dirty_cone"):
                cone = fanout_cone(self.graph, roots, positions, cap)

        if cone is None:
            _obs.add("pipeline.fallback.full")
            with _obs.span("pipeline.replay", "full"):
                for mode, state in list(self._states.items()):
                    fresh = build_mode_state(
                        self.graph, mode, self.backend,
                        self.options.include_self_loops,
                        self.options.include_primary_inputs)
                    changed[mode], old_times[mode] = diff_states(state,
                                                                 fresh)
                    self._states[mode] = fresh
            return changed, old_times, True, self.graph.num_pins

        _obs.add("pipeline.dirty_pins", len(cone))
        _DIRTY_PINS.labels(corner=self.corner).observe(len(cone))
        edited_positions: list[int] = []
        if self._core is not None:
            for u, v in run_vals:
                lo, hi = self._core.structure.fanin_run(u, v)
                edited_positions.extend(range(lo, hi))
        with _obs.span("pipeline.replay"):
            for mode, state in self._states.items():
                changed[mode], old_times[mode] = replay(state, self.graph,
                                                        cone)
                if self._core is not None:
                    refresh_costs(state, self._core, changed[mode],
                                  edited_positions)
        return changed, old_times, False, len(cone)

    # ------------------------------------------------------------------
    # Family revalidation (the serve-or-drop decision)
    # ------------------------------------------------------------------
    def _revalidate_families(self, dirty_ffs: list[int], run_vals: dict,
                             changed: dict,
                             old_times: dict) -> tuple[int, int]:
        """Restamp provably-unaffected cached families; drop the rest."""
        entries = self._families.entries()
        if not entries:
            return 0, 0
        from repro.cppr.grouping import group_for_level

        tree = self.graph.clock_tree
        num_levels = tree.num_levels
        num_ffs = self.graph.num_ffs
        survivors = []
        dropped = 0
        need_sigma: dict[AnalysisMode, set[int]] = {}

        for key, _basis, value in entries:
            kind, mode_value, level = key[0], key[1], key[2]
            mode = AnalysisMode(mode_value)
            state = self._states.get(mode)
            if state is None:
                self._families.drop(key)
                dropped += 1
                continue
            if dirty_ffs:
                if kind != "level":
                    # Self-loop and primary-input families fold every
                    # flip-flop's tree arrival/credit into seeds or
                    # captures; any clock-dirty FF invalidates them.
                    self._families.drop(key)
                    dropped += 1
                    continue
                grouping = group_for_level(tree, level, num_ffs,
                                           self._grouping_backend())
                if any(grouping.participates(index)
                       for index in dirty_ffs):
                    self._families.drop(key)
                    dropped += 1
                    continue
            row = level if kind == "level" else (
                num_levels if kind == "self_loop" else num_levels + 1)
            row_changed = bool(changed.get(mode)
                               and changed[mode][row])
            if row_changed and (not run_vals or dirty_ffs):
                # Clock-driven (or mixed) time changes: no run bound
                # covers them, so a touched row invalidates.
                self._families.drop(key)
                dropped += 1
                continue
            # Delay-driven changes need no row check at all: every time
            # change originates at an edited run, so a cached path with
            # a stale slack would cross a run — and then its old slack
            # (<= the k-th-slack boundary) itself forces sigma <=
            # boundary.  ``sigma > boundary`` therefore already proves
            # every cached slack exact AND that no crossing path can
            # displace into the top-k; the sigma test below decides.
            if run_vals:
                survivors.append((key, mode, row, value))
                need_sigma.setdefault(mode, set()).add(row)
            else:
                self._families.restamp(key, self._basis)
                survivors.append(None)

        kept = sum(1 for s in survivors if s is None)
        if not need_sigma:
            _obs.add("pipeline.families.kept", kept)
            _obs.add("pipeline.families.dropped", dropped)
            return kept, dropped

        with _obs.span("pipeline.bounds"):
            sigmas = {}
            clock_period = self.analyzer.constraints.clock_period
            for mode, rows in need_sigma.items():
                runs = self._pessimized_runs(run_vals, mode)
                sigmas[mode] = sigma_min(
                    self.graph, self._core, self._states[mode],
                    sorted(rows), runs, old_times[mode], clock_period,
                    self.backend)

        for item in survivors:
            if item is None:
                continue
            key, mode, row, value = item
            k = key[3]
            boundary = value[k - 1].slack if len(value) >= k else _INF
            sigma = sigmas[mode][row]
            if sigma == _INF or sigma > boundary:
                self._families.restamp(key, self._basis)
                kept += 1
            else:
                self._families.drop(key)
                dropped += 1
        _obs.add("pipeline.families.kept", kept)
        _obs.add("pipeline.families.dropped", dropped)
        return kept, dropped

    def _grouping_backend(self) -> str:
        return "array" if self.backend == "array" else "scalar"

    @staticmethod
    def _pessimized_runs(run_vals: dict,
                         mode: AnalysisMode) -> list[tuple[int, int, float]]:
        """Each edited run with its batch-pessimized delay for ``mode``."""
        if mode.is_setup:
            return [(u, v, max(late for _early, late in vals))
                    for (u, v), vals in run_vals.items()]
        return [(u, v, min(early for early, _late in vals))
                for (u, v), vals in run_vals.items()]

    def _invalidate_analyzer(self) -> None:
        self.analyzer.__dict__.pop("arrivals", None)
        self.analyzer.__dict__.pop("required", None)
        self.analyzer._edge_delay_cache = None

    # ------------------------------------------------------------------
    # Queries: the families / select stages
    # ------------------------------------------------------------------
    def top_paths(self, k: int,
                  mode: AnalysisMode | str) -> list[TimingPath]:
        """The top-``k`` post-CPPR paths of the session's edited design.

        Bit-for-bit what ``CpprEngine(TimingAnalyzer(edited_graph,
        constraints)).top_paths(k, mode)`` would return, computed
        incrementally: families whose cached lists are provably still
        exact are served from the artifact cache, the rest re-run on
        the maintained propagation state, and only the final
        ``selectTopPaths`` reduction always executes.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        basis = self._basis
        with _obs.span("pipeline.query"):
            served = self._serve_select(mode, k, basis)
            if served is not None:
                return served
            state = self._state(mode)
            batch = SessionBatch(state, self.graph, self._core,
                                 self.backend)
            candidates: list[TimingPath] = []
            for task in self._tasks():
                # Cooperative cancellation: a served request whose
                # deadline ran out abandons the query between families
                # (partial candidate lists are discarded, never
                # selected from).
                check_deadline()
                candidates.extend(self._family(task, state, batch, k,
                                               mode, basis))
            check_deadline()
            with _obs.span("pipeline.select"):
                selected = select_top_paths(self.analyzer, candidates, k)
            self._select.store((mode.value, k), basis, tuple(selected))
            return selected

    def _serve_select(self, mode: AnalysisMode, k: int,
                      basis: tuple) -> list[TimingPath] | None:
        """A valid cached ``(mode, k' >= k)`` prefix, or ``None``."""
        best = None
        for key, recorded, _value in self._select.entries():
            if recorded == basis and key[0] == mode.value and key[1] >= k:
                if best is None or key[1] < best:
                    best = key[1]
        if best is None:
            # Counts the miss — and detects (and evicts) a poisoned
            # entry sitting at this exact key.
            self._select.get((mode.value, k), basis)
            return None
        return list(self._select.get((mode.value, best), basis)[:k])

    def _family(self, task: tuple, state: ModeState, batch: SessionBatch,
                k: int, mode: AnalysisMode,
                basis: tuple) -> list[TimingPath]:
        kind = task[0]
        heap_capacity = self.options.heap_capacity
        if kind == "output":
            # The output-extension family propagates from primary
            # inputs and FFs against output constraints; it keeps no
            # session state and always re-runs.
            return output_paths(self.analyzer, k, mode, heap_capacity,
                                self.backend)
        level = task[1] if kind == "level" else None
        key = (kind, mode.value, level, k, heap_capacity)
        cached = self._families.get(key, basis)
        if cached is not None:
            return cached
        with _obs.span("pipeline.family", "/".join(map(str, task))):
            if kind == "level":
                paths = paths_at_level(self.analyzer, level, k, mode,
                                       heap_capacity, self.backend,
                                       batch)
            elif kind == "self_loop":
                paths = self_loop_paths(
                    self.analyzer, k, mode, heap_capacity, self.backend,
                    arrays=batch.single_arrays(state.self_loop))
            else:
                paths = primary_input_paths(
                    self.analyzer, k, mode, heap_capacity, self.backend,
                    arrays=batch.single_arrays(state.primary_input))
        _obs.add("pipeline.families.rerun")
        self._families.store(key, basis, paths)
        return paths

    # ------------------------------------------------------------------
    # Conveniences mirroring the engine
    # ------------------------------------------------------------------
    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        """Just the slack values of :meth:`top_paths` (ascending)."""
        return [path.slack for path in self.top_paths(k, mode)]

    def worst_path(self, mode: AnalysisMode | str) -> TimingPath | None:
        """The single most critical post-CPPR path, or ``None``."""
        paths = self.top_paths(1, mode)
        return paths[0] if paths else None

    def report(self, k: int, mode: AnalysisMode | str,
               title: str | None = None) -> str:
        """The human-readable report of :meth:`top_paths`."""
        from repro.cppr.report import format_path_report

        mode = AnalysisMode.coerce(mode)
        paths = self.top_paths(k, mode)
        if title is None:
            title = f"Top-{k} post-CPPR {mode.value} paths"
        return format_path_report(self.analyzer, paths, title=title)

    def stats(self) -> dict:
        """Cache traffic and validity-state snapshot (for tests/bench)."""
        return {
            "tree_epoch": self.tree_epoch,
            "values_version": self.values_version,
            "last_dirty_fraction": self.last_dirty_fraction,
            "modes_built": sorted(mode.value for mode in self._states),
            "families": self._families.stats(),
            "select": self._select.stats(),
        }

    def basis(self) -> tuple[int, int]:
        """The public validity basis ``(tree_epoch, values_version)``.

        Every propagation/family/select artifact is stamped with this
        pair; the timing server's session journal records it after each
        applied update so a crash-replayed session can be verified to
        have reached the exact pre-crash state.
        """
        return self._basis

    def profile_meta(self) -> dict[str, str]:
        """Header metadata for profiles collected around session queries.

        Mirrors :meth:`CpprEngine.profile_meta` for the incremental
        query surface, adding the validity basis and any
        :attr:`meta_context` entries (the server's serving context).
        """
        meta = {"executor": self.options.executor,
                "backend": self.backend,
                "batched": "on" if self.batched else "off",
                "basis": f"{self.tree_epoch}/{self.values_version}"}
        if self.corner != "-":
            meta["corner"] = self.corner
        for key, value in self.meta_context.items():
            meta[str(key)] = str(value)
        return meta


class MultiCornerSession:
    """One incremental what-if session across every configured corner.

    A family of per-corner :class:`CpprSession` forks over corner
    graphs that share one :class:`~repro.core.arrays.CoreStructure`.
    ``update(...)`` applies the same edit to every corner, then pays
    the dirty-cone traversal **once**: the cone is pure fanout
    topology, identical across corners, so the union cone (over every
    corner's roots) is computed on one graph and injected into each
    corner's replay.  Replaying a superset cone is exact — a clean pin
    recomputes its unchanged value — while sigma revalidation stays
    per corner, because the *old* delay values (the pessimization
    domain of the bounds) differ between corners.

    Queries take a ``corner=`` name, mirroring the multi-corner
    :class:`~repro.cppr.engine.CpprEngine` query surface
    (``top_paths_by_corner`` / ``merged_worst`` included); every
    per-corner answer is bit-for-bit what a single-corner session over
    that corner's realized analyzer would produce.  Construct through
    :meth:`CpprEngine.session` with ``CpprOptions(corners=...)``.  See
    ``docs/MCMM.md``.
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 options: CpprOptions) -> None:
        if options is None or options.corners is None:
            raise AnalysisError(
                "MultiCornerSession needs CpprOptions(corners=...); "
                "use CpprSession for single-corner analysis")
        self.options = options
        backend, _batched, _workers = _validate_options(options)
        realized = options.corners.realize(analyzer, backend)
        self.sessions: dict[str, CpprSession] = {
            name: CpprSession(corner_analyzer, options, corner=name)
            for name, corner_analyzer in realized.items()}
        #: Dirty fraction of the most recent :meth:`update` (shared
        #: across corners — the cone is).
        self.last_dirty_fraction = 0.0
        #: Extra ``Profile.meta`` entries merged by :meth:`profile_meta`.
        self.meta_context: dict[str, str] = {}

    @property
    def corners(self) -> tuple[str, ...]:
        return tuple(self.sessions)

    def _session(self, corner: str | None) -> CpprSession:
        if corner is None:
            raise AnalysisError(
                f"this session analyzes corners "
                f"({', '.join(self.sessions)}); pass corner=<name>, or "
                f"use top_paths_by_corner() / merged_worst()")
        try:
            return self.sessions[corner]
        except KeyError:
            raise AnalysisError(
                f"unknown corner {corner!r}; valid corners: "
                f"{', '.join(self.sessions)}") from None

    # ------------------------------------------------------------------
    # update(): one edit, every corner, one dirty cone
    # ------------------------------------------------------------------
    def update(self, delays: list[DelayUpdate] | tuple = (),
               clock: dict[str, tuple[float, float]] | None = None) -> dict:
        """Apply one delay/clock edit to **every** corner.

        The edit vocabulary is exactly :meth:`CpprSession.update`;
        delay updates name pins, so one physical edit resolves against
        each corner's own current values.  Returns the shared summary
        (``dirty_pins`` / ``dirty_fraction`` / ``full_rebuild`` of the
        union cone, ``families_kept`` / ``families_dropped`` summed)
        plus a ``corners`` dict of the per-corner summaries.
        """
        delays = list(delays)
        if not delays and not clock:
            per_corner = {name: session.update()
                          for name, session in self.sessions.items()}
            return {"dirty_pins": 0, "dirty_fraction": 0.0,
                    "families_kept": sum(s["families_kept"]
                                         for s in per_corner.values()),
                    "families_dropped": 0, "full_rebuild": False,
                    "corners": per_corner}

        with _obs.span("pipeline.update"):
            edits = {name: session._apply_edits(delays, clock)
                     for name, session in self.sessions.items()}
            union_roots: set[int] = set()
            for roots, _run_vals, _dirty_ffs in edits.values():
                union_roots |= roots

            # One traversal: corner graphs share fanout topology, so
            # the cone over the union of every corner's roots is a
            # valid (superset) cone for each of them.
            first = next(iter(self.sessions.values()))
            positions = first._topo_positions()
            cap = max(64,
                      int(FULL_SWEEP_FRACTION * first.graph.num_pins))
            with _obs.span("pipeline.dirty_cone"):
                cone = fanout_cone(first.graph, union_roots, positions,
                                   cap)

            per_corner = {}
            for name, session in self.sessions.items():
                roots, run_vals, dirty_ffs = edits[name]
                per_corner[name] = session._finish_update(
                    roots, run_vals, dirty_ffs, len(delays), cone=cone)

            full_rebuild = cone is None
            dirty = (first.graph.num_pins if full_rebuild else len(cone))
            self.last_dirty_fraction = (
                1.0 if full_rebuild
                else dirty / max(1, first.graph.num_pins))
            summary = {
                "dirty_pins": dirty,
                "dirty_fraction": self.last_dirty_fraction,
                "families_kept": sum(s["families_kept"]
                                     for s in per_corner.values()),
                "families_dropped": sum(s["families_dropped"]
                                        for s in per_corner.values()),
                "full_rebuild": full_rebuild,
                "corners": per_corner,
            }
            col = _obs.ACTIVE
            if col is not None:
                summary["trace_id"] = col.trace_id
            return summary

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_paths(self, k: int, mode: AnalysisMode | str,
                  corner: str | None = None) -> list[TimingPath]:
        """The top-``k`` post-CPPR paths of one corner's edited design."""
        return self._session(corner).top_paths(k, mode)

    def top_paths_by_corner(self, k: int, mode: AnalysisMode | str
                            ) -> dict[str, list[TimingPath]]:
        """Every corner's top-``k`` list, in corner-set order."""
        return {name: session.top_paths(k, mode)
                for name, session in self.sessions.items()}

    def merged_worst(self, k: int, mode: AnalysisMode | str
                     ) -> list[tuple[str, TimingPath]]:
        """The ``k`` most critical paths across all corners.

        Same merged-worst semantics as
        :meth:`CpprEngine.merged_worst` (see ``docs/MCMM.md``).
        """
        by_corner = self.top_paths_by_corner(k, mode)
        merged = [(name, path) for name, paths in by_corner.items()
                  for path in paths]
        merged.sort(key=lambda entry: (entry[1].key(), entry[0]))
        return merged[:k]

    def top_slacks(self, k: int, mode: AnalysisMode | str,
                   corner: str | None = None) -> list[float]:
        """Just the slack values of :meth:`top_paths` (ascending)."""
        return [path.slack for path in self.top_paths(k, mode, corner)]

    def worst_path(self, mode: AnalysisMode | str,
                   corner: str | None = None) -> TimingPath | None:
        """The single most critical post-CPPR path, or ``None``."""
        paths = self.top_paths(1, mode, corner)
        return paths[0] if paths else None

    def report(self, k: int, mode: AnalysisMode | str,
               title: str | None = None,
               corner: str | None = None) -> str:
        """The human-readable report of one corner's :meth:`top_paths`."""
        session = self._session(corner)
        mode = AnalysisMode.coerce(mode)
        if title is None:
            title = (f"Top-{k} post-CPPR {mode.value} paths "
                     f"[corner {corner}]")
        return session.report(k, mode, title=title)

    def merged_worst_report(self, k: int, mode: AnalysisMode | str,
                            title: str | None = None) -> str:
        """The human-readable report of :meth:`merged_worst`."""
        from repro.cppr.report import format_merged_report

        mode = AnalysisMode.coerce(mode)
        entries = self.merged_worst(k, mode)
        if title is None:
            title = (f"Top-{k} post-CPPR {mode.value} paths "
                     f"(merged worst across corners)")
        analyzers = {name: session.analyzer
                     for name, session in self.sessions.items()}
        return format_merged_report(analyzers, entries, title=title)

    def stats(self) -> dict:
        """Per-corner cache/validity snapshots plus the shared cone."""
        return {"last_dirty_fraction": self.last_dirty_fraction,
                "corners": {name: session.stats()
                            for name, session in self.sessions.items()}}

    def basis(self) -> dict[str, tuple[int, int]]:
        """Every corner's ``(tree_epoch, values_version)`` basis."""
        return {name: session.basis()
                for name, session in self.sessions.items()}

    def profile_meta(self) -> dict[str, str]:
        """Header metadata for profiles collected around session queries."""
        first = next(iter(self.sessions.values()))
        meta = {"executor": self.options.executor,
                "backend": first.backend,
                "batched": "on" if first.batched else "off",
                "corners": f"{len(self.sessions)}: "
                           f"{', '.join(self.sessions)}"}
        for key, value in self.meta_context.items():
            meta[str(key)] = str(value)
        return meta
