"""Dirty-cone tracking for incremental re-analysis.

A delay edit on data edge ``u -> v`` can change arrival state only at
``v`` and its transitive fanout — every candidate tuple at a pin is a
max/min over paths *ending* at that pin, and a path through the edited
edge ends inside ``v``'s fanout cone.  A clock edit on tree edge
``parent -> node`` changes launch seeds (and capture constants) only for
flip-flops whose leaf lies under ``node``, so its data-side cone is the
fanout of those flip-flops' Q pins.

Both helpers return pins ordered by topological position, which is the
replay order (:func:`repro.pipeline.state.replay`): a pin's recompute
reads only its fanin sources, which sit strictly earlier.
"""

from __future__ import annotations

from typing import Iterable

from repro.circuit.clocktree import ClockTree
from repro.circuit.graph import TimingGraph

__all__ = ["clock_dirty_ffs", "fanout_cone", "topo_positions"]


def topo_positions(graph: TimingGraph) -> dict[int, int]:
    """``{pin: index in topo_order}`` — the replay sort key."""
    return {pin: index for index, pin in enumerate(graph.topo_order)}


def fanout_cone(graph: TimingGraph, roots: Iterable[int],
                positions: dict[int, int],
                cap: int | None = None) -> list[int] | None:
    """All pins reachable from ``roots`` (inclusive), in topo order.

    Returns ``None`` as soon as the cone exceeds ``cap`` pins — the
    caller's signal to fall back to a full re-sweep instead of a
    per-pin replay.
    """
    seen = set(roots)
    if cap is not None and len(seen) > cap:
        return None
    frontier = list(seen)
    fanout = graph.fanout
    while frontier:
        pin = frontier.pop()
        for target, _early, _late in fanout[pin]:
            if target not in seen:
                seen.add(target)
                if cap is not None and len(seen) > cap:
                    return None
                frontier.append(target)
    return sorted(seen, key=positions.__getitem__)


def clock_dirty_ffs(old_tree: ClockTree, new_tree: ClockTree) -> list[int]:
    """Flip-flop indices whose launch/capture timing a clock edit touched.

    A leaf is affected iff any edge on its root path changed delay —
    equivalently iff its arrival pair or credit differs between the old
    and new trees (credits fold in the min-arrival prefix, so comparing
    ``(at_early, at_late, credit)`` at the leaf is exact).
    """
    dirty = []
    for node in old_tree.leaves():
        ff = old_tree.ff_of_node[node]
        if ff is None:
            continue
        if (old_tree.at_early(node) != new_tree.at_early(node)
                or old_tree.at_late(node) != new_tree.at_late(node)
                or old_tree.credit(node) != new_tree.credit(node)):
            dirty.append(ff)
    return dirty
