"""Validity-keyed artifact caches for the staged pipeline.

Two containers, both LRU-bounded and both reporting their traffic
through :mod:`repro.obs` counters:

* :class:`LruCache` — a plain keyed LRU.  The engine's ``select``-stage
  memo (formerly a single-entry ``_topk_cache``) is one of these.
* :class:`ArtifactCache` — an LRU whose entries additionally record the
  *validity basis* (the stage's validity-key tuple, e.g.
  ``(tree_epoch, values_version)``) they were computed under.  A lookup
  presents the current basis; an entry recorded under any other basis is
  **detected as stale**, counted (``<prefix>.stale.detected``), dropped,
  and reported as a miss — never served.

The store path consults the ``pipeline.stale_artifact`` fault site
(:func:`repro.faults.triggered`): when an armed chaos plan fires, the
entry is stored with a *poisoned* basis, modelling a missed invalidation
hook.  The basis check above is what turns that corruption into a
recompute instead of a wrong answer — the property the chaos tests pin.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable

from repro import faults
from repro.obs import collector as _obs
from repro.obs import metrics as _metrics

__all__ = ["ArtifactCache", "LruCache"]

#: Basis wrapper marking an entry poisoned by ``pipeline.stale_artifact``.
_POISONED = "#poisoned"

#: Labeled view of cache traffic: one metric, one sample per
#: ``(cache, outcome)`` pair.  The flat ``<prefix>.hit``-style counters
#: below are kept as the stable legacy vocabulary; this is the form
#: metrics snapshots and dashboards consume.
_CACHE_LOOKUPS = _metrics.REGISTRY.counter(
    "cache.lookup", labels=("cache", "outcome"),
    help="Pipeline cache lookups by cache name and outcome "
         "(hit/miss/stale) plus evictions under outcome=evict")


class LruCache:
    """A small keyed LRU with hit/miss/eviction counters.

    ``counter_prefix`` names the obs counters (``<prefix>.hit``,
    ``<prefix>.miss``, ``<prefix>.evict``); the totals are also kept as
    attributes (:attr:`hits`, :attr:`misses`, :attr:`evictions`) so
    callers without an active collector can still assert on traffic.
    """

    def __init__(self, capacity: int, counter_prefix: str) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counter_prefix = counter_prefix
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        # Bound label sets resolve the encoded sample names once here,
        # keeping the lookup hot path at one extra dict increment.
        self._m_hit = _CACHE_LOOKUPS.labels(cache=counter_prefix,
                                            outcome="hit")
        self._m_miss = _CACHE_LOOKUPS.labels(cache=counter_prefix,
                                             outcome="miss")
        self._m_evict = _CACHE_LOOKUPS.labels(cache=counter_prefix,
                                              outcome="evict")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self) -> list:
        """Current keys, least recently used first."""
        return list(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The value under ``key`` (refreshing recency), else ``default``."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            _obs.add(f"{self.counter_prefix}.miss")
            self._m_miss.inc()
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        _obs.add(f"{self.counter_prefix}.hit")
        self._m_hit.inc()
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but silent: no counters, no recency update."""
        return self._entries.get(key, default)

    def store(self, key: Hashable, value: Any) -> None:
        """Insert/replace ``key``, evicting the LRU entry past capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            _obs.add(f"{self.counter_prefix}.evict")
            self._m_evict.inc()

    def drop(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {"size": len(self._entries), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions}


class ArtifactCache:
    """An LRU of stage artifacts, each stamped with its validity basis.

    Entries are stored as ``(basis, value)``; :meth:`get` takes the
    *current* basis and serves only exact matches.  A mismatch means the
    entry survived past an edit without being revalidated (the pipeline
    revalidates eagerly on every update, so in an unfaulted run this
    indicates the ``pipeline.stale_artifact`` corruption) — it is
    counted under ``<prefix>.stale.detected``, dropped, and reported as
    a miss.
    """

    def __init__(self, capacity: int, counter_prefix: str) -> None:
        self._lru = LruCache(capacity, counter_prefix)
        self.counter_prefix = counter_prefix
        self.stale_detected = 0
        self._m_stale = _CACHE_LOOKUPS.labels(cache=counter_prefix,
                                              outcome="stale")

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def get(self, key: Hashable, basis: tuple) -> Any:
        """The artifact under ``key`` if recorded under ``basis``.

        Returns ``None`` on a miss or a detected-stale entry.
        """
        entry = self._lru.get(key)
        if entry is None:
            return None
        recorded, value = entry
        if recorded != basis:
            self.stale_detected += 1
            _obs.add(f"{self.counter_prefix}.stale.detected")
            self._m_stale.inc()
            self._lru.drop(key)
            return None
        return value

    def store(self, key: Hashable, basis: tuple, value: Any) -> None:
        """Record ``value`` under ``key`` with validity ``basis``.

        Consults the ``pipeline.stale_artifact`` fault site: a firing
        poisons the recorded basis, so the entry can never match a real
        lookup and must be detected at serve time.
        """
        if faults.triggered("pipeline.stale_artifact"):
            basis = (_POISONED, basis)
        self._lru.store(key, (basis, value))

    def restamp(self, key: Hashable, basis: tuple) -> None:
        """Revalidate ``key``'s entry under a new basis (if present).

        Also passes through the ``pipeline.stale_artifact`` site —
        revalidation is a store of the same value under a fresh basis,
        and a missed-invalidation fault can strike either path.
        """
        entry = self._lru.peek(key)
        if entry is None:
            return
        if faults.triggered("pipeline.stale_artifact"):
            basis = (_POISONED, basis)
        self._lru.store(key, (basis, entry[1]))

    def drop(self, key: Hashable) -> None:
        self._lru.drop(key)

    def entries(self) -> list[tuple[Hashable, tuple, Any]]:
        """A snapshot of ``(key, basis, value)`` rows (no recency change)."""
        return [(key, entry[0], entry[1])
                for key, entry in self._lru._entries.items()]

    def purge(self, keep: Callable[[Hashable], bool] | None = None,
              keys: Iterable[Hashable] | None = None) -> int:
        """Drop entries: those failing ``keep``, or the given ``keys``."""
        if keys is None:
            keys = [key for key, _, _ in self.entries()
                    if keep is None or not keep(key)]
        dropped = 0
        for key in list(keys):
            if key in self._lru:
                self._lru.drop(key)
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._lru.clear()

    def stats(self) -> dict[str, int]:
        stats = self._lru.stats()
        stats["stale_detected"] = self.stale_detected
        return stats
