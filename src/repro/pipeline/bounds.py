"""Slack lower bounds for edit-crossing paths (family-serve proofs).

After a delay edit whose cone never touched a family's arrival state,
the only way the family's cached top-``k`` could differ from a re-run
is through a path that *crosses an edited edge*: every other heap entry
of the deviation search is bit-identical (same seeds, same state, same
costs).  This module computes, per state row, a lower bound ``sigma``
on the ranking slack of **any** path through **any** edited run —
under both the old and the new delays — via one backward min-sweep:

* setup: ``R[x] = min`` over captures/paths of ``cap(c) - dist_late(x
  -> c)`` seeded with ``cap = at_early + period - t_setup`` at each
  participating capture D pin and relaxed backward with
  ``R[u] = min(R[u], R[v] - late(u, v))``; then for an edited run
  ``u -> v``, ``sigma = R[v] - pess_late(run) - T[u]`` with ``T`` the
  row's most pessimistic arrival at ``u`` (old and new).
* hold: the mirror image with ``G`` seeded ``-(at_late + t_hold)``,
  relaxed ``G[u] = min(G[u], early(u, v) + G[v])``, and
  ``sigma = T[u] + pess_early(run) + G[v]``.

``pess`` pessimizes each edited run over every delay value it held
during the update batch (old and new), so ``sigma`` bounds the cached
run and the hypothetical re-run simultaneously.  A cached family whose
state rows are untouched is then served iff ``sigma`` strictly exceeds
its k-th cached slack (its *boundary*) — every edit-crossing heap entry
in either run keys above the boundary, so the first ``k`` pops (and
their tie-break counters, which only order the identical below-boundary
entries relative to one another) cannot differ.  A family cached with
fewer than ``k`` paths has an infinite boundary and is served only when
``sigma`` is itself infinite (no edited run reaches any capture in the
row at all).

The returned bounds shave a relative epsilon (:data:`SIGMA_SLOP`) so
floating-point rounding along a telescoped path sum can never push a
real edit-crossing path below a bound that claims strictness.
"""

from __future__ import annotations

from repro.circuit.graph import TimingGraph
from repro.cppr.grouping import group_for_level
from repro.pipeline.state import ModeState

__all__ = ["SIGMA_SLOP", "sigma_min"]

_INF = float("inf")

#: Relative safety margin subtracted from every finite bound.
SIGMA_SLOP = 1e-9


def _capture_constants(graph: TimingGraph, is_setup: bool,
                       clock_period: float) -> dict[int, float]:
    """``{d_pin: seed}`` over all flip-flops (the ungrouped rows)."""
    tree = graph.clock_tree
    caps: dict[int, float] = {}
    for ff in graph.ffs:
        if is_setup:
            caps[ff.d_pin] = (tree.at_early(ff.tree_node) + clock_period
                              - ff.t_setup)
        else:
            caps[ff.d_pin] = -(tree.at_late(ff.tree_node) + ff.t_hold)
    return caps


def _row_caps(graph: TimingGraph, state: ModeState, rows: list[int],
              clock_period: float, backend: str) -> list[dict[int, float]]:
    """Per requested row, the capture seeds it participates in."""
    is_setup = state.mode.is_setup
    all_caps = _capture_constants(graph, is_setup, clock_period)
    tree = graph.clock_tree
    num_levels = len(state.levels)
    per_row = []
    for row in rows:
        if row < num_levels:
            grouping = group_for_level(tree, row, graph.num_ffs, backend)
            per_row.append({ff.d_pin: all_caps[ff.d_pin]
                            for ff in graph.ffs
                            if grouping.participates(ff.index)})
        else:
            per_row.append(all_caps)
    return per_row


def _evaluate(state: ModeState, rows: list[int], reach, runs,
              old_times: list[dict[int, float]],
              is_setup: bool) -> dict[int, float]:
    """Fold the sweep results into one ``sigma`` per requested row.

    ``reach(i, v)`` is row ``i``'s ``R``/``G`` value at pin ``v``.
    """
    num_levels = len(state.levels)
    result: dict[int, float] = {}
    for i, row in enumerate(rows):
        state_row = state.row(row)
        time = (state_row.time0 if row < num_levels else state_row.time)
        olds = old_times[row]
        sigma = _INF
        for u, v, pess in runs:
            r = reach(i, v)
            if r == _INF:
                continue
            t = time[u]
            old = olds.get(u)
            if old is not None:
                t = max(t, old) if is_setup else min(t, old)
            if t == (-_INF if is_setup else _INF):
                continue
            s = (r - pess) - t if is_setup else (t + pess) + r
            if s < sigma:
                sigma = s
        if sigma != _INF:
            sigma -= SIGMA_SLOP * max(1.0, abs(sigma))
        result[row] = sigma
    return result


def sigma_min(graph: TimingGraph, core, state: ModeState,
              rows: list[int],
              runs: list[tuple[int, int, float]],
              old_times: list[dict[int, float]],
              clock_period: float, substrate: str) -> dict[int, float]:
    """Per requested row, the min ``sigma`` over all edited runs.

    ``runs`` holds ``(u, v, pess)`` with ``pess`` already pessimized
    over every value the run held during the batch (late-max for setup,
    early-min for hold).  ``old_times`` is :func:`~repro.pipeline.state
    .replay`'s per-row pre-edit primary times.  Rows a run cannot reach
    (or with no arrival at any edited source) get ``+inf`` — served
    even against an exhausted family's infinite boundary.
    """
    if not rows or not runs:
        return {row: _INF for row in rows}
    is_setup = state.mode.is_setup
    backend = "array" if substrate == "array" else "scalar"
    caps_per_row = _row_caps(graph, state, rows, clock_period, backend)

    if substrate == "array" and core is not None:
        reach = _sweep_numpy(core, rows, caps_per_row, runs, is_setup)
    else:
        reach = _sweep_python(graph, rows, caps_per_row, runs, is_setup)
    return _evaluate(state, rows, reach, runs, old_times, is_setup)


def _sweep_numpy(core, rows, caps_per_row, runs, is_setup):
    import numpy as np

    structure = core.structure
    n = structure.num_pins
    pess_col = (core.edge_late if is_setup else core.edge_early).astype(
        np.float64, copy=True)
    for u, v, pess in runs:
        lo, hi = structure.edge_run(u, v)
        pess_col[lo:hi] = pess

    reach = np.full((len(rows), n), _INF)
    for i, caps in enumerate(caps_per_row):
        for pin, cap in caps.items():
            if cap < reach[i, pin]:
                reach[i, pin] = cap

    for positions, sstarts, ssrc, dst_by_src in (
            structure.backward_geometry()):
        if is_setup:
            cand = reach[:, dst_by_src] - pess_col[positions]
        else:
            cand = pess_col[positions] + reach[:, dst_by_src]
        red = np.minimum.reduceat(cand, sstarts, axis=1)
        reach[:, ssrc] = np.minimum(reach[:, ssrc], red)

    def lookup(i: int, v: int) -> float:
        return float(reach[i, v])

    return lookup


def _sweep_python(graph: TimingGraph, rows, caps_per_row, runs, is_setup):
    overrides = {(u, v): pess for u, v, pess in runs}
    fanout = graph.fanout
    order = list(reversed(graph.topo_order))
    matrices = []
    for caps in caps_per_row:
        reach = [_INF] * graph.num_pins
        for pin, cap in caps.items():
            if cap < reach[pin]:
                reach[pin] = cap
        for u in order:
            best = reach[u]
            for v, delay_early, delay_late in fanout[u]:
                rv = reach[v]
                if rv == _INF:
                    continue
                delay = overrides.get((u, v))
                if delay is None:
                    delay = delay_late if is_setup else delay_early
                cand = rv - delay if is_setup else delay + rv
                if cand < best:
                    best = cand
            reach[u] = best
        matrices.append(reach)

    def lookup(i: int, v: int) -> float:
        return matrices[i][v]

    return lookup
