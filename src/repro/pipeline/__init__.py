"""The staged analysis pipeline behind incremental (ECO) re-analysis.

The CPPR stack is organized as five named stages, each with declared
inputs and a *validity key* — the tuple of state versions its outputs
depend on.  A cached artifact is served only while its recorded key
matches the current one; any edit bumps the relevant version, so a stale
artifact can be *detected* (and recomputed) rather than silently served:

========== ========================== ===============================
stage      inputs                     validity key
========== ========================== ===============================
structure  graph topology             (topology identity) — immutable
values     structure + edge delays    ``values_version``
propagation values + clock-tree seeds ``(tree_epoch, values_version)``
families   propagation + grouping + k ``basis + (mode, k, capacity)``
select     families + k               ``basis + (mode, k)``
========== ========================== ===============================

* **structure** — the immutable :class:`~repro.core.arrays.CoreStructure`
  (levelized edge CSR, fanin CSR, bucket geometry) plus everything else
  keyed by topology alone: ``topo_order``, binary-lifting up-tables,
  grouping matrices, batched pad geometry.  Shared across edits.
* **values** — the mutable :class:`~repro.core.arrays.CoreValues` delay
  columns, rewritten in place by a delay edit (``values_version`` bumps).
* **propagation** — per-mode arrival state: the dual tuples of every
  clock-tree level plus the single-tuple self-loop / primary-input
  states, with their deviation-cost columns.  A delay edit re-relaxes
  only the edit's fanout cone (falling back to full sweeps when the
  dirty fraction is large); a clock edit re-seeds the affected
  flip-flops' cones and bumps ``tree_epoch``.
* **families** — each candidate pass's top-``k`` list, cached per
  ``(family, mode, k, heap_capacity)`` in an :class:`ArtifactCache`.
  After an edit a family is re-served only when that is *provably*
  bit-identical to re-running it (see :mod:`repro.pipeline.bounds`);
  otherwise it re-runs on the maintained propagation state.
* **select** — Algorithm 6 over the family candidates; its memoized
  results (the engine's old ``_topk_cache``) live in a small keyed
  :class:`LruCache`.

:class:`~repro.pipeline.session.CpprSession` (via
:meth:`repro.cppr.engine.CpprEngine.session`) drives the stages; see
``docs/INCREMENTAL.md`` for the ECO walkthrough and
``docs/ARCHITECTURE.md`` for the stage diagram and dirty-cone rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.artifacts import ArtifactCache, LruCache
from repro.pipeline.session import CpprSession

__all__ = ["STAGES", "ArtifactCache", "CpprSession", "LruCache",
           "StageSpec"]


@dataclass(frozen=True, slots=True)
class StageSpec:
    """One pipeline stage: its name, inputs, and validity-key fields.

    ``key_fields`` name the session attributes whose values make up the
    stage's validity key; artifacts recorded under one key are invalid
    the moment any named field changes.
    """

    name: str
    inputs: tuple[str, ...]
    key_fields: tuple[str, ...]


#: The pipeline's stages, in dependency order.
STAGES: tuple[StageSpec, ...] = (
    StageSpec("structure", (), ()),
    StageSpec("values", ("structure",), ("values_version",)),
    StageSpec("propagation", ("values",),
              ("tree_epoch", "values_version")),
    StageSpec("families", ("propagation",),
              ("tree_epoch", "values_version")),
    StageSpec("select", ("families",),
              ("tree_epoch", "values_version")),
)
