"""Pair-enumeration baseline (OpenTimer-class architecture).

The architecture the paper attributes to prior exact tools: CPPR credits
depend on the *pair* of launching and capturing flip-flops, so the tool
analyzes one capturing endpoint at a time.  For each endpoint it

1. collects the endpoint's fan-in cone,
2. seeds every launching Q pin in the cone with its clock arrival offset
   by the exact pair credit ``credit(LCA(launch, capture))`` (possible
   because the capture is fixed), plus any primary inputs in the cone,
3. propagates arrivals and runs a deviation-based top-k search for this
   endpoint alone, and
4. merges per-endpoint results into the global top-k.

Results are exact, but the work is ``O(#FF * n)`` — each endpoint pays a
full propagation — which is precisely the FF-count-proportional cost the
paper's level decomposition eliminates.  Per-endpoint passes are
independent, so the same executors as the engine apply.
"""

from __future__ import annotations

from repro.baselines.common import (build_timing_path, fanin_cone,
                                    launchers_in_cone,
                                    primary_inputs_in_cone)
from repro.core import resolve_backend
from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.parallel import run_tasks
from repro.cppr.propagation import Seed, propagate_single
from repro.cppr.types import TimingPath
from repro.ds.bounded import TopK
from repro.exceptions import AnalysisError
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["PairEnumTimer"]


def _analyze_endpoint(analyzer: TimingAnalyzer, ff_index: int, k: int,
                      mode: AnalysisMode,
                      backend: str = "scalar") -> list[tuple[float, tuple]]:
    """Top-k (slack, pins) for one capturing flip-flop."""
    graph = analyzer.graph
    tree = graph.clock_tree
    capture = graph.ffs[ff_index]
    clock_period = analyzer.constraints.clock_period

    cone = fanin_cone(graph, capture.d_pin)

    seeds = []
    for launch_index in launchers_in_cone(graph, cone):
        launch = graph.ffs[launch_index]
        credit = tree.pair_credit(launch.tree_node, capture.tree_node)
        node = launch.tree_node
        if mode.is_setup:
            q_at = tree.at_late(node) + launch.clk_to_q_late - credit
        else:
            q_at = tree.at_early(node) + launch.clk_to_q_early + credit
        seeds.append(Seed(launch.q_pin, q_at, launch.ck_pin))
    for pi_index in primary_inputs_in_cone(graph, cone):
        pi = graph.primary_inputs[pi_index]
        seeds.append(Seed(pi.pin, pi.at_late if mode.is_setup
                          else pi.at_early))
    if not seeds:
        return []

    arrays = propagate_single(graph, mode, seeds, backend)
    record = arrays.best(capture.d_pin)
    if record is None:
        return []
    if mode.is_setup:
        slack = (tree.at_early(capture.tree_node) + clock_period
                 - capture.t_setup - record[0])
    else:
        slack = record[0] - (tree.at_late(capture.tree_node)
                             + capture.t_hold)
    capture_seed = CaptureSeed(slack, capture.d_pin,
                               capture_ff=capture.index)
    results = run_topk(graph, arrays, [capture_seed], k, mode)
    return [(result.slack, result.pins) for result in results]


class PairEnumTimer:
    """Exact per-endpoint CPPR timer; see module docstring."""

    def __init__(self, analyzer: TimingAnalyzer, executor: str = "serial",
                 workers: int | None = None,
                 backend: str = "auto") -> None:
        self.analyzer = analyzer
        self.executor = executor
        self.workers = workers
        self.backend = resolve_backend(backend)

    def top_paths(self, k: int, mode: AnalysisMode | str) -> list[TimingPath]:
        """Global top-``k`` post-CPPR critical paths, worst first."""
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        graph = self.analyzer.graph
        graph.topo_order  # share the cached order with forked workers

        if self.backend == "array":
            from repro.core.arrays import get_core
            get_core(graph)  # build once; workers inherit the cache
        args = [(self.analyzer, ff.index, k, mode, self.backend)
                for ff in graph.ffs]
        per_endpoint = run_tasks(_analyze_endpoint, args,
                                 executor=self.executor,
                                 workers=self.workers)

        top = TopK(k)
        for endpoint_paths in per_endpoint:
            for slack, pins in endpoint_paths:
                top.offer(slack, pins)
        selected = [build_timing_path(self.analyzer, pins, mode, slack)
                    for slack, pins in top.sorted_items()]
        selected.sort(key=TimingPath.key)
        return selected

    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        return [path.slack for path in self.top_paths(k, mode)]
