"""Ground-truth oracle: explicit enumeration of every data path.

Enumerates all launch-to-capture paths by backward depth-first search
from each endpoint, computes each path's exact post-CPPR slack from
Equation (2), and sorts.  Exponential in circuit size — strictly a
verification tool for the small randomized circuits in the test suite,
where it defines correctness for the engine and all other baselines.
"""

from __future__ import annotations

from repro.baselines.common import build_timing_path
from repro.cppr.types import TimingPath
from repro.exceptions import AnalysisError
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["ExhaustiveTimer"]


class ExhaustiveTimer:
    """Enumerate-everything reference timer.

    ``max_paths`` guards against accidental use on non-tiny circuits; the
    timer raises :class:`AnalysisError` rather than hang.
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 max_paths: int = 200_000,
                 include_output_tests: bool = False) -> None:
        self.analyzer = analyzer
        self.max_paths = max_paths
        self.include_output_tests = include_output_tests

    def _endpoints(self) -> list[int]:
        graph = self.analyzer.graph
        pins = [ff.d_pin for ff in graph.ffs]
        if self.include_output_tests:
            pins.extend(po.pin for po in graph.primary_outputs
                        if po.rat_early is not None
                        or po.rat_late is not None)
        return pins

    def all_paths(self, mode: AnalysisMode | str) -> list[TimingPath]:
        """Every path to every endpoint, sorted by post-CPPR slack.

        Paths ending at an unconstrained primary output in this mode are
        skipped (there is no test to report a slack for).
        """
        mode = AnalysisMode.coerce(mode)
        graph = self.analyzer.graph
        sources = {ff.q_pin for ff in graph.ffs}
        sources.update(pi.pin for pi in graph.primary_inputs)

        paths: list[TimingPath] = []
        for endpoint in self._endpoints():
            po = next((p for p in graph.primary_outputs
                       if p.pin == endpoint), None)
            if po is not None:
                rat = po.rat_late if mode.is_setup else po.rat_early
                if rat is None:
                    continue
            for pins in self._enumerate_backward(endpoint, sources):
                if len(paths) >= self.max_paths:
                    raise AnalysisError(
                        f"exhaustive enumeration exceeded "
                        f"{self.max_paths} paths; this oracle is only "
                        f"meant for tiny circuits")
                paths.append(build_timing_path(self.analyzer, pins, mode))
        paths.sort(key=TimingPath.key)
        return paths

    def _enumerate_backward(self, endpoint: int, sources: set[int]):
        """Yield every pin sequence from a source to ``endpoint``."""
        graph = self.analyzer.graph
        suffix: list[int] = []

        def recurse(pin: int):
            suffix.append(pin)
            if pin in sources:
                yield tuple(reversed(suffix))
            # A source pin never has data fan-in (Q pins and PIs are pure
            # drivers), so recursion below is mutually exclusive with the
            # yield above — but iterate anyway for robustness.
            for predecessor, _early, _late in graph.fanin[pin]:
                yield from recurse(predecessor)
            suffix.pop()

        yield from recurse(endpoint)

    def top_paths(self, k: int, mode: AnalysisMode | str) -> list[TimingPath]:
        """Global top-``k`` post-CPPR paths by full enumeration."""
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        return self.all_paths(mode)[:k]

    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        return [path.slack for path in self.top_paths(k, mode)]
