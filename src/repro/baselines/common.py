"""Shared helpers for the baseline timers.

Thin re-export of :mod:`repro.cppr.pathutils`, kept so baseline modules
(and their tests) have a natural local import site.
"""

from repro.cppr.pathutils import (build_timing_path, fanin_cone,
                                  launchers_in_cone,
                                  primary_inputs_in_cone)

__all__ = ["build_timing_path", "fanin_cone", "launchers_in_cone",
           "primary_inputs_in_cone"]
