"""Branch-and-bound baseline (iTimerC-class architecture).

Per capturing endpoint, paths are grown backward from the data pin in a
best-first order.  Each partial path carries an admissible bound on the
post-CPPR slack of any of its completions: the block-based arrival-time
arrays bound the launch-side arrival, and credits are non-negative, so

    bound(partial) = pre-CPPR slack bound of best completion + 0.

Partials pop in non-decreasing bound order; a reached launch pin (FF Q
pin or primary input) turns the partial into a *complete* path re-keyed
by its exact post-CPPR slack, so completes also pop in exact order —
the classic A*-style k-best path enumeration.

Faithful to the pair-enumeration architecture the paper critiques, each
endpoint generates its own local top-k (pruned only against its *own*
running k-th best plus a sound skip of endpoints whose best pre-CPPR
slack cannot beat the global threshold); the per-endpoint results are
merged afterwards.  Because credits are large exactly where CPPR matters,
the pre-CPPR bound under-estimates post-CPPR slacks by up to the full
clock-path credit, so the frontier widens — and runtime and memory climb
steeply — as ``k`` grows.  That is the iTimerC profile in the paper's
Figure 5: very sharp at ``k = 1``, explosive at ``k = 10K``.
"""

from __future__ import annotations

import heapq
import itertools

from repro.baselines.common import build_timing_path
from repro.circuit.pins import PinKind
from repro.cppr.types import TimingPath
from repro.ds.bounded import TopK
from repro.exceptions import AnalysisError
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["BranchBoundTimer"]


class BranchBoundTimer:
    """Best-first branch-and-bound CPPR timer; see module docstring.

    ``max_expansions`` caps the total number of frontier expansions per
    query as a safety valve against pathological blowup; exceeding it
    raises :class:`AnalysisError` (results are never silently truncated).
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 max_expansions: int = 50_000_000) -> None:
        self.analyzer = analyzer
        self.max_expansions = max_expansions

    def top_paths(self, k: int, mode: AnalysisMode | str) -> list[TimingPath]:
        """Global top-``k`` post-CPPR critical paths, worst first."""
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        analyzer = self.analyzer
        arrivals = analyzer.arrivals

        pre_slacks = analyzer.endpoint_slacks(mode)
        ff_order = sorted(
            (s for s in pre_slacks if s.ff_index is not None
             and s.slack is not None),
            key=lambda s: s.slack)

        top = TopK(k)
        budget = self.max_expansions
        for endpoint in ff_order:
            if not top.would_accept(endpoint.slack):
                continue  # post-CPPR slack >= pre-CPPR slack: sound skip
            local, budget = self._search_endpoint(
                endpoint.ff_index, k, mode, arrivals, budget)
            for slack, pins in local.sorted_items():
                top.offer(slack, pins)

        selected = [build_timing_path(analyzer, pins, mode, slack)
                    for slack, pins in top.sorted_items()]
        selected.sort(key=TimingPath.key)
        return selected

    def _search_endpoint(self, ff_index: int, k: int, mode: AnalysisMode,
                         arrivals, budget: int) -> tuple[TopK, int]:
        """A* enumerate this endpoint's local top-``k`` paths."""
        analyzer = self.analyzer
        graph = analyzer.graph
        tree = graph.clock_tree
        capture = graph.ffs[ff_index]
        is_setup = mode.is_setup

        if is_setup:
            capture_const = (tree.at_early(capture.tree_node)
                             + analyzer.constraints.clock_period
                             - capture.t_setup)
        else:
            capture_const = (tree.at_late(capture.tree_node)
                             + capture.t_hold)

        def pre_slack_bound(pin: int, suffix_delay: float) -> float | None:
            """Admissible pre-CPPR slack of the best completion at ``pin``."""
            if is_setup:
                at = arrivals.late_at(pin)
                if at is None:
                    return None
                return capture_const - (at + suffix_delay)
            at = arrivals.early_at(pin)
            if at is None:
                return None
            return (at + suffix_delay) - capture_const

        local = TopK(k)
        counter = itertools.count()
        # Heap entries: (key, seq, is_complete, pin, suffix_delay, chain)
        # where chain is a (pin, parent_chain) linked list whose head is
        # the launch-side end.
        heap: list[tuple] = []
        start_bound = pre_slack_bound(capture.d_pin, 0.0)
        if start_bound is not None:
            heapq.heappush(heap, (start_bound, next(counter), False,
                                  capture.d_pin, 0.0,
                                  (capture.d_pin, None)))

        while heap:
            key, _seq, is_complete, pin, suffix_delay, chain = (
                heapq.heappop(heap))
            if not local.would_accept(key):
                break  # keys are non-decreasing: this endpoint is done
            if is_complete:
                local.offer(key, _materialize(chain))
                continue

            budget -= 1
            if budget < 0:
                raise AnalysisError(
                    f"branch-and-bound exceeded {self.max_expansions} "
                    f"expansions; raise max_expansions or use a smaller "
                    f"design")

            launch_ff = graph.ff_of_q_pin.get(pin)
            if launch_ff is not None:
                # Reached a Q pin: complete with the exact pair credit.
                launch = graph.ffs[launch_ff]
                credit = tree.pair_credit(launch.tree_node,
                                          capture.tree_node)
                node = launch.tree_node
                if is_setup:
                    d_at = (tree.at_late(node) + launch.clk_to_q_late
                            - credit + suffix_delay)
                    exact = capture_const - d_at
                else:
                    d_at = (tree.at_early(node) + launch.clk_to_q_early
                            + credit + suffix_delay)
                    exact = d_at - capture_const
                if local.would_accept(exact):
                    heapq.heappush(heap, (exact, next(counter), True, pin,
                                          suffix_delay, chain))
                continue
            if graph.pins[pin].kind is PinKind.PRIMARY_INPUT:
                pi = next(p for p in graph.primary_inputs if p.pin == pin)
                launch_at = pi.at_late if is_setup else pi.at_early
                if is_setup:
                    exact = capture_const - (launch_at + suffix_delay)
                else:
                    exact = (launch_at + suffix_delay) - capture_const
                if local.would_accept(exact):
                    heapq.heappush(heap, (exact, next(counter), True, pin,
                                          suffix_delay, chain))
                continue

            for w, delay_early, delay_late in graph.fanin[pin]:
                delay = delay_late if is_setup else delay_early
                new_suffix = suffix_delay + delay
                bound = pre_slack_bound(w, new_suffix)
                if bound is None or not local.would_accept(bound):
                    continue
                heapq.heappush(heap, (bound, next(counter), False, w,
                                      new_suffix, (w, chain)))
        return local, budget

    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        return [path.slack for path in self.top_paths(k, mode)]


def _materialize(chain: tuple) -> tuple[int, ...]:
    """Expand a (pin, parent) linked list into a launch-to-capture tuple."""
    pins = []
    while chain is not None:
        pins.append(chain[0])
        chain = chain[1]
    return tuple(pins)
