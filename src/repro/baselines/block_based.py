"""Block-based baseline (HappyTimer-class architecture).

Reproduces the architectural profile of block-based CPPR with
design-specific pruning:

* **Block preprocessing** — the full launch->capture credit table is
  computed up front: for every capturing flip-flop, every launching
  flip-flop that reaches it and their pair credit.  Its size is the
  design's total FF connectivity, which is exactly why this class of
  tool is fast on sparse designs and memory-bound on dense ones (the
  paper's leon2 observation, where HappyTimer exceeded 960 GB).
* **Slack-bound pruning** — endpoints are processed in ascending order of
  their best pre-CPPR slack; an endpoint whose best pre-CPPR slack cannot
  beat the current global k-th best post-CPPR slack is skipped entirely.
  Sound because credits are non-negative: every path's post-CPPR slack is
  at least its pre-CPPR slack.  Sharp at small ``k``, nearly useless at
  large ``k``.

Endpoints that survive pruning are analyzed exactly like the
pair-enumeration baseline, seeded from the precomputed credit table.
"""

from __future__ import annotations

from repro.baselines.common import (build_timing_path, fanin_cone,
                                    launchers_in_cone,
                                    primary_inputs_in_cone)
from repro.core import resolve_backend
from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.propagation import Seed, propagate_single
from repro.cppr.types import TimingPath
from repro.ds.bounded import TopK
from repro.exceptions import AnalysisError
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["BlockBasedTimer"]


class BlockBasedTimer:
    """Credit-table + pruning CPPR timer; see module docstring."""

    def __init__(self, analyzer: TimingAnalyzer,
                 backend: str = "auto") -> None:
        self.analyzer = analyzer
        self.backend = resolve_backend(backend)
        self._credit_table: dict[int, list[tuple[int, float]]] | None = None
        self._pi_table: dict[int, list[int]] | None = None

    # ------------------------------------------------------------------
    # Block preprocessing
    # ------------------------------------------------------------------
    def credit_table(self) -> dict[int, list[tuple[int, float]]]:
        """``capture_ff -> [(launch_ff, pair credit), ...]`` for every
        connected pair.  Cached; its size is the design's FF connectivity
        footprint."""
        if self._credit_table is None:
            self._build_tables()
        return self._credit_table

    def _build_tables(self) -> None:
        graph = self.analyzer.graph
        tree = graph.clock_tree
        credit_table: dict[int, list[tuple[int, float]]] = {}
        pi_table: dict[int, list[int]] = {}
        for capture in graph.ffs:
            cone = fanin_cone(graph, capture.d_pin)
            pairs = []
            for launch_index in launchers_in_cone(graph, cone):
                launch = graph.ffs[launch_index]
                pairs.append((launch_index,
                              tree.pair_credit(launch.tree_node,
                                               capture.tree_node)))
            credit_table[capture.index] = pairs
            pi_table[capture.index] = primary_inputs_in_cone(graph, cone)
        self._credit_table = credit_table
        self._pi_table = pi_table

    def connectivity(self) -> float:
        """Average number of launching FFs per capturing FF — the paper's
        "FF connectivity" statistic, as seen by this tool's memory."""
        table = self.credit_table()
        if not table:
            return 0.0
        return sum(len(pairs) for pairs in table.values()) / len(table)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def top_paths(self, k: int, mode: AnalysisMode | str) -> list[TimingPath]:
        """Global top-``k`` post-CPPR critical paths, worst first."""
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        analyzer = self.analyzer
        graph = analyzer.graph
        tree = graph.clock_tree
        clock_period = analyzer.constraints.clock_period
        if self._credit_table is None:
            self._build_tables()

        # Order endpoints by pre-CPPR criticality so the global threshold
        # tightens as early as possible.
        pre_slacks = analyzer.endpoint_slacks(mode)
        ff_order = sorted(
            (s for s in pre_slacks if s.ff_index is not None
             and s.slack is not None),
            key=lambda s: s.slack)

        top = TopK(k)
        results: list[tuple[float, tuple]] = []
        for endpoint in ff_order:
            if not top.would_accept(endpoint.slack):
                # Every path into this endpoint has post-CPPR slack
                # >= its pre-CPPR slack >= endpoint.slack: skip.
                continue
            capture = graph.ffs[endpoint.ff_index]
            seeds = []
            for launch_index, credit in self._credit_table[capture.index]:
                launch = graph.ffs[launch_index]
                node = launch.tree_node
                if mode.is_setup:
                    q_at = tree.at_late(node) + launch.clk_to_q_late - credit
                else:
                    q_at = (tree.at_early(node) + launch.clk_to_q_early
                            + credit)
                seeds.append(Seed(launch.q_pin, q_at, launch.ck_pin))
            for pi_index in self._pi_table[capture.index]:
                pi = graph.primary_inputs[pi_index]
                seeds.append(Seed(pi.pin, pi.at_late if mode.is_setup
                                  else pi.at_early))
            if not seeds:
                continue
            arrays = propagate_single(graph, mode, seeds, self.backend)
            record = arrays.best(capture.d_pin)
            if record is None:
                continue
            if mode.is_setup:
                slack = (tree.at_early(capture.tree_node) + clock_period
                         - capture.t_setup - record[0])
            else:
                slack = record[0] - (tree.at_late(capture.tree_node)
                                     + capture.t_hold)
            capture_seed = CaptureSeed(slack, capture.d_pin,
                                       capture_ff=capture.index)
            for result in run_topk(graph, arrays, [capture_seed], k, mode):
                if top.offer(result.slack, result.pins):
                    results.append((result.slack, result.pins))

        selected = [build_timing_path(analyzer, pins, mode, slack)
                    for slack, pins in top.sorted_items()]
        selected.sort(key=TimingPath.key)
        return selected

    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        return [path.slack for path in self.top_paths(k, mode)]
