"""Baseline CPPR timers used for comparison and as correctness oracles.

The paper evaluates against three state-of-the-art tools.  Their binaries
are not redistributable, so this package reimplements each tool's
*architecture* — the property that determines its scaling behaviour:

* :class:`~repro.baselines.pair_enum.PairEnumTimer` (OpenTimer-class) —
  exact per-capture-FF analysis: one propagation and one top-k search per
  endpoint, ``O(#FF * n)`` overall.
* :class:`~repro.baselines.block_based.BlockBasedTimer`
  (HappyTimer-class) — precomputes the launch->capture credit table
  (memory proportional to FF connectivity) and prunes endpoints whose
  best pre-CPPR slack cannot enter the top-k.
* :class:`~repro.baselines.branch_bound.BranchBoundTimer`
  (iTimerC-class) — per-endpoint best-first branch-and-bound path search
  with admissible slack bounds; sharp at small k, explodes as k grows.
* :class:`~repro.baselines.exhaustive.ExhaustiveTimer` — enumerates every
  path explicitly; exponential, used only as the ground-truth oracle on
  small circuits.

All four produce exact post-CPPR results (matching the engine), differing
only in time and memory.
"""

from repro.baselines.block_based import BlockBasedTimer
from repro.baselines.branch_bound import BranchBoundTimer
from repro.baselines.exhaustive import ExhaustiveTimer
from repro.baselines.pair_enum import PairEnumTimer

__all__ = [
    "BlockBasedTimer",
    "BranchBoundTimer",
    "ExhaustiveTimer",
    "PairEnumTimer",
]
