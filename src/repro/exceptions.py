"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitStructureError(ReproError):
    """The circuit netlist or timing graph is structurally invalid.

    Raised for problems such as combinational cycles, dangling FF pins,
    clock-tree nodes with multiple parents, or edges referencing unknown
    pins.
    """


class TimingConstraintError(ReproError):
    """A timing constraint is missing, inconsistent, or out of range."""


class AnalysisError(ReproError):
    """A timing analysis step could not be completed.

    Raised, for example, when path queries are issued before arrival times
    have been propagated, or when a requested analysis mode is unknown.
    """


class ExecutionError(AnalysisError):
    """A query's task execution failed beyond recovery.

    Raised by the resilient scheduler (:mod:`repro.cppr.parallel`) and
    :class:`repro.cppr.engine.CpprEngine` when a task keeps failing
    after every configured retry and every fallback rung — or, with
    ``strict=True``, on the *first* fault instead of degrading.  The
    original failure is chained as ``__cause__``.
    """


class DeadlineExpired(AnalysisError):
    """A cooperative deadline ran out before the work completed.

    Raised by the resilient scheduler (and other deadline-aware loops)
    when the ambient :func:`repro.cppr.parallel.deadline_scope` budget
    is exhausted.  The partial work is discarded — a deadline-expired
    query never returns a partial report; the timing server maps this
    to a structured 408 response.
    """


class ShmError(ReproError):
    """A shared-memory plane operation failed.

    Base class for the :mod:`repro.core.shm` failure modes.  Both
    subclasses are *recoverable* by design: the resilient scheduler
    treats them as ordinary task failures, so a query whose workers
    cannot attach (or see a stale segment) degrades down the
    ``process -> thread -> serial`` ladder and still returns the exact
    report from the parent's live objects.
    """


class ShmAttachError(ShmError):
    """A worker could not attach a published shared-memory segment.

    Raised when the named segment no longer exists (unlinked by the
    owner, or the descriptor outlived its query), when the platform
    refuses the mapping, or by the injected ``shm.attach`` chaos site.
    """


class ShmStaleError(ShmError):
    """A segment's version slot disagrees with the descriptor.

    The publisher stamps every segment with a version counter
    (:attr:`repro.core.arrays.CoreValues.version` for value columns) and
    in-place updates bump the slot; a reader holding a descriptor minted
    before the update must *detect* the mismatch — this error — rather
    than serve values the descriptor's query never saw.  Also raised by
    the injected ``shm.stale`` chaos site.
    """


class DegradedResultWarning(RuntimeWarning):
    """A query completed, but only by degrading its execution strategy.

    Emitted (via :mod:`warnings`) when the engine fell back to a safer
    executor or compute backend mid-query.  The result is still exact —
    every degradation rung is bit-for-bit equivalent — but the run was
    slower than configured, which operators may want to alert on.
    """


class FormatError(ReproError):
    """A design file could not be parsed or serialized."""

    def __init__(self, message: str, *, line: int | None = None,
                 path: str | None = None) -> None:
        location = ""
        if path is not None:
            location += str(path)
        if line is not None:
            location += f":{line}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.line = line
        self.path = path
