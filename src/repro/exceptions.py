"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitStructureError(ReproError):
    """The circuit netlist or timing graph is structurally invalid.

    Raised for problems such as combinational cycles, dangling FF pins,
    clock-tree nodes with multiple parents, or edges referencing unknown
    pins.
    """


class TimingConstraintError(ReproError):
    """A timing constraint is missing, inconsistent, or out of range."""


class AnalysisError(ReproError):
    """A timing analysis step could not be completed.

    Raised, for example, when path queries are issued before arrival times
    have been propagated, or when a requested analysis mode is unknown.
    """


class ExecutionError(AnalysisError):
    """A query's task execution failed beyond recovery.

    Raised by the resilient scheduler (:mod:`repro.cppr.parallel`) and
    :class:`repro.cppr.engine.CpprEngine` when a task keeps failing
    after every configured retry and every fallback rung — or, with
    ``strict=True``, on the *first* fault instead of degrading.  The
    original failure is chained as ``__cause__``.
    """


class DeadlineExpired(AnalysisError):
    """A cooperative deadline ran out before the work completed.

    Raised by the resilient scheduler (and other deadline-aware loops)
    when the ambient :func:`repro.cppr.parallel.deadline_scope` budget
    is exhausted.  The partial work is discarded — a deadline-expired
    query never returns a partial report; the timing server maps this
    to a structured 408 response.
    """


class ShmError(ReproError):
    """A shared-memory plane operation failed.

    Base class for the :mod:`repro.core.shm` failure modes.  Both
    subclasses are *recoverable* by design: the resilient scheduler
    treats them as ordinary task failures, so a query whose workers
    cannot attach (or see a stale segment) degrades down the
    ``process -> thread -> serial`` ladder and still returns the exact
    report from the parent's live objects.
    """


class ShmAttachError(ShmError):
    """A worker could not attach a published shared-memory segment.

    Raised when the named segment no longer exists (unlinked by the
    owner, or the descriptor outlived its query), when the platform
    refuses the mapping, or by the injected ``shm.attach`` chaos site.
    """


class ShmStaleError(ShmError):
    """A segment's version slot disagrees with the descriptor.

    The publisher stamps every segment with a version counter
    (:attr:`repro.core.arrays.CoreValues.version` for value columns) and
    in-place updates bump the slot; a reader holding a descriptor minted
    before the update must *detect* the mismatch — this error — rather
    than serve values the descriptor's query never saw.  Also raised by
    the injected ``shm.stale`` chaos site.
    """


class DegradedResultWarning(RuntimeWarning):
    """A query completed, but only by degrading its execution strategy.

    Emitted (via :mod:`warnings`) when the engine fell back to a safer
    executor or compute backend mid-query.  The result is still exact —
    every degradation rung is bit-for-bit equivalent — but the run was
    slower than configured, which operators may want to alert on.
    """


class SourceLocation:
    """A ``path:line:col`` position inside a design source file.

    The shared diagnostics vocabulary of every frontend parser: the
    tokenizer (or line scanner) tracks one of these and hands it to
    :class:`FormatError` via :meth:`error`, so all formats — TAU text,
    JSON, Verilog, Yosys JSON, SDF — report positions identically.
    Lines and columns are 1-based; either may be omitted when the
    format has no meaningful notion of it (``col`` for line-oriented
    formats, both for whole-file errors).
    """

    __slots__ = ("path", "line", "col")

    def __init__(self, path: str | None = None, line: int | None = None,
                 col: int | None = None) -> None:
        self.path = None if path is None else str(path)
        self.line = line
        self.col = col

    def __str__(self) -> str:
        parts = [] if self.path is None else [self.path]
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        return ":".join(parts)

    def __repr__(self) -> str:
        return (f"SourceLocation(path={self.path!r}, line={self.line!r}, "
                f"col={self.col!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (self.path, self.line, self.col) == \
            (other.path, other.line, other.col)

    def error(self, message: str) -> "FormatError":
        """A :class:`FormatError` pinned to this location."""
        return FormatError(message, path=self.path, line=self.line,
                           col=self.col)


class FormatError(ReproError):
    """A design file could not be parsed or serialized.

    The message is prefixed with the offending position as
    ``path:line:col:`` (each part optional, rendered by
    :class:`SourceLocation`), the diagnostic shape editors and CI log
    scrapers already understand.
    """

    def __init__(self, message: str, *, line: int | None = None,
                 path: str | None = None, col: int | None = None) -> None:
        location = str(SourceLocation(path, line, col))
        if location:
            message = f"{location}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col
        self.path = path
