"""A small generic standard-cell library.

Delays follow a simple, consistent model: each function has a base delay
reflecting its stack complexity, rising outputs are slightly slower than
falling ones (pull-up vs pull-down), higher drive strengths divide the
delay, and the late bound exceeds the early bound by a fixed variation
factor.  The absolute values are arbitrary but realistic in *shape* —
what the analysis cares about.
"""

from __future__ import annotations

from repro.library.cells import (CellFunction, FlipFlopCell, LibraryCell,
                                 StandardCellLibrary)

__all__ = ["default_library"]

# function -> (input counts offered, base delay)
_COMB_TEMPLATES: dict[CellFunction, tuple[tuple[int, ...], float]] = {
    CellFunction.BUF: ((1,), 0.6),
    CellFunction.INV: ((1,), 0.4),
    CellFunction.NAND: ((2, 3, 4), 0.7),
    CellFunction.NOR: ((2, 3, 4), 0.8),
    CellFunction.AND: ((2, 3, 4), 1.0),
    CellFunction.OR: ((2, 3, 4), 1.1),
    CellFunction.XOR: ((2,), 1.4),
    CellFunction.XNOR: ((2,), 1.5),
}

_RISE_FACTOR = 1.15   # pull-up networks are a bit slower
_LATE_FACTOR = 1.35   # on-chip variation: late = early * factor
_INPUT_PENALTY = 0.12  # each extra input adds stack delay


def _arc_delays(base: float, num_inputs: int, drive: int,
                rise: bool) -> tuple[tuple[float, float], ...]:
    arcs = []
    for i in range(num_inputs):
        early = (base + _INPUT_PENALTY * i) / drive
        if rise:
            early *= _RISE_FACTOR
        arcs.append((round(early, 6), round(early * _LATE_FACTOR, 6)))
    return tuple(arcs)


def default_library(drive_strengths: tuple[int, ...] = (1, 2, 4)
                    ) -> StandardCellLibrary:
    """Build the generic library (``INV_X1``, ``NAND2_X4``, ``DFF_X1``…).

    Combinational cells are named ``{FUNC}{inputs}_X{drive}`` (input
    count omitted for single-input cells); flip-flops ``DFF_X{drive}``.
    """
    library = StandardCellLibrary("generic")
    for function, (input_counts, base) in _COMB_TEMPLATES.items():
        for num_inputs in input_counts:
            for drive in drive_strengths:
                suffix = ("" if num_inputs == 1
                          else str(num_inputs))
                name = f"{function.value.upper()}{suffix}_X{drive}"
                library.add(LibraryCell(
                    name=name, function=function, num_inputs=num_inputs,
                    rise_delays=_arc_delays(base, num_inputs, drive,
                                            rise=True),
                    fall_delays=_arc_delays(base, num_inputs, drive,
                                            rise=False)))
    for drive in drive_strengths:
        c2q = 0.3 / drive
        library.add(FlipFlopCell(
            name=f"DFF_X{drive}",
            t_setup_rise=0.08, t_setup_fall=0.10,
            t_hold_rise=0.03, t_hold_fall=0.04,
            clk_to_q_rise=(round(c2q * _RISE_FACTOR, 6),
                           round(c2q * _RISE_FACTOR * _LATE_FACTOR, 6)),
            clk_to_q_fall=(round(c2q, 6),
                           round(c2q * _LATE_FACTOR, 6))))
    return library
