"""Library cell templates with transition-aware timing arcs."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import TimingConstraintError

__all__ = ["CellFunction", "FlipFlopCell", "LibraryCell",
           "StandardCellLibrary", "Unateness"]


class Unateness(enum.Enum):
    """How an input transition maps to output transitions."""

    POSITIVE = "positive"   # input rise -> output rise
    NEGATIVE = "negative"   # input rise -> output fall
    NON_UNATE = "non_unate"  # input rise -> both output transitions


class CellFunction(enum.Enum):
    """Logic function of a combinational cell; fixes arc unateness."""

    BUF = "buf"
    INV = "inv"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"

    @property
    def unateness(self) -> Unateness:
        if self in (CellFunction.BUF, CellFunction.AND, CellFunction.OR):
            return Unateness.POSITIVE
        if self in (CellFunction.INV, CellFunction.NAND, CellFunction.NOR):
            return Unateness.NEGATIVE
        return Unateness.NON_UNATE

    @property
    def min_inputs(self) -> int:
        return 1 if self in (CellFunction.BUF, CellFunction.INV) else 2


@dataclass(frozen=True, slots=True)
class LibraryCell:
    """A combinational cell template.

    ``rise_delays[i]`` / ``fall_delays[i]`` are the (early, late) delays
    of the arc from input ``i`` to an output *rise* / *fall*.  Inputs are
    named ``A0..A{n-1}`` and the output ``Y`` when instantiated (matching
    :class:`repro.circuit.cells.GateSpec`).
    """

    name: str
    function: CellFunction
    num_inputs: int
    rise_delays: tuple[tuple[float, float], ...]
    fall_delays: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if self.num_inputs < self.function.min_inputs:
            raise TimingConstraintError(
                f"cell {self.name!r}: {self.function.value} needs at "
                f"least {self.function.min_inputs} inputs, got "
                f"{self.num_inputs}")
        for label, delays in (("rise", self.rise_delays),
                              ("fall", self.fall_delays)):
            if len(delays) != self.num_inputs:
                raise TimingConstraintError(
                    f"cell {self.name!r}: {label}_delays has "
                    f"{len(delays)} entries for {self.num_inputs} inputs")
            for early, late in delays:
                if early > late:
                    raise TimingConstraintError(
                        f"cell {self.name!r}: {label} arc early delay "
                        f"{early} exceeds late delay {late}")

    @property
    def unateness(self) -> Unateness:
        return self.function.unateness

    def arcs_to_output_rise(self) -> list[tuple[int, str,
                                                tuple[float, float]]]:
        """(input index, required input transition, delay) arcs that
        produce an output *rise*."""
        result = []
        for i in range(self.num_inputs):
            if self.unateness in (Unateness.POSITIVE, Unateness.NON_UNATE):
                result.append((i, "r", self.rise_delays[i]))
            if self.unateness in (Unateness.NEGATIVE, Unateness.NON_UNATE):
                result.append((i, "f", self.rise_delays[i]))
        return result

    def arcs_to_output_fall(self) -> list[tuple[int, str,
                                                tuple[float, float]]]:
        """(input index, required input transition, delay) arcs that
        produce an output *fall*."""
        result = []
        for i in range(self.num_inputs):
            if self.unateness in (Unateness.POSITIVE, Unateness.NON_UNATE):
                result.append((i, "f", self.fall_delays[i]))
            if self.unateness in (Unateness.NEGATIVE, Unateness.NON_UNATE):
                result.append((i, "r", self.fall_delays[i]))
        return result


@dataclass(frozen=True, slots=True)
class FlipFlopCell:
    """A sequential cell template (rising-edge DFF).

    Setup/hold constraints and clock-to-Q delays may differ per data /
    output transition, as they do in real libraries.
    """

    name: str
    t_setup_rise: float = 0.0
    t_setup_fall: float = 0.0
    t_hold_rise: float = 0.0
    t_hold_fall: float = 0.0
    clk_to_q_rise: tuple[float, float] = (0.0, 0.0)
    clk_to_q_fall: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        for label, (early, late) in (("rise", self.clk_to_q_rise),
                                     ("fall", self.clk_to_q_fall)):
            if early > late:
                raise TimingConstraintError(
                    f"cell {self.name!r}: clk->Q {label} early delay "
                    f"{early} exceeds late delay {late}")


class StandardCellLibrary:
    """A named collection of combinational and sequential cells."""

    def __init__(self, name: str = "library") -> None:
        self.name = name
        self._combinational: dict[str, LibraryCell] = {}
        self._sequential: dict[str, FlipFlopCell] = {}

    def add(self, cell: LibraryCell | FlipFlopCell) -> None:
        """Register a cell; duplicate names are rejected."""
        table = (self._combinational if isinstance(cell, LibraryCell)
                 else self._sequential)
        if cell.name in self._combinational or \
                cell.name in self._sequential:
            raise TimingConstraintError(
                f"library {self.name!r} already has a cell "
                f"{cell.name!r}")
        table[cell.name] = cell

    def cell(self, name: str) -> LibraryCell:
        """Look up a combinational cell by name."""
        try:
            return self._combinational[name]
        except KeyError:
            raise KeyError(
                f"library {self.name!r} has no combinational cell "
                f"{name!r}; available: {sorted(self._combinational)}"
                ) from None

    def flip_flop(self, name: str) -> FlipFlopCell:
        """Look up a sequential cell by name."""
        try:
            return self._sequential[name]
        except KeyError:
            raise KeyError(
                f"library {self.name!r} has no flip-flop cell {name!r}; "
                f"available: {sorted(self._sequential)}") from None

    def is_flip_flop(self, name: str) -> bool:
        return name in self._sequential

    def __contains__(self, name: str) -> bool:
        return name in self._combinational or name in self._sequential

    def __len__(self) -> int:
        return len(self._combinational) + len(self._sequential)

    def __iter__(self) -> Iterator[str]:
        yield from self._combinational
        yield from self._sequential
