"""Standard-cell library modeling.

Real designs are built from library cells whose logic function fixes the
*unateness* of each timing arc (whether an input rise produces an output
rise, fall, or both).  This package provides:

* :class:`~repro.library.cells.LibraryCell` — a cell template with
  per-arc, per-transition (early, late) delays and a
  :class:`~repro.library.cells.CellFunction` that defines unateness;
* :class:`~repro.library.cells.StandardCellLibrary` — a named collection
  with lookup and validation;
* :func:`~repro.library.standard.default_library` — a small generic
  library (INV/BUF/NAND/NOR/AND/OR/XOR/XNOR/DFF at several drive
  strengths) used by the examples, the rise/fall workload generator, and
  the Verilog front-end tests.

The rise/fall analysis layer (:mod:`repro.transitions`) consumes these
cells; the single-transition core never needs them.
"""

from repro.library.cells import (CellFunction, FlipFlopCell, LibraryCell,
                                 StandardCellLibrary, Unateness)
from repro.library.standard import default_library

__all__ = [
    "CellFunction",
    "FlipFlopCell",
    "LibraryCell",
    "StandardCellLibrary",
    "Unateness",
    "default_library",
]
