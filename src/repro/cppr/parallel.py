"""Executors for the engine's independent per-level tasks.

Algorithm 1 performs ``D + 2`` independent passes over the graph (one per
clock-tree level, plus self-loop and primary-input passes).  The paper
parallelizes them across threads; in CPython the passes are pure-Python
CPU work, so true speedup requires processes.  Three strategies:

* ``"serial"`` — run in the calling thread (default; lowest overhead).
* ``"thread"`` — a thread pool.  Structure-faithful to the paper but
  GIL-bound in CPython; provided for API completeness and for workloads
  dominated by allocator/IO time.
* ``"process"`` — a ``fork`` process pool.  The analyzer is shared with
  workers through fork-time memory inheritance (nothing is pickled going
  in; only the small result path lists are pickled coming back), mirroring
  the paper's shared-memory threading as closely as Python allows.

The Figure 6 thread-scaling experiment uses the process executor.

Observability: when a :mod:`repro.obs` collector is active, every task's
spans and counters are captured per task — in a detached thread state for
the thread pool, in a per-process sub-collector (shipped back pickled as a
profile dict) for the fork pool — and merged into the caller's collector
in **task order**, so counter totals and span sets are identical across
the three executors for the same workload.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.exceptions import AnalysisError
from repro.obs import collector as _obs
from repro.obs.collector import Collector, collecting
from repro.obs.profile import Profile

__all__ = ["available_executors", "run_tasks"]

_FORK_PAYLOAD: tuple[Callable[..., Any], Sequence[tuple], bool] | None = None


def available_executors() -> list[str]:
    """Executor names usable on this platform."""
    executors = ["serial", "thread"]
    if "fork" in multiprocessing.get_all_start_methods():
        executors.append("process")
    return executors


def _fork_entry(index: int) -> Any:
    """Run task ``index`` of the fork-inherited payload (worker side).

    When the parent was collecting, the worker runs its task under a
    fresh sub-collector (replacing the fork-inherited parent collector)
    and returns ``(result, profile_dict)`` for the parent to merge.
    """
    assert _FORK_PAYLOAD is not None, "fork payload missing in worker"
    fn, args_list, collect = _FORK_PAYLOAD
    if not collect:
        return fn(*args_list[index])
    with collecting(Collector()) as sub:
        result = fn(*args_list[index])
    return result, sub.profile().to_dict()


def run_tasks(fn: Callable[..., Any], args_list: Sequence[tuple],
              executor: str = "serial",
              workers: int | None = None) -> list[Any]:
    """Apply ``fn`` to each argument tuple, preserving input order.

    ``fn`` must be a module-level (picklable-by-reference) callable when
    the process executor is used.
    """
    col = _obs.ACTIVE

    if executor == "serial":
        return [fn(*args) for args in args_list]

    if workers is None:
        workers = min(len(args_list), os.cpu_count() or 1)
    workers = max(1, workers)

    if executor == "thread":
        if col is None:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lambda args: fn(*args), args_list))

        def run_detached(args: tuple) -> tuple[Any, Any]:
            with col.capture() as state:
                result = fn(*args)
            return result, state

        with ThreadPoolExecutor(max_workers=workers) as pool:
            packed = list(pool.map(run_detached, args_list))
        results = []
        for result, state in packed:
            col.absorb_state(state)
            results.append(result)
        return results

    if executor == "process":
        if "fork" not in multiprocessing.get_all_start_methods():
            raise AnalysisError(
                "the 'process' executor requires fork start method "
                "support; use 'serial' or 'thread' on this platform")
        if not args_list:
            return []
        global _FORK_PAYLOAD
        if _FORK_PAYLOAD is not None:
            raise AnalysisError(
                "nested process-executor runs are not supported")
        context = multiprocessing.get_context("fork")
        _FORK_PAYLOAD = (fn, args_list, col is not None)
        try:
            with context.Pool(processes=workers) as pool:
                packed = pool.map(_fork_entry, range(len(args_list)))
        finally:
            _FORK_PAYLOAD = None
        if col is None:
            return packed
        results = []
        for result, profile_dict in packed:
            col.absorb(Profile.from_dict(profile_dict))
            results.append(result)
        return results

    raise AnalysisError(
        f"unknown executor {executor!r}; expected one of "
        f"{available_executors()}")
