"""Executors for the engine's independent per-level tasks.

Algorithm 1 performs ``D + 2`` independent passes over the graph (one per
clock-tree level, plus self-loop and primary-input passes).  The paper
parallelizes them across threads; in CPython the passes are pure-Python
CPU work, so true speedup requires processes.  Three strategies:

* ``"serial"`` — run in the calling thread (default; lowest overhead).
* ``"thread"`` — a thread pool.  Structure-faithful to the paper but
  GIL-bound in CPython; provided for API completeness and for workloads
  dominated by allocator/IO time.
* ``"process"`` — a ``fork`` process pool.  The analyzer is shared with
  workers through fork-time memory inheritance (nothing is pickled going
  in; only the small result path lists are pickled coming back), mirroring
  the paper's shared-memory threading as closely as Python allows.

The Figure 6 thread-scaling experiment uses the process executor.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.exceptions import AnalysisError

__all__ = ["available_executors", "run_tasks"]

_FORK_PAYLOAD: tuple[Callable[..., Any], Sequence[tuple]] | None = None


def available_executors() -> list[str]:
    """Executor names usable on this platform."""
    executors = ["serial", "thread"]
    if "fork" in multiprocessing.get_all_start_methods():
        executors.append("process")
    return executors


def _fork_entry(index: int) -> Any:
    """Run task ``index`` of the fork-inherited payload (worker side)."""
    assert _FORK_PAYLOAD is not None, "fork payload missing in worker"
    fn, args_list = _FORK_PAYLOAD
    return fn(*args_list[index])


def run_tasks(fn: Callable[..., Any], args_list: Sequence[tuple],
              executor: str = "serial",
              workers: int | None = None) -> list[Any]:
    """Apply ``fn`` to each argument tuple, preserving input order.

    ``fn`` must be a module-level (picklable-by-reference) callable when
    the process executor is used.
    """
    if executor == "serial":
        return [fn(*args) for args in args_list]

    if workers is None:
        workers = min(len(args_list), os.cpu_count() or 1)
    workers = max(1, workers)

    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda args: fn(*args), args_list))

    if executor == "process":
        if "fork" not in multiprocessing.get_all_start_methods():
            raise AnalysisError(
                "the 'process' executor requires fork start method "
                "support; use 'serial' or 'thread' on this platform")
        if not args_list:
            return []
        global _FORK_PAYLOAD
        if _FORK_PAYLOAD is not None:
            raise AnalysisError(
                "nested process-executor runs are not supported")
        context = multiprocessing.get_context("fork")
        _FORK_PAYLOAD = (fn, args_list)
        try:
            with context.Pool(processes=workers) as pool:
                return pool.map(_fork_entry, range(len(args_list)))
        finally:
            _FORK_PAYLOAD = None

    raise AnalysisError(
        f"unknown executor {executor!r}; expected one of "
        f"{available_executors()}")
