"""Resilient executors for the engine's independent per-level tasks.

Algorithm 1 performs ``D + 2`` independent passes over the graph (one per
clock-tree level, plus self-loop and primary-input passes).  The paper
parallelizes them across threads; in CPython the passes are pure-Python
CPU work, so true speedup requires processes.  Three strategies:

* ``"serial"`` — run in the calling thread (default; lowest overhead).
* ``"thread"`` — a thread pool.  Structure-faithful to the paper but
  GIL-bound in CPython; provided for API completeness and for workloads
  dominated by allocator/IO time.
* ``"process"`` — a ``fork`` process pool.  The analyzer is shared with
  workers through fork-time memory inheritance (nothing is pickled going
  in; only the small result path lists are pickled coming back), mirroring
  the paper's shared-memory threading as closely as Python allows.

The Figure 6 thread-scaling experiment uses the process executor.

Fault tolerance: :func:`run_tasks` is a *scheduler*, not a thin pool
wrapper.  Each task gets an optional per-task ``task_timeout`` and up to
``max_retries`` re-runs with exponential backoff on its current rung;
worker crashes surface as a broken pool, and any rung-level failure
(timeout, broken pool, exhausted retries) moves the **failed/unfinished
tasks only** down the fallback ladder ``process -> thread -> serial``.
Because every task is a pure function of its arguments, re-running it on
a safer rung returns the identical result — the whole ladder is
bit-for-bit equivalent to a clean serial run.  The serial rung is the
floor: a task that still fails there re-raises its original exception
(with ``fallback=False`` an unfinished run raises
:class:`~repro.exceptions.ExecutionError` instead).  Fault events are
counted as ``faults.*`` / ``degrade.*`` on the active collector and
appended to the caller's ``events`` list.  Injected chaos (module
:mod:`repro.faults`) strikes inside :func:`_call_task` and at pool
creation, so the recovery paths are exercised deterministically in CI.

Observability: when a :mod:`repro.obs` collector is active, every task's
spans and counters are captured per task — in a detached thread state for
the serial/thread rungs, in a per-process sub-collector (shipped back
pickled as a profile dict) for the fork pool — and merged into the
caller's collector in **task order**, so counter totals and span sets
are identical across the three executors for the same workload.  Only a
task's *successful* attempt is merged; abandoned attempts leave no trace
beyond the ``faults.*`` counters.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import (Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from concurrent.futures import TimeoutError as _WaitTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Callable, Sequence

from repro import faults
from repro.exceptions import AnalysisError, DeadlineExpired, ExecutionError
from repro.obs import collector as _obs
from repro.obs import metrics as _metrics
from repro.obs.collector import Collector, collecting
from repro.obs.profile import Profile

__all__ = ["available_executors", "check_deadline", "deadline_scope",
           "remaining_deadline", "run_tasks"]

#: Fault/degradation events, labeled by event name and the rung they
#: struck on (``degrade.executor`` is labeled by its target rung).
_SCHED_EVENTS = _metrics.REGISTRY.counter(
    "scheduler.event", labels=("event", "rung"),
    help="Resilient-scheduler fault/degradation events by name and rung")

#: Fallback rungs tried for each requested executor, safest last.
FALLBACK_LADDER = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

#: Guards the fork payload: concurrent ``run_tasks`` calls from
#: different threads serialize here instead of clobbering each other's
#: payload (or spuriously reporting nesting).
_FORK_LOCK = threading.Lock()
_FORK_PAYLOAD: tuple[Callable[..., Any], Sequence[tuple], bool] | None = None

#: ``True`` only in forked worker processes (set by :func:`_fork_entry`,
#: inherited ``False`` everywhere else).  This is what makes the nesting
#: check genuinely about nesting: only a *worker* that tries to start
#: another fork pool is rejected.
_IN_FORK_WORKER = False


def available_executors() -> list[str]:
    """Executor names usable on this platform."""
    executors = ["serial", "thread"]
    if "fork" in multiprocessing.get_all_start_methods():
        executors.append("process")
    return executors


#: Per-thread cooperative deadline (absolute ``time.monotonic``
#: seconds).  Thread-local so concurrent server requests sharing one
#: process each carry their own budget.
_DEADLINE = threading.local()


@contextmanager
def deadline_scope(expires_at: float | None):
    """Arm a cooperative deadline for this thread's ``with`` body.

    ``expires_at`` is an absolute ``time.monotonic()`` timestamp
    (``None`` arms nothing).  Scopes nest with tightest-wins semantics;
    deadline-aware loops — :func:`run_tasks`'s serial rung and wave
    collection, the session's family replay — poll
    :func:`check_deadline` and abandon the run with
    :class:`~repro.exceptions.DeadlineExpired` once the budget is
    spent.  Partial work is discarded, never returned.
    """
    previous = getattr(_DEADLINE, "expires_at", None)
    if expires_at is None:
        effective = previous
    elif previous is None:
        effective = expires_at
    else:
        effective = min(previous, expires_at)
    _DEADLINE.expires_at = effective
    try:
        yield
    finally:
        _DEADLINE.expires_at = previous


def remaining_deadline() -> float | None:
    """Seconds left in this thread's deadline scope (``None`` = no cap)."""
    expires_at = getattr(_DEADLINE, "expires_at", None)
    if expires_at is None:
        return None
    return expires_at - time.monotonic()


def check_deadline() -> None:
    """Raise :class:`DeadlineExpired` when the ambient budget is spent."""
    remaining = remaining_deadline()
    if remaining is not None and remaining <= 0.0:
        raise DeadlineExpired(
            f"cooperative deadline expired {-remaining:.3f}s ago")


def _call_task(fn: Callable[..., Any], args: tuple) -> Any:
    """Run one task through the fault-injection gauntlet."""
    if faults.armed():
        faults.check("task.exception")
        faults.check("memory.pressure")
        faults.check("task.timeout")
        faults.check("task.crash")
    return fn(*args)


def _fork_entry(index: int) -> tuple[Any, dict | None]:
    """Run task ``index`` of the fork-inherited payload (worker side).

    When the parent was collecting, the worker runs its task under a
    fresh sub-collector (replacing the fork-inherited parent collector)
    and ships the profile back as a dict for the parent to merge.
    """
    global _IN_FORK_WORKER
    _IN_FORK_WORKER = True
    faults.mark_worker_process()
    assert _FORK_PAYLOAD is not None, "fork payload missing in worker"
    fn, args_list, collect = _FORK_PAYLOAD
    if not collect:
        return _call_task(fn, args_list[index]), None
    with collecting(Collector()) as sub:
        result = _call_task(fn, args_list[index])
    return result, sub.profile().to_dict()


def _thread_entry(fn: Callable[..., Any], args: tuple,
                  col: Collector | None) -> tuple[Any, Any]:
    if col is None:
        return _call_task(fn, args), None
    with col.capture() as state:
        result = _call_task(fn, args)
    return result, state


def _record(events: list | None, col: Collector | None, name: str,
            **fields: Any) -> None:
    """Count one fault/degradation event and log it for the caller.

    Collected runs get two extras: a labeled ``scheduler.event`` metric
    sample and the collector's trace id stamped on the event dict (so
    exported traces and degradation records correlate).  Uncollected
    runs record the bare event dict, exactly as before.
    """
    if col is not None:
        col.add(name)
        _SCHED_EVENTS.labels(
            event=name,
            rung=str(fields.get("rung") or fields.get("target") or "-"),
        ).inc()
        if events is not None:
            events.append({"event": name, "trace": col.trace_id, **fields})
        return
    if events is not None:
        events.append({"event": name, **fields})


def _run_serial(fn, args_list, pending, results, payloads, done, col,
                max_retries, retry_backoff, events) -> None:
    """The ladder floor: inline execution with bounded retries.

    A task that exhausts its retries re-raises its original exception —
    there is no safer rung left to absorb it.
    """
    for i in pending:
        check_deadline()
        attempt = 0
        while True:
            try:
                if col is None:
                    results[i] = _call_task(fn, args_list[i])
                else:
                    with col.capture() as state:
                        results[i] = _call_task(fn, args_list[i])
                    payloads[i] = state
                done[i] = True
                break
            except Exception as exc:
                _record(events, col, "faults.task_error", task=i,
                        rung="serial", error=repr(exc))
                if attempt >= max_retries:
                    raise
                _record(events, col, "faults.retry", task=i,
                        rung="serial", attempt=attempt + 1)
                time.sleep(retry_backoff * (2 ** attempt))
                attempt += 1


def _collect_wave(rung, futures, order, results, payloads, done,
                  task_timeout, events, col
                  ) -> tuple[list[int], bool, BaseException | None]:
    """Wait on one wave of futures in task order.

    Returns ``(failed_task_indices, pool_broken, last_error)``.  Timed
    out and broken-pool tasks are left undone for the next rung; only
    tasks that raised an ordinary exception are candidates for retry on
    this rung.
    """
    failed: list[int] = []
    broken = False
    last_exc: BaseException | None = None
    for i in order:
        fut = futures[i]
        if broken:
            # The pool died; keep anything that already finished.
            if fut.done() and not fut.cancelled():
                exc = fut.exception()
                if exc is None:
                    results[i], payloads[i] = fut.result()
                    done[i] = True
            continue
        check_deadline()
        wait_timeout = task_timeout
        remaining = remaining_deadline()
        if remaining is not None:
            wait_timeout = (remaining if wait_timeout is None
                            else min(wait_timeout, remaining))
        try:
            value, payload = fut.result(timeout=wait_timeout)
        except _WaitTimeout:
            # A wait clamped by the ambient deadline is a deadline
            # expiry, not a hung task — abandon the run instead of
            # walking the ladder with no budget left.
            check_deadline()
            _record(events, col, "faults.task_timeout", task=i, rung=rung,
                    timeout=task_timeout)
            fut.cancel()
            continue
        except BrokenProcessPool as exc:
            _record(events, col, "faults.pool_broken", rung=rung,
                    error=repr(exc))
            broken = True
            last_exc = exc
            continue
        except Exception as exc:
            _record(events, col, "faults.task_error", task=i, rung=rung,
                    error=repr(exc))
            failed.append(i)
            last_exc = exc
            continue
        results[i] = value
        payloads[i] = payload
        done[i] = True
    return failed, broken, last_exc


def _run_pool_rung(rung, fn, args_list, pending, results, payloads, done,
                   col, workers, task_timeout, max_retries, retry_backoff,
                   events, process_pool="fork") -> BaseException | None:
    """Run ``pending`` tasks on a thread or fork-process pool.

    Marks completed tasks done; leaves failed/timed-out/orphaned tasks
    undone for the next rung.  Never raises on task or pool failure —
    the returned exception (if any) is the last failure observed, kept
    for error chaining if the ladder runs out.

    ``process_pool`` selects the process-rung strategy: ``"fork"`` (the
    legacy per-call pool fed through the fork-inherited payload) or
    ``"shared"`` (the persistent :mod:`repro.cppr.shard` pool fed
    per-task argument tuples — used with descriptor tasks, whose
    arguments are tiny by construction).  A broken shared pool is
    retired through :func:`repro.cppr.shard.handle_broken_pool`, which
    also sweeps the ephemeral batch segments.
    """
    if workers is None:
        workers = min(len(pending), os.cpu_count() or 1)
    workers = max(1, workers)
    shared = rung == "process" and process_pool == "shared"
    if shared:
        from repro.cppr import shard
    else:
        shard = None

    if rung == "process":
        try:
            faults.check("pool.broken")
        except BrokenProcessPool as exc:
            _record(events, col, "faults.pool_broken", rung=rung,
                    error=repr(exc))
            if shared:
                shard.handle_broken_pool()
            return exc
        if _IN_FORK_WORKER:
            raise AnalysisError(
                "nested process-executor runs are not supported: a fork "
                "worker cannot start another fork pool")
        context = multiprocessing.get_context("fork")
        lock = None if shared else _FORK_LOCK
    else:
        context = None
        lock = None

    global _FORK_PAYLOAD
    pool = None
    owns_pool = not shared
    last_exc: BaseException | None = None
    if lock is not None:
        lock.acquire()
    try:
        if shared:
            try:
                pool = shard.ensure_pool(workers)
            except Exception as exc:
                _record(events, col, "faults.pool_broken", rung=rung,
                        error=repr(exc))
                shard.handle_broken_pool()
                return exc
            plan_state = faults.export_plan_state()

            def submit(i: int) -> Future:
                return pool.submit(shard.worker_entry, fn, args_list[i],
                                   col is not None, plan_state)
        elif rung == "process":
            _FORK_PAYLOAD = (fn, args_list, col is not None)
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=context)

            def submit(i: int) -> Future:
                return pool.submit(_fork_entry, i)
        else:
            pool = ThreadPoolExecutor(max_workers=workers)

            def submit(i: int) -> Future:
                return pool.submit(_thread_entry, fn, args_list[i], col)

        to_run = list(pending)
        attempt = 0
        while to_run:
            try:
                futures = {i: submit(i) for i in to_run}
            except BrokenProcessPool as exc:
                _record(events, col, "faults.pool_broken", rung=rung,
                        error=repr(exc))
                if shared:
                    shard.handle_broken_pool()
                return exc
            failed, broken, exc = _collect_wave(
                rung, futures, to_run, results, payloads, done,
                task_timeout, events, col)
            last_exc = exc or last_exc
            if broken:
                if shared:
                    shard.handle_broken_pool()
                break
            if not failed:
                break
            if attempt >= max_retries:
                break
            for i in failed:
                _record(events, col, "faults.retry", task=i, rung=rung,
                        attempt=attempt + 1)
            time.sleep(retry_backoff * (2 ** attempt))
            attempt += 1
            to_run = failed
    finally:
        if rung == "process" and not shared:
            _FORK_PAYLOAD = None
        if lock is not None:
            lock.release()
        if pool is not None and owns_pool:
            pool.shutdown(wait=False, cancel_futures=True)
    return last_exc


def run_tasks(fn: Callable[..., Any], args_list: Sequence[tuple],
              executor: str = "serial",
              workers: int | None = None, *,
              task_timeout: float | None = None,
              max_retries: int = 0,
              retry_backoff: float = 0.05,
              fallback: bool = True,
              events: list | None = None,
              process_pool: str = "fork") -> list[Any]:
    """Apply ``fn`` to each argument tuple, preserving input order.

    ``fn`` must be a module-level (picklable-by-reference) callable when
    the process executor is used, and must be a *pure* function of its
    arguments: the scheduler re-runs tasks after faults, so repeated
    execution must be harmless and deterministic.

    Resilience knobs (all optional; defaults reproduce the plain
    pool-mapping behaviour):

    ``task_timeout``
        Seconds to wait for each pooled task's result before declaring
        it hung and re-running it on the next rung.  ``None`` waits
        forever.  Not enforceable on the serial rung, which runs tasks
        inline.
    ``max_retries`` / ``retry_backoff``
        Bounded same-rung re-runs of tasks that raised, sleeping
        ``retry_backoff * 2**attempt`` between waves.
    ``fallback``
        Walk the ``process -> thread -> serial`` ladder for tasks a
        rung could not finish.  With ``False``, an unfinished run
        raises :class:`~repro.exceptions.ExecutionError` (strict mode).
    ``events``
        A caller-owned list; every fault/degradation event is appended
        as a dict (``{"event": "faults.task_timeout", "task": 3, ...}``).
    ``process_pool``
        Process-rung strategy: ``"fork"`` (legacy per-call pool with
        the fork-inherited payload) or ``"shared"`` (the persistent
        :mod:`repro.cppr.shard` pool; task arguments are pickled per
        task, so use it only with small descriptor arguments).
    """
    if executor not in FALLBACK_LADDER:
        raise AnalysisError(
            f"unknown executor {executor!r}; expected one of "
            f"{available_executors()}")
    if (executor == "process"
            and "fork" not in multiprocessing.get_all_start_methods()):
        raise AnalysisError(
            "the 'process' executor requires fork start method "
            "support; use 'serial' or 'thread' on this platform")
    n = len(args_list)
    if n == 0:
        return []
    col = _obs.ACTIVE

    remaining = remaining_deadline()
    if remaining is not None:
        check_deadline()
        # The per-task wait may never outlive the request's budget.
        task_timeout = (remaining if task_timeout is None
                        else min(task_timeout, remaining))

    # Fast path: a clean serial run with no collector is the common
    # production configuration; keep it a bare loop.
    if (executor == "serial" and col is None and max_retries == 0
            and remaining is None and not faults.armed()):
        return [fn(*args) for args in args_list]

    results: list[Any] = [None] * n
    payloads: list[Any] = [None] * n
    done = [False] * n

    rungs = FALLBACK_LADDER[executor] if fallback else (executor,)
    last_exc: BaseException | None = None
    previous = executor
    for rung in rungs:
        pending = [i for i in range(n) if not done[i]]
        if not pending:
            break
        if rung != previous:
            _record(events, col, "degrade.executor",
                    source=previous, target=rung, tasks=len(pending))
            previous = rung
        if rung == "serial":
            _run_serial(fn, args_list, pending, results, payloads, done,
                        col, max_retries, retry_backoff, events)
        else:
            exc = _run_pool_rung(rung, fn, args_list, pending, results,
                                 payloads, done, col, workers,
                                 task_timeout, max_retries, retry_backoff,
                                 events, process_pool)
            last_exc = exc or last_exc

    remaining = [i for i in range(n) if not done[i]]
    if remaining:
        raise ExecutionError(
            f"{len(remaining)} of {n} tasks failed on the "
            f"{'/'.join(rungs)} executor"
            + ("" if fallback else " (fallback disabled)")
        ) from last_exc

    if col is not None:
        for payload in payloads:
            if payload is None:
                continue
            if isinstance(payload, dict):
                col.absorb(Profile.from_dict(payload))
            else:
                col.absorb_state(payload)
    return results
