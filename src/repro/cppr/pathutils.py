"""Path construction and cone utilities shared across the library.

Used by the targeted queries (:mod:`repro.cppr.queries`), the baseline
timers, and the exhaustive oracle: fan-in cone extraction and the
classification of an explicit pin trace into a fully attributed
:class:`~repro.cppr.types.TimingPath`."""

from __future__ import annotations

from collections import deque

from repro.circuit.graph import TimingGraph
from repro.cppr.types import PathFamily, TimingPath
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["build_timing_path", "fanin_cone", "launchers_in_cone",
           "primary_inputs_in_cone"]


def fanin_cone(graph: TimingGraph, pin: int) -> set[int]:
    """All pins from which ``pin`` is reachable over data edges
    (including ``pin`` itself)."""
    cone = {pin}
    queue = deque([pin])
    while queue:
        current = queue.popleft()
        for predecessor, _early, _late in graph.fanin[current]:
            if predecessor not in cone:
                cone.add(predecessor)
                queue.append(predecessor)
    return cone


def launchers_in_cone(graph: TimingGraph, cone: set[int]) -> list[int]:
    """Flip-flop indices whose Q pin lies inside ``cone``."""
    return [ff.index for ff in graph.ffs if ff.q_pin in cone]


def primary_inputs_in_cone(graph: TimingGraph, cone: set[int]) -> list[int]:
    """Indices into ``graph.primary_inputs`` whose pin lies in ``cone``."""
    return [i for i, pi in enumerate(graph.primary_inputs)
            if pi.pin in cone]


def build_timing_path(analyzer: TimingAnalyzer, pins: tuple[int, ...],
                      mode: AnalysisMode,
                      post_cppr_slack: float | None = None) -> TimingPath:
    """Construct a fully classified :class:`TimingPath` from a pin trace.

    The family, level, and credit are derived from the path's structure;
    the post-CPPR slack is recomputed from Equation (2) unless supplied.
    """
    graph = analyzer.graph
    tree = graph.clock_tree
    launch_ff = graph.ff_of_q_pin.get(pins[0])
    capture_ff = graph.ff_of_d_pin.get(pins[-1])

    credit = 0.0
    level = None
    if capture_ff is None:
        family = PathFamily.OUTPUT
    elif launch_ff is None:
        family = PathFamily.PRIMARY_INPUT
    elif launch_ff == capture_ff:
        family = PathFamily.SELF_LOOP
        credit = tree.credit(graph.ffs[launch_ff].tree_node)
    else:
        family = PathFamily.LEVEL
        launch_node = graph.ffs[launch_ff].tree_node
        capture_node = graph.ffs[capture_ff].tree_node
        level = tree.lca_depth(launch_node, capture_node)
        credit = tree.pair_credit(launch_node, capture_node)

    if post_cppr_slack is None:
        post_cppr_slack = analyzer.path_post_cppr_slack(list(pins), mode)

    return TimingPath(mode=mode, family=family, slack=post_cppr_slack,
                      credit=credit, pins=pins, launch_ff=launch_ff,
                      capture_ff=capture_ff, level=level)
