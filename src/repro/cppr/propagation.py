"""Forward arrival propagation for the CPPR candidate passes.

Two variants, matching the paper:

* :func:`propagate_dual` — the grouped propagation of Algorithm 2
  lines 8-13.  Every pin keeps the dual tuples of Table II (``at`` and the
  different-group fallback ``at'``); each processed pin offers both of its
  tuples across every outgoing edge.
* :func:`propagate_single` — the ungrouped propagation of Algorithms 3
  and 4 (self-loop and primary-input candidates), which needs no group
  bookkeeping and only one tuple per pin.

Both come in two interchangeable **backends** selected by the
``backend`` argument:

* ``"scalar"`` — the readable pure-Python reference below: one
  ``offer`` per (edge, tuple), pins walked in topological order.
* ``"array"`` — :mod:`repro.core.propagate`: the same computation as
  level-wise numpy scatter relaxation over the CSR substrate of
  :mod:`repro.core.arrays`, which also precomputes the deviation-cost
  columns the top-k search consumes.

A third producer exists for the dual arrays only:
:func:`repro.core.batched.propagate_dual_batched` runs **all** ``D``
per-level grouped passes as one sweep over ``(D, n)`` state matrices
and serves each level back as a :class:`DualArrivalArrays` slice
(``CpprOptions.batch_levels``).  It is not a separate semantics —
row ``d`` of the batched state is bit-for-bit the level-``d`` array
pass — which is why consumers never need to know which of the three
producers built their arrays.

All producers agree **exactly** (same times, same ``from`` pointers,
same groups) because all implement the shared tie-breaking contract:
among candidates with equal arrival time, the smaller ``from``-pin id
wins, then the smaller group id.  The scalar implementation spells the
rule out per offer; the array implementations get it from the
pre-sorted level buckets.  :class:`repro.cppr.tuples.DualArrival` is
the readable per-pin reference all are tested against.

Both store tuples in parallel arrays rather than per-pin objects: the
per-level passes dominate the engine's runtime, and flat lists of floats
and ints keep the inner loop tight.

Both array types expose the same ``auto(pin, excluded_group)`` query (the
paper's ``at_auto``), so the deviation search in
:mod:`repro.cppr.deviation` is written once for all path families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.circuit.graph import TimingGraph
from repro.cppr.tuples import NO_GROUP, NO_NODE
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode

__all__ = ["DualArrivalArrays", "SingleArrivalArrays", "Seed",
           "propagate_dual", "propagate_single"]


@dataclass(frozen=True, slots=True)
class Seed:
    """An initial arrival: a launch Q pin or a primary input.

    ``time`` already includes the clock arrival, clock-to-Q delay, and —
    for grouped/self-loop passes — the credit offset required by the
    family's ranking metric (Definitions 3-5).
    """

    pin: int
    time: float
    from_pin: int = NO_NODE
    group: int = NO_GROUP


@dataclass(slots=True)
class DualArrivalArrays:
    """Array-of-fields storage for the dual tuples of Table II.

    Three producers build these: the scalar loop below, the array
    backend's level-wise pass, and the batched sweep's per-level
    slices (:meth:`repro.core.batched.BatchedLevels.arrays`) — all
    bit-for-bit identical.  ``fast`` optionally carries the
    precomputed deviation-cost columns
    (:class:`repro.core.propagate.FastDeviation`) when an array-based
    producer built this instance; the scalar backend leaves it
    ``None``.
    """

    mode: AnalysisMode
    time0: list[float]
    from0: list[int]
    group0: list[int]
    time1: list[float]
    from1: list[int]
    group1: list[int]
    fast: object | None = None

    def auto(self, pin: int,
             excluded_group: int) -> tuple[float, int, int] | None:
        """``at_auto(pin, gid)``: best arrival whose group != ``gid``."""
        empty = self.mode.empty_time
        if self.time0[pin] == empty:
            return None
        if self.group0[pin] != excluded_group:
            return (self.time0[pin], self.from0[pin], self.group0[pin])
        if self.time1[pin] == empty:
            return None
        return (self.time1[pin], self.from1[pin], self.group1[pin])

    def best(self, pin: int) -> tuple[float, int, int] | None:
        """The unconditional best tuple at ``pin`` (``at(pin)``)."""
        if self.time0[pin] == self.mode.empty_time:
            return None
        return (self.time0[pin], self.from0[pin], self.group0[pin])


@dataclass(slots=True)
class SingleArrivalArrays:
    """Single-tuple storage for the ungrouped passes.

    ``fast`` is the array backend's precomputed deviation-cost column,
    or ``None`` from the scalar backend.
    """

    mode: AnalysisMode
    time: list[float]
    from_pin: list[int]
    fast: object | None = None

    def auto(self, pin: int,
             excluded_group: int) -> tuple[float, int, int] | None:
        """Same interface as the dual arrays; the group is ignored."""
        if self.time[pin] == self.mode.empty_time:
            return None
        return (self.time[pin], self.from_pin[pin], NO_GROUP)

    def best(self, pin: int) -> tuple[float, int, int] | None:
        return self.auto(pin, NO_GROUP)


def propagate_dual(graph: TimingGraph, mode: AnalysisMode,
                   seeds: Iterable[Seed],
                   backend: str = "scalar") -> DualArrivalArrays:
    """Grouped forward pass (Algorithm 2 lines 1-13).

    Runs in ``O(n)`` per call: each data edge is relaxed with at most two
    candidate tuples.  The update rule is the one proven correct in
    :class:`repro.cppr.tuples.DualArrival`.  ``backend`` selects the
    scalar reference loop or the numpy level-wise implementation; both
    produce identical arrays (see module docstring).
    """
    if backend == "array":
        from repro.core.propagate import propagate_dual_array
        return propagate_dual_array(graph, mode, seeds)

    n = graph.num_pins
    empty = mode.empty_time
    is_setup = mode.is_setup
    time0 = [empty] * n
    from0 = [NO_NODE] * n
    group0 = [NO_GROUP] * n
    time1 = [empty] * n
    from1 = [NO_NODE] * n
    group1 = [NO_GROUP] * n

    def offer(v: int, t: float, frm: int, gid: int) -> None:
        t0 = time0[v]
        if t0 == empty:
            time0[v] = t
            from0[v] = frm
            group0[v] = gid
            return
        if gid == group0[v]:
            if (t > t0) if is_setup else (t < t0):
                time0[v] = t
                from0[v] = frm
            elif t == t0 and frm < from0[v]:
                from0[v] = frm
            return
        if (((t > t0) if is_setup else (t < t0))
                or (t == t0 and (frm < from0[v]
                                 or (frm == from0[v]
                                     and gid < group0[v])))):
            time1[v] = t0
            from1[v] = from0[v]
            group1[v] = group0[v]
            time0[v] = t
            from0[v] = frm
            group0[v] = gid
        else:
            t1 = time1[v]
            if (t1 == empty or ((t > t1) if is_setup else (t < t1))
                    or (t == t1 and (frm < from1[v]
                                     or (frm == from1[v]
                                         and gid < group1[v])))):
                time1[v] = t
                from1[v] = frm
                group1[v] = gid

    col = _obs.ACTIVE
    counting = col is not None
    pins_visited = 0
    num_seeds = 0

    for seed in seeds:
        num_seeds += 1
        offer(seed.pin, seed.time, seed.from_pin, seed.group)

    fanout = graph.fanout
    for u in graph.topo_order:
        t0 = time0[u]
        if t0 == empty:
            continue
        if counting:
            pins_visited += 1
        g0 = group0[u]
        t1 = time1[u]
        g1 = group1[u]
        has_fallback = t1 != empty
        for v, delay_early, delay_late in fanout[u]:
            delay = delay_late if is_setup else delay_early
            offer(v, t0 + delay, u, g0)
            if has_fallback:
                offer(v, t1 + delay, u, g1)

    if counting:
        col.add("propagation.seeds", num_seeds)
        col.add("propagation.pins_visited", pins_visited)

    return DualArrivalArrays(mode, time0, from0, group0,
                             time1, from1, group1)


def propagate_single(graph: TimingGraph, mode: AnalysisMode,
                     seeds: Iterable[Seed],
                     backend: str = "scalar") -> SingleArrivalArrays:
    """Ungrouped forward pass (Algorithm 3 lines 1-12 / Algorithm 4)."""
    if backend == "array":
        from repro.core.propagate import propagate_single_array
        return propagate_single_array(graph, mode, seeds)

    n = graph.num_pins
    empty = mode.empty_time
    is_setup = mode.is_setup
    time = [empty] * n
    from_pin = [NO_NODE] * n

    col = _obs.ACTIVE
    counting = col is not None
    pins_visited = 0
    num_seeds = 0

    for seed in seeds:
        num_seeds += 1
        t0 = time[seed.pin]
        if (t0 == empty or ((seed.time > t0) if is_setup
                            else (seed.time < t0))
                or (seed.time == t0
                    and seed.from_pin < from_pin[seed.pin])):
            time[seed.pin] = seed.time
            from_pin[seed.pin] = seed.from_pin

    fanout = graph.fanout
    for u in graph.topo_order:
        t0 = time[u]
        if t0 == empty:
            continue
        if counting:
            pins_visited += 1
        for v, delay_early, delay_late in fanout[u]:
            t = t0 + (delay_late if is_setup else delay_early)
            tv = time[v]
            if (tv == empty or ((t > tv) if is_setup else (t < tv))
                    or (t == tv and u < from_pin[v])):
                time[v] = t
                from_pin[v] = u

    if counting:
        col.add("propagation.seeds", num_seeds)
        col.add("propagation.pins_visited", pins_visited)

    return SingleArrivalArrays(mode, time, from_pin)
