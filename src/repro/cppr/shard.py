"""Descriptor-only process sharding over the shared-memory plane.

The legacy process executor ships each task's full argument tuple —
analyzer included — to workers through fork-time inheritance of a
module-global payload, which forces a **fresh pool per query** (the
payload is only valid for the fork's lifetime) and re-pays the fork cost
every time.  This module is the zero-copy alternative:

* the parent *publishes* the design once — a token for the analyzer
  (resolved in workers through fork inheritance) plus the
  :class:`~repro.core.arrays.CoreValues` columns as a shared-memory
  segment (:meth:`~repro.core.arrays.CoreArrays.share_values`);
* per query, each task is reduced to a tiny picklable
  :class:`FamilyDescriptor` — design token, values
  :class:`~repro.core.shm.BufferLayout` + expected version, optional
  batched-propagation segment, and the ``(task, k, mode, ...)`` scalars;
* workers attach the segments **lazily and cache the mapping**, so the
  per-task wire cost is a few hundred bytes regardless of design size,
  and the pool itself is *persistent* — created once and reused across
  queries (recycled only when the worker count changes, a new design is
  published, or the pool breaks).

Because a persistent pool's workers were forked long before the current
``faults.inject()`` window, every submitted task also carries the armed
plan's exported state (:func:`repro.faults.export_plan_state`), which
workers install idempotently per arming generation — chaos schedules
keep striking inside pooled workers exactly like they strike forked
ones.

Resolution failures (:class:`~repro.exceptions.ShmAttachError` /
:class:`~repro.exceptions.ShmStaleError`) are ordinary task failures:
the resilient scheduler retries and then walks the
``process -> thread -> serial`` ladder, whose lower rungs resolve the
same descriptors from the parent's live objects — reports stay
bit-for-bit identical.

Observability contract: descriptor resolution emits **no spans** and
exactly one ``scheduler.event{event=shm_attach}`` sample per task on
every executor (serial and thread resolve descriptors too), keeping
``Profile.counters`` and span sets executor-independent.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro import faults
from repro.core import shm
from repro.exceptions import ShmAttachError
from repro.obs import metrics as _metrics
from repro.obs.collector import Collector, collecting

__all__ = ["FamilyDescriptor", "ShardContext", "ensure_pool",
           "handle_broken_pool", "open_query", "run_family_descriptor",
           "shutdown_pool", "worker_entry"]

#: Re-declares the scheduler's labeled event metric (registration is
#: idempotent) so resolution can stamp its per-task attach sample.
_SCHED_EVENTS = _metrics.REGISTRY.counter(
    "scheduler.event", labels=("event", "rung"),
    help="Resilient-scheduler fault/degradation events by name and rung")

# ----------------------------------------------------------------------
# Design registry (parent publishes; workers resolve via fork-inherited
# module state)
# ----------------------------------------------------------------------

#: token -> weakref to the published analyzer.  Weak on purpose: the
#: registry must not keep dead analyzers (and their graphs) alive.
_DESIGNS: dict[str, Any] = {}

#: Bumped on every :func:`publish_design`; the pool snapshots it at fork
#: so :func:`ensure_pool` knows when workers are missing a design.
_DESIGN_SEQ = 0

_DESIGN_LOCK = threading.Lock()

# ----------------------------------------------------------------------
# Per-query batch registry
# ----------------------------------------------------------------------

#: Parent-side: batch key -> live BatchedLevels (serial/thread rungs and
#: the owner process resolve here, no shared memory involved).
_QUERY_BATCHES: dict[str, Any] = {}

#: Worker-side: batch key -> (BatchedLevels, segment name) rebuilt from
#: an attached segment.  Bounded: a multi-corner query publishes one
#: batch key per corner and workers interleave corners, so the cache
#: keeps the most recent :data:`_WORKER_BATCH_CAP` attachments and
#: releases older ones (previous queries' keys age out naturally).
_WORKER_BATCHES: dict[str, tuple[Any, str]] = {}

#: Enough for every corner of a reasonably sized CornerSet to stay
#: attached for the whole query.
_WORKER_BATCH_CAP = 16

_BATCH_SEQ = 0


def publish_design(analyzer) -> str:
    """Register ``analyzer`` for descriptor resolution; returns a token.

    Idempotent per analyzer (the token is cached on the instance).  The
    analyzer itself never crosses the pipe — workers resolve the token
    against the fork-inherited :data:`_DESIGNS` mirror, and
    :func:`ensure_pool` recycles the pool when it was forked before
    this registration.
    """
    global _DESIGN_SEQ
    token = getattr(analyzer, "_shard_token", None)
    if token is not None and token in _DESIGNS:
        return token
    with _DESIGN_LOCK:
        _DESIGN_SEQ += 1
        token = f"design-{_DESIGN_SEQ}"
        _DESIGNS[token] = weakref.ref(
            analyzer, lambda _ref, _token=token: _DESIGNS.pop(_token, None))
    analyzer._shard_token = token
    return token


@dataclass(frozen=True, slots=True)
class FamilyDescriptor:
    """Everything one candidate-family task needs, in a few hundred bytes.

    This is the only thing pickled into pool workers per task.  The
    heavyweight state is reached indirectly: ``design`` through the
    fork-inherited registry, ``values_layout`` / ``batch_layout``
    through shared-memory attach (validated against
    ``values_version``).
    """

    design: str
    values_layout: shm.BufferLayout
    values_version: int
    batch_key: str | None
    batch_layout: shm.BufferLayout | None
    task: tuple
    k: int
    mode: Any
    heap_capacity: int | None
    backend: str
    strict: bool
    #: Corner label for observability; ``"-"`` when the engine has no
    #: corners configured.  Multi-corner queries publish one values
    #: segment and one batch key per corner, so the label also tells a
    #: human which plane a descriptor belongs to.
    corner: str = "-"


class ShardContext:
    """One query's published plane: descriptors out, cleanup on close."""

    __slots__ = ("token", "values_layout", "values_version", "batch",
                 "batch_key", "batch_layout")

    def __init__(self, token: str, values_layout, values_version: int,
                 batch, batch_key: str | None, batch_layout) -> None:
        self.token = token
        self.values_layout = values_layout
        self.values_version = values_version
        self.batch = batch
        self.batch_key = batch_key
        self.batch_layout = batch_layout

    def descriptor(self, task: tuple, k: int, mode, heap_capacity,
                   backend: str, strict: bool,
                   corner: str = "-") -> FamilyDescriptor:
        use_batch = self.batch_key is not None and task[0] == "level"
        return FamilyDescriptor(
            design=self.token,
            values_layout=self.values_layout,
            values_version=self.values_version,
            batch_key=self.batch_key if use_batch else None,
            batch_layout=self.batch_layout if use_batch else None,
            task=task, k=k, mode=mode, heap_capacity=heap_capacity,
            backend=backend, strict=strict, corner=corner)

    def close(self) -> None:
        """Retire the query's ephemeral batch segment (idempotent)."""
        if self.batch_key is not None:
            _QUERY_BATCHES.pop(self.batch_key, None)
        if self.batch_layout is not None:
            shm.REGISTRY.release(self.batch_layout.segment)


def open_query(analyzer, batch, mode, *,
               publish_batch: bool) -> ShardContext:
    """Publish one query's plane and return its :class:`ShardContext`.

    ``batch`` is the parent's :class:`~repro.core.batched.BatchedLevels`
    (or ``None``).  The values segment is published once per analyzer
    (idempotent, survives across queries — in-place ECO updates just
    bump its version slot); the batch matrices are per-query ephemerals
    and are only copied into a segment when ``publish_batch`` is set
    (the process executor — thread/serial rungs read the live object).
    """
    global _BATCH_SEQ
    token = publish_design(analyzer)
    core = getattr(analyzer.graph, "_core_arrays", None)
    if core is None:
        raise ShmAttachError(
            "cannot open a shard query before the core arrays are built")
    values_layout = core.share_values()
    batch_key = None
    batch_layout = None
    if batch is not None:
        _BATCH_SEQ += 1
        batch_key = f"batch-{_BATCH_SEQ}"
        _QUERY_BATCHES[batch_key] = batch
        if publish_batch:
            batch_layout, _views = shm.REGISTRY.publish(
                "batch",
                {"time0": batch.time0, "from0": batch.from0,
                 "group0": batch.group0, "time1": batch.time1,
                 "from1": batch.from1, "group1": batch.group1,
                 "cost0": batch.cost0},
                meta={"num_levels": batch.num_levels,
                      "mode": batch.mode.value,
                      "seed_counts": tuple(batch.seed_counts)})
    return ShardContext(token, values_layout, core.values.version,
                        batch, batch_key, batch_layout)


# ----------------------------------------------------------------------
# Worker-side resolution
# ----------------------------------------------------------------------

def _resolve_design(token: str):
    ref = _DESIGNS.get(token)
    analyzer = ref() if ref is not None else None
    if analyzer is None:
        # This worker was forked before the design was published (the
        # parent recycles the pool on publish, but a race or a manual
        # pool is possible) — fail the task; the ladder's lower rungs
        # resolve from the parent's live registry.
        raise ShmAttachError(
            f"design {token!r} is not available in this process")
    return analyzer


def _resolve_values(analyzer, desc: FamilyDescriptor):
    """The analyzer's core at the descriptor's values version.

    Every path revalidates the segment version (and, off the owner
    process, runs the ``shm.attach`` / ``shm.stale`` chaos gates) via
    :meth:`~repro.core.shm.SegmentRegistry.views`.  When this process's
    cached core is already bound to the right segment at the right
    version — always true in the owner process, and true in workers
    until an ECO bumps the slot — the core is reused as-is; otherwise
    the value columns are rebound to the validated views and *fresh*
    list mirrors are built, so a stale fork-inherited mirror can never
    be served.
    """
    from repro.core.arrays import CoreArrays, CoreValues

    graph = analyzer.graph
    core = getattr(graph, "_core_arrays", None)
    if core is None:
        raise ShmAttachError(
            f"design {desc.design!r} has no core arrays in this process")
    layout = desc.values_layout
    views = shm.REGISTRY.views(layout,
                               expected_version=desc.values_version)
    vals = core.values
    if (vals.shm_layout is not None
            and vals.shm_layout.segment == layout.segment
            and vals.version == desc.values_version):
        return core
    fresh = CoreValues(views["edge_early"], views["edge_late"],
                       views["fanin_early"], views["fanin_late"])
    fresh._version = desc.values_version
    fresh.shm_layout = layout
    refreshed = CoreArrays(graph, structure=core.structure, values=fresh)
    graph._core_arrays = refreshed
    return refreshed


def _resolve_batch(analyzer, core, desc: FamilyDescriptor):
    """The query's :class:`BatchedLevels` in this process.

    Owner process (and fork-lucky workers): the live object from
    :data:`_QUERY_BATCHES`.  Pool workers: rebuilt from the attached
    segment — the six state matrices and the cost matrix map in place;
    groupings, seed counts and the fanin columns are rederived from the
    (fork-inherited) clock tree and the resolved core.  Cached per
    batch key in a small bounded map (multi-corner queries keep one
    attachment per corner alive at once); the oldest attachment is
    released when the cap is hit.
    """
    from repro.core.batched import BatchedLevels, _build_groupings
    from repro.core.grouping import group_matrix
    from repro.sta.modes import AnalysisMode

    batch = _QUERY_BATCHES.get(desc.batch_key)
    if batch is not None:
        return batch
    cached = _WORKER_BATCHES.get(desc.batch_key)
    if cached is not None:
        return cached[0]
    layout = desc.batch_layout
    if layout is None:
        raise ShmAttachError(
            f"batch {desc.batch_key!r} has no segment to attach")
    views = shm.REGISTRY.views(layout)
    meta = layout.meta_dict
    mode = AnalysisMode.coerce(meta["mode"])
    num_levels = int(meta["num_levels"])
    seed_counts = list(meta["seed_counts"])
    tree = analyzer.clock_tree
    gm, om = group_matrix(tree, analyzer.graph.num_ffs)
    groupings = _build_groupings(tree, gm, om)
    delay_list = (core.fanin_late_list if mode.is_setup
                  else core.fanin_early_list)
    batch = BatchedLevels(
        mode, num_levels, groupings, seed_counts,
        views["time0"], views["from0"], views["group0"],
        views["time1"], views["from1"], views["group1"],
        views["cost0"], core.fanin_ptr_list, core.fanin_src_list,
        delay_list)
    while len(_WORKER_BATCHES) >= _WORKER_BATCH_CAP:
        old_key = next(iter(_WORKER_BATCHES))
        _old_batch, old_segment = _WORKER_BATCHES.pop(old_key)
        shm.REGISTRY.release(old_segment)
    _WORKER_BATCHES[desc.batch_key] = (batch, layout.segment)
    return batch


def run_family_descriptor(desc: FamilyDescriptor):
    """Resolve ``desc`` and run its candidate pass (any executor).

    Module-level and unary so it pickles by reference with one small
    argument.  Returns ``(paths, degradation_events)`` exactly like
    :func:`repro.cppr.engine._run_family_resilient`, which it wraps.
    """
    _SCHED_EVENTS.labels(event="shm_attach", rung="-").inc()
    analyzer = _resolve_design(desc.design)
    core = _resolve_values(analyzer, desc)
    batch = None
    if desc.batch_key is not None:
        batch = _resolve_batch(analyzer, core, desc)
    from repro.cppr.engine import _run_family_resilient
    return _run_family_resilient(analyzer, desc.task, desc.k, desc.mode,
                                 desc.heap_capacity, desc.backend, batch,
                                 desc.strict)


# ----------------------------------------------------------------------
# The persistent fork pool
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_SEQ = -1
_POOL_LOCK = threading.Lock()


def _worker_init() -> None:
    """Runs in every pool worker at spawn (fork) time."""
    from repro.cppr import parallel as _parallel
    _parallel._IN_FORK_WORKER = True
    faults.mark_worker_process()


def worker_entry(fn, args: tuple, collect: bool, plan_state: tuple):
    """Run one task in a persistent-pool worker.

    Mirrors the legacy ``_fork_entry`` (sub-collector, profile dict
    shipped back) but takes everything as arguments instead of a
    fork-inherited payload, and installs the parent's exported fault
    plan first — a worker forked before the current ``inject()`` window
    would otherwise never see its schedule.
    """
    from repro.cppr import parallel as _parallel
    faults.install_plan_state(plan_state)
    if not collect:
        return _parallel._call_task(fn, args), None
    with collecting(Collector()) as sub:
        result = _parallel._call_task(fn, args)
    return result, sub.profile().to_dict()


def ensure_pool(workers: int) -> ProcessPoolExecutor:
    """The shared fork pool, (re)created as needed.

    Recycled when the worker count changes or a design was published
    after the pool forked (its workers could not resolve the new
    token); otherwise the same processes serve query after query —
    the whole point of descriptor sharding.
    """
    global _POOL, _POOL_WORKERS, _POOL_SEQ
    with _POOL_LOCK:
        if _POOL is not None and (_POOL_WORKERS != workers
                                  or _POOL_SEQ != _DESIGN_SEQ):
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None
        if _POOL is None:
            context = multiprocessing.get_context("fork")
            _POOL = ProcessPoolExecutor(max_workers=workers,
                                        mp_context=context,
                                        initializer=_worker_init)
            _POOL_WORKERS = workers
            _POOL_SEQ = _DESIGN_SEQ
        return _POOL


def handle_broken_pool() -> None:
    """Recover from a broken shared pool.

    Drops the pool (a fresh one forks on the next process-rung use) and
    eagerly releases the ephemeral batch segments so a crash never
    leaks ``/dev/shm`` entries.  Values/structure segments are left
    alone — the parent still owns and serves them; their lifetime is
    tied to the core objects (finalizers) and the exit sweep.
    """
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    shm.REGISTRY.sweep_kind("batch")


def shutdown_pool() -> None:
    """Tear down the shared pool (interpreter exit, tests)."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pool)
