"""Primary-output path candidates (library extension).

The paper's problem statement only tests flip-flop capture pins, but real
designs also constrain primary outputs.  An output test has no capture
clock, hence no common clock path and no pessimism to remove — exactly
like primary-input launches.  This optional family seeds *both* primary
inputs and flip-flop Q pins (without credit offsets) and captures at every
primary output with a required time in the requested mode.

Enabled with ``CpprOptions(include_output_tests=True)``; disabled by
default to match the paper's problem formulation.
"""

from __future__ import annotations

from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.propagation import Seed, propagate_single
from repro.cppr.types import PathFamily, TimingPath
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["output_paths"]


def output_paths(analyzer: TimingAnalyzer, k: int,
                 mode: AnalysisMode | str,
                 heap_capacity: int | None = None,
                 backend: str = "scalar") -> list[TimingPath]:
    """Top-``k`` paths ending at constrained primary outputs."""
    with _obs.span("output"):
        return _output_paths(analyzer, k, mode, heap_capacity, backend)


def _output_paths(analyzer: TimingAnalyzer, k: int,
                  mode: AnalysisMode | str,
                  heap_capacity: int | None,
                  backend: str) -> list[TimingPath]:
    mode = AnalysisMode.coerce(mode)
    graph = analyzer.graph
    tree = graph.clock_tree

    seeds = [Seed(pi.pin, pi.at_late if mode.is_setup else pi.at_early)
             for pi in graph.primary_inputs]
    for ff in graph.ffs:
        node = ff.tree_node
        if mode.is_setup:
            q_at = tree.at_late(node) + ff.clk_to_q_late
        else:
            q_at = tree.at_early(node) + ff.clk_to_q_early
        seeds.append(Seed(ff.q_pin, q_at, ff.ck_pin))

    capture_pos = [po for po in graph.primary_outputs
                   if (po.rat_late if mode.is_setup else po.rat_early)
                   is not None]
    if not seeds or not capture_pos:
        return []
    with _obs.span("propagate"):
        arrays = propagate_single(graph, mode, seeds, backend)

    capture_seeds = []
    for po in capture_pos:
        record = arrays.best(po.pin)
        if record is None:
            continue
        if mode.is_setup:
            slack = po.rat_late - record[0]
        else:
            slack = record[0] - po.rat_early
        capture_seeds.append(CaptureSeed(slack, po.pin))

    with _obs.span("search"):
        results = run_topk(graph, arrays, capture_seeds, k, mode,
                           heap_capacity)

    paths = [TimingPath(mode=mode, family=PathFamily.OUTPUT,
                        slack=result.slack, credit=0.0, pins=result.pins,
                        launch_ff=graph.ff_of_q_pin.get(result.pins[0]),
                        capture_ff=None)
             for result in results]
    _obs.add("candidates.produced.output", len(paths))
    return paths
