"""Primary-input path candidates (paper Definition 6, Algorithm 4).

Paths launched from a primary input share no clock path with their capture
clock, so there is no pessimism to remove: candidates are ranked by the
plain pre-CPPR slack and their credit is zero.
"""

from __future__ import annotations

from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.propagation import Seed, propagate_single
from repro.cppr.types import PathFamily, TimingPath
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["primary_input_paths"]


def primary_input_paths(analyzer: TimingAnalyzer, k: int,
                        mode: AnalysisMode | str,
                        heap_capacity: int | None = None,
                        backend: str = "scalar",
                        arrays=None) -> list[TimingPath]:
    """Top-``k`` primary-input path candidates, best slack first.

    ``arrays`` optionally supplies this family's already-propagated
    :class:`~repro.cppr.propagation.SingleArrivalArrays` (an incremental
    session's maintained state), skipping the forward pass here.
    """
    with _obs.span("primary_input"):
        return _primary_input_paths(analyzer, k, mode, heap_capacity,
                                    backend, arrays)


def _primary_input_paths(analyzer: TimingAnalyzer, k: int,
                         mode: AnalysisMode | str,
                         heap_capacity: int | None,
                         backend: str, arrays=None) -> list[TimingPath]:
    mode = AnalysisMode.coerce(mode)
    graph = analyzer.graph
    tree = graph.clock_tree
    clock_period = analyzer.constraints.clock_period

    if arrays is None:
        seeds = [Seed(pi.pin,
                      pi.at_late if mode.is_setup else pi.at_early)
                 for pi in graph.primary_inputs]
        if not seeds:
            return []
        with _obs.span("propagate"):
            arrays = propagate_single(graph, mode, seeds, backend)
    elif not graph.primary_inputs:
        return []

    capture_seeds = []
    for ff in graph.ffs:
        record = arrays.best(ff.d_pin)
        if record is None:
            continue
        if mode.is_setup:
            slack = (tree.at_early(ff.tree_node) + clock_period
                     - ff.t_setup - record[0])
        else:
            slack = record[0] - (tree.at_late(ff.tree_node) + ff.t_hold)
        capture_seeds.append(
            CaptureSeed(slack, ff.d_pin, capture_ff=ff.index))

    with _obs.span("search"):
        results = run_topk(graph, arrays, capture_seeds, k, mode,
                           heap_capacity)

    paths = [TimingPath(mode=mode, family=PathFamily.PRIMARY_INPUT,
                        slack=result.slack, credit=0.0, pins=result.pins,
                        launch_ff=None, capture_ff=result.capture_ff)
             for result in results]
    _obs.add("candidates.produced.primary_input", len(paths))
    return paths
