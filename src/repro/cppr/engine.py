"""The CPPR engine (paper Algorithm 1).

:class:`CpprEngine` orchestrates the whole analysis: it generates top-k
path candidates for every clock-tree level (Definitions 3-4), for
self-loops (Definition 5) and for primary inputs (Definition 6) —
``D + 2`` independent passes, optionally in parallel — then reduces the
``<= k(D+2)`` candidates to the global top-``k`` post-CPPR critical paths
with ``selectTopPaths`` (Algorithm 6).

Example::

    engine = CpprEngine(analyzer)
    for path in engine.top_paths(k=10, mode="setup"):
        print(path.slack, [analyzer.graph.pin_name(p) for p in path.pins])
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import resolve_backend, resolve_batch_levels
from repro.cppr.level_paths import paths_at_level
from repro.cppr.output_paths import output_paths
from repro.cppr.parallel import available_executors, run_tasks
from repro.cppr.pi_paths import primary_input_paths
from repro.cppr.select import select_top_paths
from repro.cppr.selfloop_paths import self_loop_paths
from repro.cppr.types import TimingPath
from repro.exceptions import AnalysisError
from repro.obs import collector as _obs
from repro.obs.collector import collecting
from repro.obs.profile import Profile
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["CpprEngine", "CpprOptions"]


@dataclass(frozen=True, slots=True)
class CpprOptions:
    """Tuning knobs for :class:`CpprEngine`.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` — how the independent
        per-level passes run (see :mod:`repro.cppr.parallel`).
    workers:
        Worker count for parallel executors; ``None`` picks automatically.
    include_self_loops / include_primary_inputs:
        Disable candidate families (Definitions 5-6).  Disabling a family
        makes results incomplete with respect to the paper's problem
        statement; the switches exist for ablation studies.
    include_output_tests:
        Enable the primary-output extension family (off by default to
        match the paper's formulation).
    heap_capacity:
        Live-path bound per pass; ``None`` uses ``k`` (always correct).
        Larger values exist only for the unbounded-heap memory ablation.
    backend:
        ``"auto"``, ``"scalar"`` or ``"array"`` — the compute substrate
        for the per-pass propagation, grouping and deviation costs (see
        :mod:`repro.core`).  ``"auto"`` picks ``"array"`` when numpy is
        importable and falls back to ``"scalar"`` otherwise; requesting
        ``"array"`` without numpy raises at engine construction.  Both
        backends produce identical reports.
    batch_levels:
        ``"auto"``, ``"on"`` or ``"off"`` — whether the ``D`` per-level
        forward propagations run as one ``(D, n)`` batched sweep
        (:mod:`repro.core.batched`) instead of ``D`` independent
        passes.  ``"auto"`` batches exactly when the array backend is
        in use; ``"on"`` without numpy raises the same ``repro[fast]``
        ``ImportError`` as ``backend="array"``, and combined with an
        explicit ``backend="scalar"`` raises at construction.  Batching
        never changes reports — it is the same computation, row-wise.
    """

    executor: str = "serial"
    workers: int | None = None
    include_self_loops: bool = True
    include_primary_inputs: bool = True
    include_output_tests: bool = False
    heap_capacity: int | None = None
    backend: str = "auto"
    batch_levels: str = "auto"


def _run_family(analyzer: TimingAnalyzer, task: tuple, k: int,
                mode: AnalysisMode, heap_capacity: int | None,
                backend: str, batch=None) -> list[TimingPath]:
    """Dispatch one candidate-generation pass (module-level for pickling)."""
    kind = task[0]
    if kind == "level":
        return paths_at_level(analyzer, task[1], k, mode, heap_capacity,
                              backend, batch)
    if kind == "self_loop":
        return self_loop_paths(analyzer, k, mode, heap_capacity, backend)
    if kind == "primary_input":
        return primary_input_paths(analyzer, k, mode, heap_capacity,
                                   backend)
    if kind == "output":
        return output_paths(analyzer, k, mode, heap_capacity, backend)
    raise AnalysisError(f"unknown candidate family task {task!r}")


def _validate_options(options: CpprOptions) -> tuple[str, bool]:
    """Reject bad executor/worker/backend settings at construction time.

    Failing here — with the list of valid values — beats the obscure
    failure the same mistake used to produce deep inside
    :func:`repro.cppr.parallel.run_tasks` on the first query.  Returns
    the resolved concrete backend (``"scalar"`` or ``"array"``) and
    whether the per-level passes share one batched sweep.
    """
    valid = available_executors()
    if options.executor not in valid:
        raise AnalysisError(
            f"unknown executor {options.executor!r}; valid executors on "
            f"this platform: {', '.join(valid)}")
    try:
        backend = resolve_backend(options.backend)
        batched = resolve_batch_levels(options.batch_levels, backend)
    except ValueError as exc:
        raise AnalysisError(str(exc)) from None
    workers = options.workers
    if workers is not None:
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise AnalysisError(
                f"workers must be a positive int or None, "
                f"got {workers!r}")
        if workers < 1:
            raise AnalysisError(
                f"workers must be at least 1 (or None for automatic), "
                f"got {workers}")
    return backend, batched


class CpprEngine:
    """Top-k post-CPPR critical-path engine (the paper's contribution).

    When a :mod:`repro.obs` collector is active during a query, the run
    is traced (per-pass spans, heap/deviation/propagation counters) and
    the resulting :class:`~repro.obs.profile.Profile` snapshot is kept in
    :attr:`last_profile`.  Without a collector the engine runs exactly as
    before and ``last_profile`` stays untouched.
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 options: CpprOptions | None = None) -> None:
        self.analyzer = analyzer
        self.options = options or CpprOptions()
        #: The concrete backend ``"auto"`` resolved to at construction,
        #: and whether per-level passes share one batched sweep.
        self.backend, self.batched = _validate_options(self.options)
        #: Profile of the most recent collected query, or ``None``.
        self.last_profile: Profile | None = None
        #: Memoized last top-paths result: ``(mode, k, paths)``.
        self._topk_cache: tuple[AnalysisMode, int,
                                tuple[TimingPath, ...]] | None = None

    def with_options(self, **changes) -> "CpprEngine":
        """A new engine sharing the analyzer with updated options.

        The new engine starts with an empty memoized-query cache: any
        option can change which paths a query returns or how it runs,
        so results never carry over.
        """
        return CpprEngine(self.analyzer,
                          replace(self.options, **changes))

    def clear_cache(self) -> None:
        """Drop the memoized top-paths result.

        Benchmarks call this between repeated measurements of the same
        query so each run does the full analysis.
        """
        self._topk_cache = None

    # ------------------------------------------------------------------
    # Candidate generation (Algorithm 1 lines 1-5)
    # ------------------------------------------------------------------
    def _tasks(self) -> list[tuple]:
        num_levels = self.analyzer.clock_tree.num_levels
        tasks: list[tuple] = [("level", d) for d in range(num_levels)]
        if self.options.include_self_loops:
            tasks.append(("self_loop",))
        if self.options.include_primary_inputs:
            tasks.append(("primary_input",))
        if self.options.include_output_tests:
            tasks.append(("output",))
        return tasks

    def candidate_paths(self, k: int,
                        mode: AnalysisMode | str) -> list[TimingPath]:
        """All family candidates (up to ``k (D + 2)`` paths), unselected.

        Exposed for tests and ablations; most callers want
        :meth:`top_paths`.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        # The analyzer's topological order is cached lazily; force it here
        # so forked workers inherit it instead of recomputing it each.
        self.analyzer.graph.topo_order
        if self.backend == "array":
            # Same reasoning for the array substrate: build the CSR and
            # the clock-tree lifting mirror once in this process so every
            # worker (thread or forked process) reuses them.
            from repro.core.arrays import get_core
            from repro.core.grouping import tree_lift
            get_core(self.analyzer.graph)
            tree_lift(self.analyzer.clock_tree)
        with _obs.span("candidates"):
            # One (D x n) sweep replaces the D per-level propagations;
            # it runs in this process before the pool starts, so thread
            # and forked workers inherit the shared matrices for free
            # and parallelize the per-level deviation searches.
            batch = None
            if self.batched and self.analyzer.clock_tree.num_levels > 0:
                from repro.core.batched import propagate_dual_batched
                batch = propagate_dual_batched(self.analyzer.graph, mode)
            args = [(self.analyzer, task, k, mode,
                     self.options.heap_capacity, self.backend,
                     batch if task[0] == "level" else None)
                    for task in self._tasks()]
            results = run_tasks(_run_family, args,
                                executor=self.options.executor,
                                workers=self.options.workers)
        return [path for family in results for path in family]

    # ------------------------------------------------------------------
    # The headline query (Algorithm 1 line 6)
    # ------------------------------------------------------------------
    def top_paths(self, k: int, mode: AnalysisMode | str) -> list[TimingPath]:
        """The global top-``k`` post-CPPR critical paths, worst first.

        Each returned path's ``slack`` is the exact post-CPPR slack of
        Equation (2) and its ``credit`` the removed pessimism.

        The last result is memoized per ``(k, mode)``: repeating the
        query — or asking for a smaller ``k`` in the same mode, the
        ``worst_path`` / ``top_slacks`` / ``report`` after ``top_paths``
        pattern — serves a prefix of the cached list instead of
        redoing the analysis (candidate generation and selection are
        deterministic, so the top-``k`` is a prefix of the top-``k'``
        for ``k <= k'``).  The cache is skipped whenever a collector is
        active, so profiled runs always measure real work.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        col = _obs.ACTIVE
        if col is None:
            cached = self._topk_cache
            if (cached is not None and cached[0] == mode
                    and cached[1] >= k):
                return list(cached[2][:k])
        with _obs.span("top_paths"):
            candidates = self.candidate_paths(k, mode)
            selected = select_top_paths(self.analyzer, candidates, k)
        if col is not None:
            self.last_profile = col.profile()
        self._topk_cache = (mode, k, tuple(selected))
        return selected

    def profiled_top_paths(self, k: int, mode: AnalysisMode | str
                           ) -> tuple[list[TimingPath], Profile]:
        """Run :meth:`top_paths` under a fresh collector.

        Returns ``(paths, profile)``; the profile is also stored in
        :attr:`last_profile`.  If a collector was already installed it
        is shadowed for the duration of this call (its totals do not
        include this run).
        """
        with collecting() as col:
            paths = self.top_paths(k, mode)
        return paths, col.profile()

    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        """Just the slack values of :meth:`top_paths` (ascending)."""
        return [path.slack for path in self.top_paths(k, mode)]

    def worst_path(self, mode: AnalysisMode | str) -> TimingPath | None:
        """The single most critical post-CPPR path, or ``None``."""
        paths = self.top_paths(1, mode)
        return paths[0] if paths else None

    def report(self, k: int, mode: AnalysisMode | str,
               title: str | None = None) -> str:
        """The human-readable report of :meth:`top_paths`.

        Reuses the memoized result when :meth:`top_paths` already ran
        for this ``(k, mode)`` (or a larger ``k``, same mode).
        """
        from repro.cppr.report import format_path_report

        mode = AnalysisMode.coerce(mode)
        paths = self.top_paths(k, mode)
        if title is None:
            title = f"Top-{k} post-CPPR {mode.value} paths"
        return format_path_report(self.analyzer, paths, title=title)
