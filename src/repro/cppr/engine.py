"""The CPPR engine (paper Algorithm 1).

:class:`CpprEngine` orchestrates the whole analysis: it generates top-k
path candidates for every clock-tree level (Definitions 3-4), for
self-loops (Definition 5) and for primary inputs (Definition 6) —
``D + 2`` independent passes, optionally in parallel — then reduces the
``<= k(D+2)`` candidates to the global top-``k`` post-CPPR critical paths
with ``selectTopPaths`` (Algorithm 6).

Example::

    engine = CpprEngine(analyzer)
    for path in engine.top_paths(k=10, mode="setup"):
        print(path.slack, [analyzer.graph.pin_name(p) for p in path.pins])
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, replace

from repro.core import resolve_backend, resolve_batch_levels, safer_backend
from repro.cppr.level_paths import paths_at_level
from repro.cppr.output_paths import output_paths
from repro.cppr.parallel import available_executors, run_tasks
from repro.cppr.pi_paths import primary_input_paths
from repro.cppr.select import select_top_paths
from repro.cppr.selfloop_paths import self_loop_paths
from repro.cppr.types import TimingPath
from repro.exceptions import (AnalysisError, DegradedResultWarning,
                              ExecutionError, ReproError)
from repro.obs import collector as _obs
from repro.obs import metrics as _metrics
from repro.obs.collector import collecting
from repro.obs.profile import Profile
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["CpprEngine", "CpprOptions"]

#: Collected full queries by analysis mode (rides the counter merge, so
#: totals stay executor-independent like every other work counter).
_QUERIES = _metrics.REGISTRY.counter(
    "engine.queries", labels=("mode",),
    help="Collected top_paths queries by analysis mode")
#: Last collected query's wall seconds per mode.  A gauge (registry
#: local, last-write-wins) rather than a histogram on purpose: bucketed
#: wall time would put timing jitter into ``Profile.counters`` and break
#: their executor-independence guarantee.
_QUERY_SECONDS = _metrics.REGISTRY.gauge(
    "engine.query_seconds", labels=("mode",),
    help="Wall seconds of the most recent collected top_paths query")


@dataclass(frozen=True, slots=True)
class CpprOptions:
    """Tuning knobs for :class:`CpprEngine`.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` — how the independent
        per-level passes run (see :mod:`repro.cppr.parallel`).
    workers:
        Worker count for parallel executors; ``None`` picks automatically.
    include_self_loops / include_primary_inputs:
        Disable candidate families (Definitions 5-6).  Disabling a family
        makes results incomplete with respect to the paper's problem
        statement; the switches exist for ablation studies.
    include_output_tests:
        Enable the primary-output extension family (off by default to
        match the paper's formulation).
    heap_capacity:
        Live-path bound per pass; ``None`` uses ``k`` (always correct).
        Larger values exist only for the unbounded-heap memory ablation.
    backend:
        ``"auto"``, ``"scalar"`` or ``"array"`` — the compute substrate
        for the per-pass propagation, grouping and deviation costs (see
        :mod:`repro.core`).  ``"auto"`` picks ``"array"`` when numpy is
        importable and falls back to ``"scalar"`` otherwise; requesting
        ``"array"`` without numpy raises at engine construction.  Both
        backends produce identical reports.
    batch_levels:
        ``"auto"``, ``"on"`` or ``"off"`` — whether the ``D`` per-level
        forward propagations run as one ``(D, n)`` batched sweep
        (:mod:`repro.core.batched`) instead of ``D`` independent
        passes.  ``"auto"`` batches exactly when the array backend is
        in use; ``"on"`` without numpy raises the same ``repro[fast]``
        ``ImportError`` as ``backend="array"``, and combined with an
        explicit ``backend="scalar"`` raises at construction.  Batching
        never changes reports — it is the same computation, row-wise.
    task_timeout:
        Seconds each pooled per-level task may take before the
        scheduler declares it hung and re-runs it on a safer executor
        rung; ``None`` (default) never times out.  Unenforceable under
        the serial executor, which runs tasks inline.
    max_retries / retry_backoff:
        Bounded same-rung re-runs of tasks that raised, sleeping
        ``retry_backoff * 2**attempt`` seconds between waves.
    strict:
        Disable every recovery mechanism — no retries, no executor
        fallback, no backend degradation — and raise
        :class:`~repro.exceptions.ExecutionError` on the first fault
        instead.  For callers that prefer failing fast over a slower
        (but still exact) degraded answer.
    """

    executor: str = "serial"
    workers: int | None = None
    include_self_loops: bool = True
    include_primary_inputs: bool = True
    include_output_tests: bool = False
    heap_capacity: int | None = None
    backend: str = "auto"
    batch_levels: str = "auto"
    task_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    strict: bool = False


def _run_family(analyzer: TimingAnalyzer, task: tuple, k: int,
                mode: AnalysisMode, heap_capacity: int | None,
                backend: str, batch=None) -> list[TimingPath]:
    """Dispatch one candidate-generation pass (module-level for pickling)."""
    kind = task[0]
    if kind == "level":
        return paths_at_level(analyzer, task[1], k, mode, heap_capacity,
                              backend, batch)
    if kind == "self_loop":
        return self_loop_paths(analyzer, k, mode, heap_capacity, backend)
    if kind == "primary_input":
        return primary_input_paths(analyzer, k, mode, heap_capacity,
                                   backend)
    if kind == "output":
        return output_paths(analyzer, k, mode, heap_capacity, backend)
    raise AnalysisError(f"unknown candidate family task {task!r}")


def _run_family_resilient(analyzer: TimingAnalyzer, task: tuple, k: int,
                          mode: AnalysisMode, heap_capacity: int | None,
                          backend: str, batch, strict: bool
                          ) -> tuple[list[TimingPath], tuple]:
    """One candidate pass with the backend degradation ladder.

    When a pass dies inside the array substrate (numpy import vanishing
    in a worker, an allocation failure mid-sweep), the *same* pass is
    re-run on the next-safer producer — ``batched -> array -> scalar``
    — each rung of which computes bit-for-bit identical paths.  Returns
    ``(paths, degradation_events)`` so the engine can surface what
    happened; deliberate library errors (:class:`ReproError`) and
    strict mode propagate unchanged.  Module-level for pickling.
    """
    events: list[dict] = []
    attempt_backend, attempt_batch = backend, batch
    while True:
        try:
            paths = _run_family(analyzer, task, k, mode, heap_capacity,
                                attempt_backend, attempt_batch)
            return paths, tuple(events)
        except ReproError:
            raise
        except Exception as exc:
            if strict:
                raise
            if attempt_batch is not None:
                events.append({"event": "degrade.batched",
                               "task": "/".join(map(str, task)),
                               "error": repr(exc)})
                attempt_batch = None
                continue
            safer = safer_backend(attempt_backend)
            if safer is None:
                raise
            events.append({"event": "degrade.backend",
                           "task": "/".join(map(str, task)),
                           "source": attempt_backend, "target": safer,
                           "error": repr(exc)})
            attempt_backend = safer


def _validate_options(options: CpprOptions) -> tuple[str, bool, int]:
    """Reject bad executor/worker/backend settings at construction time.

    Failing here — with the list of valid values — beats the obscure
    failure the same mistake used to produce deep inside
    :func:`repro.cppr.parallel.run_tasks` on the first query.  Returns
    the resolved concrete backend (``"scalar"`` or ``"array"``),
    whether the per-level passes share one batched sweep, and the
    resolved worker count.  Requesting more workers than the machine
    has CPUs is not an error — it is clamped here (oversubscribed
    pools only add contention), and the clamp is visible as the
    ``requested->resolved`` worker entry in the profile header.
    """
    valid = available_executors()
    if options.executor not in valid:
        raise AnalysisError(
            f"unknown executor {options.executor!r}; valid executors on "
            f"this platform: {', '.join(valid)}")
    try:
        backend = resolve_backend(options.backend)
        batched = resolve_batch_levels(options.batch_levels, backend)
    except ValueError as exc:
        raise AnalysisError(str(exc)) from None
    cpus = os.cpu_count() or 1
    workers = options.workers
    if workers is None:
        resolved_workers = cpus
    else:
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise AnalysisError(
                f"workers must be a positive int or None, "
                f"got {workers!r}")
        if workers < 1:
            raise AnalysisError(
                f"workers must be at least 1 (or None for automatic), "
                f"got {workers}")
        resolved_workers = min(workers, cpus)
    timeout = options.task_timeout
    if timeout is not None:
        if (isinstance(timeout, bool)
                or not isinstance(timeout, (int, float))
                or timeout <= 0):
            raise AnalysisError(
                f"task_timeout must be a positive number of seconds or "
                f"None, got {timeout!r}")
    retries = options.max_retries
    if (isinstance(retries, bool) or not isinstance(retries, int)
            or retries < 0):
        raise AnalysisError(
            f"max_retries must be a non-negative int, got {retries!r}")
    backoff = options.retry_backoff
    if (isinstance(backoff, bool)
            or not isinstance(backoff, (int, float)) or backoff < 0):
        raise AnalysisError(
            f"retry_backoff must be a non-negative number of seconds, "
            f"got {backoff!r}")
    if not isinstance(options.strict, bool):
        raise AnalysisError(
            f"strict must be a bool, got {options.strict!r}")
    return backend, batched, resolved_workers


class CpprEngine:
    """Top-k post-CPPR critical-path engine (the paper's contribution).

    When a :mod:`repro.obs` collector is active during a query, the run
    is traced (per-pass spans, heap/deviation/propagation counters) and
    the resulting :class:`~repro.obs.profile.Profile` snapshot is kept in
    :attr:`last_profile`.  Without a collector the engine runs exactly as
    before and ``last_profile`` stays untouched.
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 options: CpprOptions | None = None) -> None:
        self.analyzer = analyzer
        self.options = options or CpprOptions()
        #: The concrete backend ``"auto"`` resolved to at construction,
        #: whether per-level passes share one batched sweep, and the
        #: worker count after clamping to the machine's CPUs.
        (self.backend, self.batched,
         self.resolved_workers) = _validate_options(self.options)
        #: Profile of the most recent collected query, or ``None``.
        self.last_profile: Profile | None = None
        #: Trace id of the most recent collected query, or ``None``.
        #: Matches ``last_profile.trace_id`` and the id stamped on
        #: exported traces and degradation events of that window.
        self.last_trace_id: str | None = None
        #: Fault/degradation events of the most recent full query —
        #: empty for clean runs.  Also embedded as the ``degraded``
        #: section of :attr:`last_profile` when a collector was active.
        self.last_degraded: tuple[dict, ...] = ()
        # Memoized select-stage results keyed (mode, k) — a small LRU
        # (both modes times a few k values) with hit/miss/eviction
        # counters under ``select.cache.*``.  The engine's graph is
        # immutable, so entries never go stale; incremental sessions
        # (which *do* mutate) keep their own validity-stamped caches.
        from repro.pipeline.artifacts import LruCache
        self._topk_cache = LruCache(capacity=8,
                                    counter_prefix="select.cache")

    def with_options(self, **changes) -> "CpprEngine":
        """A new engine sharing the analyzer with updated options.

        The new engine starts with an empty memoized-query cache: any
        option can change which paths a query returns or how it runs,
        so results never carry over.
        """
        return CpprEngine(self.analyzer,
                          replace(self.options, **changes))

    def session(self, **option_changes) -> "CpprSession":
        """Open an incremental (ECO) re-analysis session.

        The returned :class:`~repro.pipeline.session.CpprSession` owns a
        private clone of the analyzer's graph; ``session.update(...)``
        applies delay/clock edits to the clone (never to this engine's
        graph) and ``session.top_paths(...)`` re-answers queries by
        re-relaxing only the edit's dirty cone and re-running only the
        invalidated candidate families — bit-for-bit identical to a
        fresh engine on the edited design.  See ``docs/INCREMENTAL.md``.
        """
        from repro.pipeline.session import CpprSession

        options = (replace(self.options, **option_changes)
                   if option_changes else self.options)
        return CpprSession(self.analyzer, options)

    def profile_meta(self) -> dict[str, str]:
        """Header metadata stamped on every collected profile.

        The ``workers`` entry shows ``requested->resolved`` whenever
        construction clamped an oversubscribed request, making the
        clamp visible in ``repro report --profile`` output.
        """
        requested = self.options.workers
        if requested is not None and requested != self.resolved_workers:
            workers = f"{requested}->{self.resolved_workers}"
        else:
            workers = str(self.resolved_workers)
        from repro.core import shm as _shm
        shm_on = self.backend == "array" and _shm.available()
        return {"executor": self.options.executor,
                "workers": workers,
                "backend": self.backend,
                "batched": "on" if self.batched else "off",
                "shm": "on" if shm_on else "off"}

    def clear_cache(self) -> None:
        """Drop the memoized top-paths results.

        Benchmarks call this between repeated measurements of the same
        query so each run does the full analysis.
        """
        self._topk_cache.clear()

    # ------------------------------------------------------------------
    # Candidate generation (Algorithm 1 lines 1-5)
    # ------------------------------------------------------------------
    def _tasks(self) -> list[tuple]:
        num_levels = self.analyzer.clock_tree.num_levels
        tasks: list[tuple] = [("level", d) for d in range(num_levels)]
        if self.options.include_self_loops:
            tasks.append(("self_loop",))
        if self.options.include_primary_inputs:
            tasks.append(("primary_input",))
        if self.options.include_output_tests:
            tasks.append(("output",))
        return tasks

    def candidate_paths(self, k: int,
                        mode: AnalysisMode | str) -> list[TimingPath]:
        """All family candidates (up to ``k (D + 2)`` paths), unselected.

        Exposed for tests and ablations; most callers want
        :meth:`top_paths`.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        strict = self.options.strict
        degraded: list[dict] = []
        col = _obs.ACTIVE
        with _obs.span("candidates"):
            # The stage[...] spans mirror the staged pipeline's
            # vocabulary (repro.pipeline.STAGES) so a one-shot engine
            # trace and an incremental-session trace read the same way.
            with _obs.span("stage", "structure"):
                # The analyzer's topological order is cached lazily;
                # force it here so forked workers inherit it instead of
                # recomputing it each.  Same reasoning for the
                # clock-tree lifting mirror on the array backend.
                self.analyzer.graph.topo_order
                if self.backend == "array":
                    from repro.core.grouping import tree_lift
                    tree_lift(self.analyzer.clock_tree)
            with _obs.span("stage", "values"):
                if self.backend == "array":
                    # Build the CSR core (adjacency plus the bound
                    # delay-value columns) once in this process so
                    # every worker (thread or forked process) reuses
                    # it.  On the scalar backend values live on the
                    # graph already and this stage is empty.
                    from repro.core.arrays import get_core
                    get_core(self.analyzer.graph)
            # One (D x n) sweep replaces the D per-level propagations;
            # it runs in this process before the pool starts, so thread
            # and forked workers inherit the shared matrices for free
            # and parallelize the per-level deviation searches.
            batch = None
            with _obs.span("stage", "propagation"):
                if self.batched and self.analyzer.clock_tree.num_levels > 0:
                    try:
                        from repro.core.batched import \
                            propagate_dual_batched
                        batch = propagate_dual_batched(
                            self.analyzer.graph, mode)
                    except ReproError:
                        raise
                    except Exception as exc:
                        if strict:
                            raise ExecutionError(
                                "batched propagation failed in strict "
                                "mode") from exc
                        degraded.append({"event": "degrade.batched",
                                         "task": "build",
                                         "error": repr(exc)})
            # Shared-memory plane: on the array backend (when the
            # platform supports it) the query's value/batch columns are
            # published once and the tasks become descriptor tuples —
            # workers attach the segments instead of unpickling a fork
            # payload.  The same descriptor path runs under every
            # executor so spans and counters stay executor-independent.
            fn, process_pool, shard_ctx = _run_family_resilient, "fork", None
            args = [(self.analyzer, task, k, mode,
                     self.options.heap_capacity, self.backend,
                     batch if task[0] == "level" else None, strict)
                    for task in self._tasks()]
            if self.backend == "array":
                from repro.core import shm as _shm
                if _shm.available():
                    from repro.cppr import shard as _shard
                    with _obs.span("stage", "shm_publish"):
                        try:
                            shard_ctx = _shard.open_query(
                                self.analyzer, batch, mode,
                                publish_batch=(
                                    self.options.executor == "process"))
                        except ReproError:
                            raise
                        except Exception as exc:
                            if strict:
                                raise ExecutionError(
                                    "shared-memory publish failed in "
                                    "strict mode") from exc
                            degraded.append({"event": "degrade.shm",
                                             "task": "publish",
                                             "error": repr(exc)})
                    if shard_ctx is not None:
                        fn, process_pool = (_shard.run_family_descriptor,
                                            "shared")
                        args = [(shard_ctx.descriptor(
                                    task, k, mode,
                                    self.options.heap_capacity,
                                    self.backend, strict),)
                                for task in self._tasks()]
            with _obs.span("stage", "families"):
                try:
                    packed = run_tasks(
                        fn, args,
                        executor=self.options.executor,
                        workers=self.resolved_workers,
                        task_timeout=self.options.task_timeout,
                        max_retries=0 if strict
                        else self.options.max_retries,
                        retry_backoff=self.options.retry_backoff,
                        fallback=not strict,
                        events=degraded,
                        process_pool=process_pool)
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExecutionError(
                        "candidate generation failed"
                        + (" in strict mode" if strict else
                           " after exhausting every fallback")) from exc
                finally:
                    if shard_ctx is not None:
                        shard_ctx.close()
        results = []
        for family, task_events in packed:
            results.append(family)
            degraded.extend(task_events)
        if col is not None:
            # Scheduler events were counted by run_tasks as they
            # happened; the backend-ladder events travelled back from
            # the (possibly forked) tasks and are counted here.  Every
            # event is stamped with the window's trace id so exported
            # traces and degradation records correlate.
            for event in degraded:
                if event["event"] in ("degrade.batched",
                                      "degrade.backend"):
                    col.add(event["event"])
                event.setdefault("trace", col.trace_id)
        self.last_degraded = tuple(degraded)
        if degraded:
            summary = {}
            for event in degraded:
                summary[event["event"]] = summary.get(event["event"], 0) + 1
            warnings.warn(
                "CPPR query completed degraded ("
                + ", ".join(f"{name} x{count}"
                            for name, count in sorted(summary.items()))
                + "); the report is still exact",
                DegradedResultWarning, stacklevel=3)
        return [path for family in results for path in family]

    # ------------------------------------------------------------------
    # The headline query (Algorithm 1 line 6)
    # ------------------------------------------------------------------
    def top_paths(self, k: int, mode: AnalysisMode | str) -> list[TimingPath]:
        """The global top-``k`` post-CPPR critical paths, worst first.

        Each returned path's ``slack`` is the exact post-CPPR slack of
        Equation (2) and its ``credit`` the removed pessimism.

        Results are memoized in a small keyed LRU (the pipeline's
        ``select`` artifact): repeating a ``(mode, k)`` query — or
        asking for a smaller ``k`` in the same mode, the ``worst_path``
        / ``top_slacks`` / ``report`` after ``top_paths`` pattern —
        serves a prefix of a cached list instead of redoing the
        analysis (candidate generation and selection are deterministic,
        so the top-``k`` is a prefix of the top-``k'`` for ``k <=
        k'``).  Traffic is counted under ``select.cache.*``.  The cache
        is skipped whenever a collector is active, so profiled runs
        always measure real work.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        col = _obs.ACTIVE
        if col is None:
            served = self._serve_cached(mode, k)
            if served is not None:
                return served
        _QUERIES.labels(mode=mode.value).inc()
        started = time.perf_counter()
        with _obs.span("top_paths"):
            candidates = self.candidate_paths(k, mode)
            with _obs.span("stage", "select"):
                selected = select_top_paths(self.analyzer, candidates, k)
        if col is not None:
            _QUERY_SECONDS.labels(mode=mode.value).set(
                time.perf_counter() - started)
            self.last_trace_id = col.trace_id
            self.last_profile = col.profile().with_degraded(
                self.last_degraded).with_meta(self.profile_meta())
        self._topk_cache.store((mode, k), tuple(selected))
        return selected

    def _serve_cached(self, mode: AnalysisMode,
                      k: int) -> list[TimingPath] | None:
        """A cached ``(mode, k' >= k)`` prefix, or ``None`` (a miss)."""
        best = None
        for entry_mode, entry_k in self._topk_cache.keys():
            if entry_mode == mode and entry_k >= k:
                if best is None or entry_k < best:
                    best = entry_k
        if best is None:
            self._topk_cache.get((mode, k))  # records the miss
            return None
        return list(self._topk_cache.get((mode, best))[:k])

    def profiled_top_paths(self, k: int, mode: AnalysisMode | str
                           ) -> tuple[list[TimingPath], Profile]:
        """Run :meth:`top_paths` under a fresh collector.

        Returns ``(paths, profile)``; the profile is also stored in
        :attr:`last_profile`.  If a collector was already installed it
        is shadowed for the duration of this call (its totals do not
        include this run).
        """
        with collecting() as col:
            paths = self.top_paths(k, mode)
        return paths, (col.profile().with_degraded(self.last_degraded)
                       .with_meta(self.profile_meta()))

    def top_slacks(self, k: int, mode: AnalysisMode | str) -> list[float]:
        """Just the slack values of :meth:`top_paths` (ascending)."""
        return [path.slack for path in self.top_paths(k, mode)]

    def worst_path(self, mode: AnalysisMode | str) -> TimingPath | None:
        """The single most critical post-CPPR path, or ``None``."""
        paths = self.top_paths(1, mode)
        return paths[0] if paths else None

    def report(self, k: int, mode: AnalysisMode | str,
               title: str | None = None) -> str:
        """The human-readable report of :meth:`top_paths`.

        Reuses the memoized result when :meth:`top_paths` already ran
        for this ``(k, mode)`` (or a larger ``k``, same mode).
        """
        from repro.cppr.report import format_path_report

        mode = AnalysisMode.coerce(mode)
        paths = self.top_paths(k, mode)
        if title is None:
            title = f"Top-{k} post-CPPR {mode.value} paths"
        return format_path_report(self.analyzer, paths, title=title)
