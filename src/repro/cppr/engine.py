"""The CPPR engine (paper Algorithm 1).

:class:`CpprEngine` orchestrates the whole analysis: it generates top-k
path candidates for every clock-tree level (Definitions 3-4), for
self-loops (Definition 5) and for primary inputs (Definition 6) —
``D + 2`` independent passes, optionally in parallel — then reduces the
``<= k(D+2)`` candidates to the global top-``k`` post-CPPR critical paths
with ``selectTopPaths`` (Algorithm 6).

Example::

    engine = CpprEngine(analyzer)
    for path in engine.top_paths(k=10, mode="setup"):
        print(path.slack, [analyzer.graph.pin_name(p) for p in path.pins])
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.corners import CornerSet

from repro.core import resolve_backend, resolve_batch_levels, safer_backend
from repro.cppr.level_paths import paths_at_level
from repro.cppr.output_paths import output_paths
from repro.cppr.parallel import available_executors, run_tasks
from repro.cppr.pi_paths import primary_input_paths
from repro.cppr.select import select_top_paths
from repro.cppr.selfloop_paths import self_loop_paths
from repro.cppr.types import TimingPath
from repro.exceptions import (AnalysisError, DegradedResultWarning,
                              ExecutionError, ReproError)
from repro.obs import collector as _obs
from repro.obs import metrics as _metrics
from repro.obs.collector import collecting
from repro.obs.profile import Profile
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["CpprEngine", "CpprOptions"]

#: Collected full queries by corner and analysis mode (rides the
#: counter merge, so totals stay executor-independent like every other
#: work counter).  ``corner="-"`` labels engines with no corners
#: configured.
_QUERIES = _metrics.REGISTRY.counter(
    "engine.queries", labels=("corner", "mode"),
    help="Collected top_paths queries by corner and analysis mode")
#: Last collected query's wall seconds per mode.  A gauge (registry
#: local, last-write-wins) rather than a histogram on purpose: bucketed
#: wall time would put timing jitter into ``Profile.counters`` and break
#: their executor-independence guarantee.
_QUERY_SECONDS = _metrics.REGISTRY.gauge(
    "engine.query_seconds", labels=("mode",),
    help="Wall seconds of the most recent collected top_paths query")


@dataclass(frozen=True, slots=True)
class CpprOptions:
    """Tuning knobs for :class:`CpprEngine`.

    Attributes
    ----------
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` — how the independent
        per-level passes run (see :mod:`repro.cppr.parallel`).
    workers:
        Worker count for parallel executors; ``None`` picks automatically.
    include_self_loops / include_primary_inputs:
        Disable candidate families (Definitions 5-6).  Disabling a family
        makes results incomplete with respect to the paper's problem
        statement; the switches exist for ablation studies.
    include_output_tests:
        Enable the primary-output extension family (off by default to
        match the paper's formulation).
    heap_capacity:
        Live-path bound per pass; ``None`` uses ``k`` (always correct).
        Larger values exist only for the unbounded-heap memory ablation.
    backend:
        ``"auto"``, ``"scalar"`` or ``"array"`` — the compute substrate
        for the per-pass propagation, grouping and deviation costs (see
        :mod:`repro.core`).  ``"auto"`` picks ``"array"`` when numpy is
        importable and falls back to ``"scalar"`` otherwise; requesting
        ``"array"`` without numpy raises at engine construction.  Both
        backends produce identical reports.
    batch_levels:
        ``"auto"``, ``"on"`` or ``"off"`` — whether the ``D`` per-level
        forward propagations run as one ``(D, n)`` batched sweep
        (:mod:`repro.core.batched`) instead of ``D`` independent
        passes.  ``"auto"`` batches exactly when the array backend is
        in use; ``"on"`` without numpy raises the same ``repro[fast]``
        ``ImportError`` as ``backend="array"``, and combined with an
        explicit ``backend="scalar"`` raises at construction.  Batching
        never changes reports — it is the same computation, row-wise.
    task_timeout:
        Seconds each pooled per-level task may take before the
        scheduler declares it hung and re-runs it on a safer executor
        rung; ``None`` (default) never times out.  Unenforceable under
        the serial executor, which runs tasks inline.
    max_retries / retry_backoff:
        Bounded same-rung re-runs of tasks that raised, sleeping
        ``retry_backoff * 2**attempt`` seconds between waves.
    strict:
        Disable every recovery mechanism — no retries, no executor
        fallback, no backend degradation — and raise
        :class:`~repro.exceptions.ExecutionError` on the first fault
        instead.  For callers that prefer failing fast over a slower
        (but still exact) degraded answer.
    corners:
        A :class:`~repro.corners.CornerSet` to analyze, or ``None``
        (single-corner analysis of the base design).  With corners
        configured the engine realizes every corner at construction
        (sharing one :class:`~repro.core.arrays.CoreStructure`), fuses
        all ``C`` propagations into one stacked sweep, and answers
        queries per corner (``top_paths(k, mode, corner=name)``,
        :meth:`CpprEngine.top_paths_by_corner`,
        :meth:`CpprEngine.merged_worst`) — bit-for-bit identical to
        ``C`` independent single-corner engines.  See ``docs/MCMM.md``.
    """

    executor: str = "serial"
    workers: int | None = None
    include_self_loops: bool = True
    include_primary_inputs: bool = True
    include_output_tests: bool = False
    heap_capacity: int | None = None
    backend: str = "auto"
    batch_levels: str = "auto"
    task_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    strict: bool = False
    corners: "CornerSet | None" = None


def _run_family(analyzer: TimingAnalyzer, task: tuple, k: int,
                mode: AnalysisMode, heap_capacity: int | None,
                backend: str, batch=None) -> list[TimingPath]:
    """Dispatch one candidate-generation pass (module-level for pickling)."""
    kind = task[0]
    if kind == "level":
        return paths_at_level(analyzer, task[1], k, mode, heap_capacity,
                              backend, batch)
    if kind == "self_loop":
        return self_loop_paths(analyzer, k, mode, heap_capacity, backend)
    if kind == "primary_input":
        return primary_input_paths(analyzer, k, mode, heap_capacity,
                                   backend)
    if kind == "output":
        return output_paths(analyzer, k, mode, heap_capacity, backend)
    raise AnalysisError(f"unknown candidate family task {task!r}")


def _run_family_resilient(analyzer: TimingAnalyzer, task: tuple, k: int,
                          mode: AnalysisMode, heap_capacity: int | None,
                          backend: str, batch, strict: bool
                          ) -> tuple[list[TimingPath], tuple]:
    """One candidate pass with the backend degradation ladder.

    When a pass dies inside the array substrate (numpy import vanishing
    in a worker, an allocation failure mid-sweep), the *same* pass is
    re-run on the next-safer producer — ``batched -> array -> scalar``
    — each rung of which computes bit-for-bit identical paths.  Returns
    ``(paths, degradation_events)`` so the engine can surface what
    happened; deliberate library errors (:class:`ReproError`) and
    strict mode propagate unchanged.  Module-level for pickling.
    """
    events: list[dict] = []
    attempt_backend, attempt_batch = backend, batch
    while True:
        try:
            paths = _run_family(analyzer, task, k, mode, heap_capacity,
                                attempt_backend, attempt_batch)
            return paths, tuple(events)
        except ReproError:
            raise
        except Exception as exc:
            if strict:
                raise
            if attempt_batch is not None:
                events.append({"event": "degrade.batched",
                               "task": "/".join(map(str, task)),
                               "error": repr(exc)})
                attempt_batch = None
                continue
            safer = safer_backend(attempt_backend)
            if safer is None:
                raise
            events.append({"event": "degrade.backend",
                           "task": "/".join(map(str, task)),
                           "source": attempt_backend, "target": safer,
                           "error": repr(exc)})
            attempt_backend = safer


def _validate_options(options: CpprOptions) -> tuple[str, bool, int]:
    """Reject bad executor/worker/backend settings at construction time.

    Failing here — with the list of valid values — beats the obscure
    failure the same mistake used to produce deep inside
    :func:`repro.cppr.parallel.run_tasks` on the first query.  Returns
    the resolved concrete backend (``"scalar"`` or ``"array"``),
    whether the per-level passes share one batched sweep, and the
    resolved worker count.  Requesting more workers than the machine
    has CPUs is not an error — it is clamped here (oversubscribed
    pools only add contention), and the clamp is visible as the
    ``requested->resolved`` worker entry in the profile header.
    """
    valid = available_executors()
    if options.executor not in valid:
        raise AnalysisError(
            f"unknown executor {options.executor!r}; valid executors on "
            f"this platform: {', '.join(valid)}")
    try:
        backend = resolve_backend(options.backend)
        batched = resolve_batch_levels(options.batch_levels, backend)
    except ValueError as exc:
        raise AnalysisError(str(exc)) from None
    cpus = os.cpu_count() or 1
    workers = options.workers
    if workers is None:
        resolved_workers = cpus
    else:
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise AnalysisError(
                f"workers must be a positive int or None, "
                f"got {workers!r}")
        if workers < 1:
            raise AnalysisError(
                f"workers must be at least 1 (or None for automatic), "
                f"got {workers}")
        resolved_workers = min(workers, cpus)
    timeout = options.task_timeout
    if timeout is not None:
        if (isinstance(timeout, bool)
                or not isinstance(timeout, (int, float))
                or timeout <= 0):
            raise AnalysisError(
                f"task_timeout must be a positive number of seconds or "
                f"None, got {timeout!r}")
    retries = options.max_retries
    if (isinstance(retries, bool) or not isinstance(retries, int)
            or retries < 0):
        raise AnalysisError(
            f"max_retries must be a non-negative int, got {retries!r}")
    backoff = options.retry_backoff
    if (isinstance(backoff, bool)
            or not isinstance(backoff, (int, float)) or backoff < 0):
        raise AnalysisError(
            f"retry_backoff must be a non-negative number of seconds, "
            f"got {backoff!r}")
    if not isinstance(options.strict, bool):
        raise AnalysisError(
            f"strict must be a bool, got {options.strict!r}")
    if options.corners is not None:
        from repro.corners import CornerSet
        if not isinstance(options.corners, CornerSet):
            raise AnalysisError(
                f"corners must be a repro.corners.CornerSet or None, "
                f"got {options.corners!r}")
    return backend, batched, resolved_workers


class CpprEngine:
    """Top-k post-CPPR critical-path engine (the paper's contribution).

    When a :mod:`repro.obs` collector is active during a query, the run
    is traced (per-pass spans, heap/deviation/propagation counters) and
    the resulting :class:`~repro.obs.profile.Profile` snapshot is kept in
    :attr:`last_profile`.  Without a collector the engine runs exactly as
    before and ``last_profile`` stays untouched.
    """

    def __init__(self, analyzer: TimingAnalyzer,
                 options: CpprOptions | None = None) -> None:
        self.analyzer = analyzer
        self.options = options or CpprOptions()
        #: The concrete backend ``"auto"`` resolved to at construction,
        #: whether per-level passes share one batched sweep, and the
        #: worker count after clamping to the machine's CPUs.
        (self.backend, self.batched,
         self.resolved_workers) = _validate_options(self.options)
        #: Profile of the most recent collected query, or ``None``.
        self.last_profile: Profile | None = None
        #: Trace id of the most recent collected query, or ``None``.
        #: Matches ``last_profile.trace_id`` and the id stamped on
        #: exported traces and degradation events of that window.
        self.last_trace_id: str | None = None
        #: Fault/degradation events of the most recent full query —
        #: empty for clean runs.  Also embedded as the ``degraded``
        #: section of :attr:`last_profile` when a collector was active.
        self.last_degraded: tuple[dict, ...] = ()
        #: Extra ``Profile.meta`` entries merged into every collected
        #: query's header by :meth:`profile_meta`.  The timing server
        #: stamps its serving context here (design token, session id,
        #: corner count) so Chrome traces exported from concurrent
        #: requests are distinguishable in Perfetto.
        self.meta_context: dict[str, str] = {}
        #: Corner-realized analyzers by name (empty when no corners are
        #: configured).  Realization is eager — a typo'd pin or clock
        #: node in a corner delta raises here, not on the first query —
        #: and on the array backend every corner shares the base
        #: graph's CoreStructure (the fused-sweep precondition).
        self._corner_analyzers: dict[str, TimingAnalyzer] = {}
        if self.options.corners is not None:
            self._corner_analyzers = self.options.corners.realize(
                analyzer, self.backend)
        # Memoized select-stage results keyed (corner, mode, k) — a
        # small LRU sized to hold every corner of a query, with
        # hit/miss/eviction counters under ``select.cache.*``.  The
        # corner id in the key keeps per-corner queries from aliasing
        # the single-corner memo.  The engine's graphs are immutable,
        # so entries never go stale; incremental sessions (which *do*
        # mutate) keep their own validity-stamped caches.
        from repro.pipeline.artifacts import LruCache
        capacity = max(8, 4 * len(self._corner_analyzers))
        self._topk_cache = LruCache(capacity=capacity,
                                    counter_prefix="select.cache")

    def with_options(self, **changes) -> "CpprEngine":
        """A new engine sharing the analyzer with updated options.

        The new engine starts with an empty memoized-query cache: any
        option can change which paths a query returns or how it runs,
        so results never carry over.
        """
        return CpprEngine(self.analyzer,
                          replace(self.options, **changes))

    def session(self, **option_changes) -> "CpprSession":
        """Open an incremental (ECO) re-analysis session.

        The returned :class:`~repro.pipeline.session.CpprSession` owns a
        private clone of the analyzer's graph; ``session.update(...)``
        applies delay/clock edits to the clone (never to this engine's
        graph) and ``session.top_paths(...)`` re-answers queries by
        re-relaxing only the edit's dirty cone and re-running only the
        invalidated candidate families — bit-for-bit identical to a
        fresh engine on the edited design.  See ``docs/INCREMENTAL.md``.

        With corners configured this returns a
        :class:`~repro.pipeline.session.MultiCornerSession` instead:
        one ``update(...)`` applies the edit to every corner with a
        single shared dirty cone, and queries take a ``corner=`` name.
        See ``docs/MCMM.md``.
        """
        from repro.pipeline.session import CpprSession, MultiCornerSession

        options = (replace(self.options, **option_changes)
                   if option_changes else self.options)
        if options.corners is not None:
            return MultiCornerSession(self.analyzer, options)
        return CpprSession(self.analyzer, options)

    def profile_meta(self) -> dict[str, str]:
        """Header metadata stamped on every collected profile.

        The ``workers`` entry shows ``requested->resolved`` whenever
        construction clamped an oversubscribed request, making the
        clamp visible in ``repro report --profile`` output.
        """
        requested = self.options.workers
        if requested is not None and requested != self.resolved_workers:
            workers = f"{requested}->{self.resolved_workers}"
        else:
            workers = str(self.resolved_workers)
        from repro.core import shm as _shm
        shm_on = self.backend == "array" and _shm.available()
        meta = {"executor": self.options.executor,
                "workers": workers,
                "backend": self.backend,
                "batched": "on" if self.batched else "off",
                "shm": "on" if shm_on else "off"}
        if self._corner_analyzers:
            names = list(self._corner_analyzers)
            meta["corners"] = f"{len(names)}: {', '.join(names)}"
        for key, value in self.meta_context.items():
            meta[str(key)] = str(value)
        return meta

    def clear_cache(self) -> None:
        """Drop the memoized top-paths results.

        Benchmarks call this between repeated measurements of the same
        query so each run does the full analysis.
        """
        self._topk_cache.clear()

    # ------------------------------------------------------------------
    # The corner axis
    # ------------------------------------------------------------------
    def _corner_items(self) -> list[tuple[str | None, TimingAnalyzer]]:
        """``(corner_name, analyzer)`` pairs this engine analyzes.

        One ``(None, base_analyzer)`` pair without corners; the
        realized corner analyzers (in corner-set order) otherwise.
        """
        if not self._corner_analyzers:
            return [(None, self.analyzer)]
        return list(self._corner_analyzers.items())

    def _corner_key(self, corner: str | None) -> str | None:
        """Validate a ``corner=`` argument against the configuration."""
        if not self._corner_analyzers:
            if corner is not None:
                raise AnalysisError(
                    f"no corners configured on this engine; drop "
                    f"corner={corner!r} or construct with "
                    f"CpprOptions(corners=...)")
            return None
        if corner is None:
            raise AnalysisError(
                "this engine analyzes corners "
                f"({', '.join(self._corner_analyzers)}); pass "
                "corner=<name>, or use top_paths_by_corner() / "
                "merged_worst()")
        if corner not in self._corner_analyzers:
            raise AnalysisError(
                f"unknown corner {corner!r}; valid corners: "
                f"{', '.join(self._corner_analyzers)}")
        return corner

    @staticmethod
    def _corner_label(corner: str | None) -> str:
        """The metric/cache label of a corner key (``"-"`` = none)."""
        return "-" if corner is None else corner

    # ------------------------------------------------------------------
    # Candidate generation (Algorithm 1 lines 1-5)
    # ------------------------------------------------------------------
    def _tasks(self) -> list[tuple]:
        num_levels = self.analyzer.clock_tree.num_levels
        tasks: list[tuple] = [("level", d) for d in range(num_levels)]
        if self.options.include_self_loops:
            tasks.append(("self_loop",))
        if self.options.include_primary_inputs:
            tasks.append(("primary_input",))
        if self.options.include_output_tests:
            tasks.append(("output",))
        return tasks

    def candidate_paths(self, k: int, mode: AnalysisMode | str,
                        corner: str | None = None) -> list[TimingPath]:
        """All family candidates (up to ``k (D + 2)`` paths), unselected.

        With corners configured, ``corner`` names which corner's
        candidates to return (the underlying generation is always the
        fused all-corner run).  Exposed for tests and ablations; most
        callers want :meth:`top_paths`.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        key = self._corner_key(corner)
        return self._generate_candidates(k, mode)[key]

    def _generate_candidates(
            self, k: int, mode: AnalysisMode
    ) -> dict[str | None, list[TimingPath]]:
        """One fused candidate-generation pass over every corner item.

        All ``C`` corners (or the single base design) share one
        structure/values/propagation prologue, one stacked ``(C * 2D,
        n)`` sweep, and ONE task fan-out of ``C * (D + 2)`` family
        passes — the amortization this engine's corner axis exists
        for.  Returns per-corner candidate lists keyed like
        :meth:`_corner_items`.
        """
        strict = self.options.strict
        degraded: list[dict] = []
        col = _obs.ACTIVE
        items = self._corner_items()
        with _obs.span("candidates"):
            # The stage[...] spans mirror the staged pipeline's
            # vocabulary (repro.pipeline.STAGES) so a one-shot engine
            # trace and an incremental-session trace read the same way.
            with _obs.span("stage", "structure"):
                # The analyzer's topological order is cached lazily;
                # force it here so forked workers inherit it instead of
                # recomputing it each.  Same reasoning for the
                # clock-tree lifting mirror on the array backend.
                # Corner graphs share the base topo_order; their trees
                # lift independently (per-corner clock deltas).
                for _name, analyzer in items:
                    analyzer.graph.topo_order
                    if self.backend == "array":
                        from repro.core.grouping import tree_lift
                        tree_lift(analyzer.clock_tree)
            with _obs.span("stage", "values"):
                if self.backend == "array":
                    # Build the CSR cores (shared structure plus each
                    # corner's bound delay-value columns) once in this
                    # process so every worker (thread or forked
                    # process) reuses them.  On the scalar backend
                    # values live on the graphs already and this stage
                    # is empty.
                    from repro.core.arrays import get_core
                    for _name, analyzer in items:
                        get_core(analyzer.graph)
            # One stacked sweep replaces the C * D per-level
            # propagations; it runs in this process before the pool
            # starts, so thread and forked workers inherit the shared
            # matrices for free and parallelize the per-level
            # deviation searches.
            batches: dict[str | None, object] = {name: None
                                                 for name, _ in items}
            with _obs.span("stage", "propagation"):
                if self.batched and self.analyzer.clock_tree.num_levels > 0:
                    try:
                        from repro.core.batched import \
                            propagate_dual_batched_corners
                        built = propagate_dual_batched_corners(
                            [analyzer.graph for _n, analyzer in items],
                            mode)
                        batches = {name: batch for (name, _a), batch
                                   in zip(items, built)}
                    except ReproError:
                        raise
                    except Exception as exc:
                        if strict:
                            raise ExecutionError(
                                "batched propagation failed in strict "
                                "mode") from exc
                        degraded.append({"event": "degrade.batched",
                                         "task": "build",
                                         "error": repr(exc)})
            # Shared-memory plane: on the array backend (when the
            # platform supports it) each corner's value/batch columns
            # are published once and the tasks become descriptor tuples
            # — workers attach the segments instead of unpickling a
            # fork payload.  All C designs publish before the single
            # fan-out so the persistent pool forks exactly once.  The
            # same descriptor path runs under every executor so spans
            # and counters stay executor-independent.
            task_index = [(name, analyzer, task)
                          for name, analyzer in items
                          for task in self._tasks()]
            fn, process_pool = _run_family_resilient, "fork"
            shard_ctxs: dict[str | None, object] = {}
            args = [(analyzer, task, k, mode,
                     self.options.heap_capacity, self.backend,
                     batches[name] if task[0] == "level" else None,
                     strict)
                    for name, analyzer, task in task_index]
            if self.backend == "array":
                from repro.core import shm as _shm
                if _shm.available():
                    from repro.cppr import shard as _shard
                    with _obs.span("stage", "shm_publish"):
                        try:
                            for name, analyzer in items:
                                shard_ctxs[name] = _shard.open_query(
                                    analyzer, batches[name], mode,
                                    publish_batch=(
                                        self.options.executor
                                        == "process"))
                        except ReproError:
                            raise
                        except Exception as exc:
                            for ctx in shard_ctxs.values():
                                ctx.close()
                            shard_ctxs = {}
                            if strict:
                                raise ExecutionError(
                                    "shared-memory publish failed in "
                                    "strict mode") from exc
                            degraded.append({"event": "degrade.shm",
                                             "task": "publish",
                                             "error": repr(exc)})
                    if shard_ctxs:
                        fn, process_pool = (_shard.run_family_descriptor,
                                            "shared")
                        args = [(shard_ctxs[name].descriptor(
                                    task, k, mode,
                                    self.options.heap_capacity,
                                    self.backend, strict,
                                    corner=self._corner_label(name)),)
                                for name, _analyzer, task in task_index]
            with _obs.span("stage", "families"):
                try:
                    packed = run_tasks(
                        fn, args,
                        executor=self.options.executor,
                        workers=self.resolved_workers,
                        task_timeout=self.options.task_timeout,
                        max_retries=0 if strict
                        else self.options.max_retries,
                        retry_backoff=self.options.retry_backoff,
                        fallback=not strict,
                        events=degraded,
                        process_pool=process_pool)
                except ReproError:
                    raise
                except Exception as exc:
                    raise ExecutionError(
                        "candidate generation failed"
                        + (" in strict mode" if strict else
                           " after exhausting every fallback")) from exc
                finally:
                    for ctx in shard_ctxs.values():
                        ctx.close()
        results: dict[str | None, list[TimingPath]] = {
            name: [] for name, _ in items}
        for (name, _analyzer, _task), (family, task_events) in zip(
                task_index, packed):
            results[name].extend(family)
            degraded.extend(task_events)
        if col is not None:
            # Scheduler events were counted by run_tasks as they
            # happened; the backend-ladder events travelled back from
            # the (possibly forked) tasks and are counted here.  Every
            # event is stamped with the window's trace id so exported
            # traces and degradation records correlate.
            for event in degraded:
                if event["event"] in ("degrade.batched",
                                      "degrade.backend"):
                    col.add(event["event"])
                event.setdefault("trace", col.trace_id)
        self.last_degraded = tuple(degraded)
        if degraded:
            summary = {}
            for event in degraded:
                summary[event["event"]] = summary.get(event["event"], 0) + 1
            warnings.warn(
                "CPPR query completed degraded ("
                + ", ".join(f"{name} x{count}"
                            for name, count in sorted(summary.items()))
                + "); the report is still exact",
                DegradedResultWarning, stacklevel=3)
        return results

    # ------------------------------------------------------------------
    # The headline query (Algorithm 1 line 6)
    # ------------------------------------------------------------------
    def top_paths(self, k: int, mode: AnalysisMode | str,
                  corner: str | None = None) -> list[TimingPath]:
        """The global top-``k`` post-CPPR critical paths, worst first.

        Each returned path's ``slack`` is the exact post-CPPR slack of
        Equation (2) and its ``credit`` the removed pessimism.

        With corners configured ``corner`` is required (one fused run
        computes *every* corner, so asking for the others afterwards is
        a cache hit); without corners it must stay ``None``.

        Results are memoized in a small keyed LRU (the pipeline's
        ``select`` artifact): repeating a ``(corner, mode, k)`` query —
        or asking for a smaller ``k`` in the same corner and mode, the
        ``worst_path`` / ``top_slacks`` / ``report`` after
        ``top_paths`` pattern — serves a prefix of a cached list
        instead of redoing the analysis (candidate generation and
        selection are deterministic, so the top-``k`` is a prefix of
        the top-``k'`` for ``k <= k'``).  Traffic is counted under
        ``select.cache.*``.  The cache is skipped whenever a collector
        is active, so profiled runs always measure real work.
        """
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        key = self._corner_key(corner)
        label = self._corner_label(key)
        col = _obs.ACTIVE
        if col is None:
            served = self._serve_cached(mode, k, label)
            if served is not None:
                return served
        _QUERIES.labels(corner=label, mode=mode.value).inc()
        return self._run_query(k, mode)[key]

    def top_paths_by_corner(
            self, k: int, mode: AnalysisMode | str
    ) -> dict[str, list[TimingPath]]:
        """Every corner's top-``k``, from ONE fused analysis run.

        Requires corners to be configured.  The returned dict preserves
        corner-set order; each list is bit-for-bit what a single-corner
        engine on that corner's realized design would return.
        """
        if not self._corner_analyzers:
            raise AnalysisError(
                "no corners configured; construct the engine with "
                "CpprOptions(corners=...) to use top_paths_by_corner")
        if k < 1:
            raise AnalysisError(f"k must be at least 1, got {k}")
        mode = AnalysisMode.coerce(mode)
        col = _obs.ACTIVE
        if col is None:
            served = {name: self._serve_cached(mode, k, name)
                      for name in self._corner_analyzers}
            if all(paths is not None for paths in served.values()):
                return served
        for name in self._corner_analyzers:
            _QUERIES.labels(corner=name, mode=mode.value).inc()
        return {name: paths for name, paths
                in self._run_query(k, mode).items()}

    def merged_worst(self, k: int, mode: AnalysisMode | str
                     ) -> list[tuple[str, TimingPath]]:
        """The ``k`` most critical paths across *all* corners.

        Merged-worst semantics (see ``docs/MCMM.md``): the union of
        the per-corner top-``k`` lists, ordered worst-first by
        ``(slack, pins, corner name)`` — the first two components are
        the select stage's own path order, the corner name breaks
        cross-corner ties deterministically.  Each entry is ``(corner
        name, path)``; the same physical path may appear once per
        corner that finds it critical, which is the sign-off-relevant
        reading (it must be fixed at every corner it fails in).
        """
        by_corner = self.top_paths_by_corner(k, mode)
        merged = [(name, path) for name, paths in by_corner.items()
                  for path in paths]
        merged.sort(key=lambda entry: (entry[1].key(), entry[0]))
        return merged[:k]

    def _run_query(self, k: int,
                   mode: AnalysisMode) -> dict[str | None,
                                               list[TimingPath]]:
        """Fused candidates + per-corner select; memoizes every corner."""
        col = _obs.ACTIVE
        started = time.perf_counter()
        items = dict(self._corner_items())
        with _obs.span("top_paths"):
            candidates = self._generate_candidates(k, mode)
            with _obs.span("stage", "select"):
                selected = {
                    key: select_top_paths(items[key], paths, k)
                    for key, paths in candidates.items()}
        if col is not None:
            _QUERY_SECONDS.labels(mode=mode.value).set(
                time.perf_counter() - started)
            self.last_trace_id = col.trace_id
            self.last_profile = col.profile().with_degraded(
                self.last_degraded).with_meta(self.profile_meta())
        for key, paths in selected.items():
            self._topk_cache.store(
                (self._corner_label(key), mode, k), tuple(paths))
        return selected

    def _serve_cached(self, mode: AnalysisMode, k: int,
                      corner: str) -> list[TimingPath] | None:
        """A cached ``(corner, mode, k' >= k)`` prefix, or ``None``."""
        best = None
        for entry_corner, entry_mode, entry_k in self._topk_cache.keys():
            if (entry_corner == corner and entry_mode == mode
                    and entry_k >= k):
                if best is None or entry_k < best:
                    best = entry_k
        if best is None:
            self._topk_cache.get((corner, mode, k))  # records the miss
            return None
        return list(self._topk_cache.get((corner, mode, best))[:k])

    def profiled_top_paths(self, k: int, mode: AnalysisMode | str,
                           corner: str | None = None
                           ) -> tuple[list[TimingPath], Profile]:
        """Run :meth:`top_paths` under a fresh collector.

        Returns ``(paths, profile)``; the profile is also stored in
        :attr:`last_profile`.  If a collector was already installed it
        is shadowed for the duration of this call (its totals do not
        include this run).
        """
        with collecting() as col:
            paths = self.top_paths(k, mode, corner=corner)
        return paths, (col.profile().with_degraded(self.last_degraded)
                       .with_meta(self.profile_meta()))

    def top_slacks(self, k: int, mode: AnalysisMode | str,
                   corner: str | None = None) -> list[float]:
        """Just the slack values of :meth:`top_paths` (ascending)."""
        return [path.slack
                for path in self.top_paths(k, mode, corner=corner)]

    def worst_path(self, mode: AnalysisMode | str,
                   corner: str | None = None) -> TimingPath | None:
        """The single most critical post-CPPR path, or ``None``."""
        paths = self.top_paths(1, mode, corner=corner)
        return paths[0] if paths else None

    def report(self, k: int, mode: AnalysisMode | str,
               title: str | None = None,
               corner: str | None = None) -> str:
        """The human-readable report of :meth:`top_paths`.

        Reuses the memoized result when :meth:`top_paths` already ran
        for this ``(corner, mode, k)`` (or a larger ``k``, same corner
        and mode).
        """
        from repro.cppr.report import format_path_report

        mode = AnalysisMode.coerce(mode)
        key = self._corner_key(corner)
        paths = self.top_paths(k, mode, corner=corner)
        if title is None:
            title = f"Top-{k} post-CPPR {mode.value} paths"
            if key is not None:
                title += f" [corner {key}]"
        analyzer = (self.analyzer if key is None
                    else self._corner_analyzers[key])
        return format_path_report(analyzer, paths, title=title)

    def merged_worst_report(self, k: int,
                            mode: AnalysisMode | str,
                            title: str | None = None) -> str:
        """The human-readable report of :meth:`merged_worst`."""
        from repro.cppr.report import format_merged_report

        mode = AnalysisMode.coerce(mode)
        entries = self.merged_worst(k, mode)
        if title is None:
            title = (f"Top-{k} post-CPPR {mode.value} paths "
                     f"(merged worst across corners)")
        return format_merged_report(self._corner_analyzers, entries,
                                    title=title)
