"""Human-readable path reports.

Formats :class:`~repro.cppr.types.TimingPath` objects the way timing
reports usually read: launch point, pin-by-pin trace, capture point, and
the slack decomposition (pre-CPPR slack, removed credit, post-CPPR
slack).
"""

from __future__ import annotations

from typing import Iterable

from repro.cppr.types import PathFamily, TimingPath
from repro.sta.timing import TimingAnalyzer

__all__ = ["format_merged_report", "format_path", "format_path_report"]


def _launch_description(analyzer: TimingAnalyzer, path: TimingPath) -> str:
    graph = analyzer.graph
    if path.launch_ff is not None:
        ff = graph.ffs[path.launch_ff]
        return f"launch  FF {ff.name} (clock pin {graph.pin_name(ff.ck_pin)})"
    return f"launch  primary input {graph.pin_name(path.launch_pin)}"


def _capture_description(analyzer: TimingAnalyzer, path: TimingPath) -> str:
    graph = analyzer.graph
    if path.capture_ff is not None:
        ff = graph.ffs[path.capture_ff]
        return (f"capture FF {ff.name} "
                f"(clock pin {graph.pin_name(ff.ck_pin)})")
    return f"capture primary output {graph.pin_name(path.capture_pin)}"


def format_path(analyzer: TimingAnalyzer, path: TimingPath,
                index: int | None = None) -> str:
    """Multi-line description of one path."""
    graph = analyzer.graph
    header = f"Path {index}: " if index is not None else "Path: "
    lines = [
        f"{header}{path.mode.value} "
        f"({'self-loop' if path.is_self_loop else path.family.value})",
        f"  {_launch_description(analyzer, path)}",
        f"  {_capture_description(analyzer, path)}",
        "  pins: " + " -> ".join(graph.pin_name(p) for p in path.pins),
        f"  pre-CPPR slack:  {path.pre_cppr_slack:+.4f}",
        f"  CPPR credit:     {path.credit:+.4f}",
        f"  post-CPPR slack: {path.slack:+.4f}",
    ]
    if path.family is PathFamily.LEVEL and path.level is not None:
        lines.insert(3, f"  common clock path ends at tree depth "
                        f"{path.level}")
    return "\n".join(lines)


def format_path_report(analyzer: TimingAnalyzer,
                       paths: Iterable[TimingPath],
                       title: str = "Post-CPPR critical paths") -> str:
    """A full report: title, summary line, and each path in rank order."""
    paths = list(paths)
    lines = [title, "=" * len(title),
             f"design: {analyzer.graph.name}   paths: {len(paths)}", ""]
    for rank, path in enumerate(paths, start=1):
        lines.append(format_path(analyzer, path, rank))
        lines.append("")
    return "\n".join(lines)


def format_merged_report(analyzers: dict[str, TimingAnalyzer],
                         entries: Iterable[tuple[str, TimingPath]],
                         title: str = "Post-CPPR critical paths "
                                      "(merged worst)") -> str:
    """A merged-worst multi-corner report.

    ``entries`` are ``(corner name, path)`` pairs in merged-worst
    order (see :meth:`~repro.cppr.engine.CpprEngine.merged_worst`);
    ``analyzers`` maps each corner name to its realized analyzer so
    pin names resolve against the right graph.  Each path block is
    prefixed with the corner it was found in.
    """
    entries = list(entries)
    names = ", ".join(analyzers)
    some = next(iter(analyzers.values()))
    lines = [title, "=" * len(title),
             f"design: {some.graph.name}   corners: {names}   "
             f"paths: {len(entries)}", ""]
    for rank, (corner, path) in enumerate(entries, start=1):
        lines.append(f"[corner {corner}]")
        lines.append(format_path(analyzers[corner], path, rank))
        lines.append("")
    return "\n".join(lines)
