"""Node grouping by clock-tree level (paper Figure 3).

When generating path candidates at level ``d`` the clock tree is cut
between levels ``d`` and ``d+1``; the subtrees hanging below the cut form
the groups.  A flip-flop whose clock pin has depth > ``d`` belongs to the
group identified by its ``f_{d+1}`` ancestor; flip-flops at depth <= ``d``
do not participate at this level (any pair involving them has a strictly
shallower LCA and is covered at that shallower level).

Requiring the launching and capturing groups to differ is exactly the
constraint ``depth(LCA) <= d`` of Definition 4, and automatically excludes
self-loop paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.clocktree import ClockTree

__all__ = ["LevelGrouping", "group_for_level"]


@dataclass(frozen=True, slots=True)
class LevelGrouping:
    """Per-flip-flop grouping data for one clock-tree level ``d``.

    Attributes
    ----------
    level:
        The level ``d``.
    group:
        ``group[ff]`` is the tree node id of ``f_{d+1}(ck(ff))``, or ``-1``
        when the flip-flop's clock pin is too shallow to participate.
    launch_offset:
        ``launch_offset[ff]`` is ``credit(f_d(ck(ff)))`` — the amount of
        pessimism above level ``d`` folded into the launch arrival so that
        paths are ranked by the d-pessimism-removed slack of Definition 3.
        ``0.0`` for non-participating flip-flops.
    """

    level: int
    group: list[int]
    launch_offset: list[float]

    def participates(self, ff_index: int) -> bool:
        return self.group[ff_index] >= 0

    def num_groups(self) -> int:
        return len({g for g in self.group if g >= 0})


def group_for_level(tree: ClockTree, level: int, num_ffs: int,
                    backend: str = "scalar") -> LevelGrouping:
    """Build the :class:`LevelGrouping` for clock-tree level ``level``.

    Costs ``O(#FF log D)`` via binary lifting; results are memoized on
    the (immutable) tree keyed by ``(level, backend)``, so repeated
    queries — every mode, every ``k``, every engine sharing the
    analyzer — reuse the same grouping columns.  ``backend="array"``
    answers the same ancestor/credit lookups for all leaves at once
    over the numpy lifting table (:mod:`repro.core.grouping`); the
    results are identical (the batched sweep pre-populates the
    ``"array"`` entries from its one-shot grouping matrix).
    """
    key = (level, backend)
    cached = tree._group_cache.get(key)
    if cached is not None:
        return cached
    if backend == "array":
        from repro.core.grouping import group_for_level_array
        result = group_for_level_array(tree, level, num_ffs)
    else:
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        group = [-1] * num_ffs
        offset = [0.0] * num_ffs
        for node in tree.leaves():
            ff = tree.ff_of_node[node]
            if tree.depth(node) <= level:
                continue
            group[ff] = tree.ancestor_at_depth(node, level + 1)
            offset[ff] = tree.credit(tree.ancestor_at_depth(node, level))
        result = LevelGrouping(level, group, offset)
    tree._group_cache[key] = result
    return result
