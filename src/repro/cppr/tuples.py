"""Dual arrival-time tuples (paper Table II).

At every pin the per-level propagation keeps two tuples:

* ``at(u)`` — the most pessimistic arrival overall, with the node it came
  from and the *group id* of the path's origin (the ``f_{d+1}`` ancestor
  of the launching flip-flop's clock pin), and
* ``at'(u)`` — the most pessimistic arrival whose group id differs from
  ``at(u)``'s, the "fallback" used when the capturing flip-flop shares
  ``at(u)``'s group.

Two tuples suffice because every query excludes exactly one group (the
capture group): if ``at(u)`` is excluded, the best of the rest is by
definition ``at'(u)``.

This module provides :class:`DualArrival`, a readable reference
implementation with the update rule spelled out.  The production
propagation (:mod:`repro.cppr.propagation`) stores the same six fields in
parallel arrays for speed; the test suite checks the two implementations
against each other and against brute-force path enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sta.modes import AnalysisMode

__all__ = ["ArrivalTuple", "DualArrival", "NO_GROUP", "NO_NODE"]

NO_NODE = -1
"""Sentinel ``from`` value for seed tuples with no predecessor pin."""

NO_GROUP = -1
"""Sentinel group id for ungrouped (self-loop / PI) propagation."""


@dataclass(frozen=True, slots=True)
class ArrivalTuple:
    """One (time, from, groupid) arrival record."""

    time: float
    from_pin: int
    group: int


class DualArrival:
    """Best and best-with-different-group arrival at one pin.

    The update rule maintains two invariants after any sequence of
    :meth:`offer` calls:

    1. ``best`` is the most pessimistic offered tuple;
    2. ``fallback`` is the most pessimistic offered tuple whose group
       differs from ``best.group``.

    Case analysis in :meth:`offer`:

    * same group as ``best`` and more pessimistic — replace ``best``
      (``fallback`` still excludes that same group);
    * same group, less pessimistic — discard (it can never serve a query,
      which only ever excludes ``best``'s group);
    * different group, more pessimistic than ``best`` — ``best`` demotes
      to ``fallback`` (it dominates everything outside the new group) and
      the candidate becomes ``best``;
    * different group otherwise — compete for ``fallback``.

    "More pessimistic" uses the shared cross-backend tie-breaking
    contract (see :mod:`repro.core`): candidates are ordered by time
    (later for setup, earlier for hold), then by smaller ``from``-pin
    id, then by smaller group id — so the final tuples are a
    deterministic, order-independent function of the offered set, and
    the scalar and array propagation backends agree exactly.
    """

    __slots__ = ("mode", "best", "fallback")

    def __init__(self, mode: AnalysisMode) -> None:
        self.mode = mode
        self.best: ArrivalTuple | None = None
        self.fallback: ArrivalTuple | None = None

    def _beats(self, candidate: ArrivalTuple,
               incumbent: ArrivalTuple) -> bool:
        """Lexicographic (time, from-pin, group) tie-breaking order."""
        if candidate.time != incumbent.time:
            return self.mode.prefer(candidate.time, incumbent.time)
        if candidate.from_pin != incumbent.from_pin:
            return candidate.from_pin < incumbent.from_pin
        return candidate.group < incumbent.group

    def offer(self, time: float, from_pin: int, group: int) -> None:
        """Consider a new arrival candidate."""
        candidate = ArrivalTuple(time, from_pin, group)
        if self.best is None:
            self.best = candidate
            return
        if group == self.best.group:
            if self._beats(candidate, self.best):
                self.best = candidate
            return
        if self._beats(candidate, self.best):
            self.fallback = self.best
            self.best = candidate
        elif (self.fallback is None
              or self._beats(candidate, self.fallback)):
            self.fallback = candidate

    def auto(self, excluded_group: int) -> ArrivalTuple | None:
        """``at_auto``: the best arrival whose group differs from
        ``excluded_group`` (paper Section III-D), or ``None``."""
        if self.best is None:
            return None
        if self.best.group != excluded_group:
            return self.best
        return self.fallback

    def offers(self) -> list[ArrivalTuple]:
        """The tuples this pin forwards to its fanout (both, if present)."""
        result = []
        if self.best is not None:
            result.append(self.best)
        if self.fallback is not None:
            result.append(self.fallback)
        return result
