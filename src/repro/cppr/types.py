"""Path datatypes shared by the CPPR engine, baselines, and reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sta.modes import AnalysisMode

__all__ = ["PathFamily", "TimingPath"]


class PathFamily(enum.Enum):
    """Which candidate family (paper Definitions 4-6) a path came from.

    ``LEVEL`` paths carry the clock-tree level ``d`` they were generated
    at; after selection that level equals the depth of the launch/capture
    LCA.  ``OUTPUT`` is this library's extension for paths captured at
    constrained primary outputs (no pessimism to remove, like ``PI``).
    """

    LEVEL = "level"
    SELF_LOOP = "self_loop"
    PRIMARY_INPUT = "primary_input"
    OUTPUT = "output"


@dataclass(frozen=True, slots=True)
class TimingPath:
    """One data path with its (possibly pessimism-removed) slack.

    Attributes
    ----------
    mode:
        Setup or hold.
    family:
        The candidate family that produced the path.
    slack:
        The family's ranking metric.  For paths returned by
        ``CpprEngine.top_paths`` this is the exact post-CPPR slack of
        Equation (2); for raw level-``d`` candidates it is the
        d-pessimism-removed slack of Definition 3.
    credit:
        The CPPR credit folded into ``slack``; zero for PI/OUTPUT paths.
        For selected paths this equals ``credit(LCA(lauFF, capFF))``.
    pins:
        The pin sequence from the launch point (FF Q pin or primary
        input) to the capture point (FF D pin or primary output).  Launch
        clock pins are not part of the sequence; use ``launch_ff``.
    launch_ff / capture_ff:
        Flip-flop indices, or ``None`` for primary input/output ends.
    level:
        For ``LEVEL`` candidates, the clock-tree level ``d``.
    """

    mode: AnalysisMode
    family: PathFamily
    slack: float
    credit: float
    pins: tuple[int, ...]
    launch_ff: int | None
    capture_ff: int | None
    level: int | None = None

    @property
    def launch_pin(self) -> int:
        return self.pins[0]

    @property
    def capture_pin(self) -> int:
        return self.pins[-1]

    @property
    def pre_cppr_slack(self) -> float:
        """Slack before pessimism removal: ``slack - credit``."""
        return self.slack - self.credit

    @property
    def is_self_loop(self) -> bool:
        return (self.launch_ff is not None
                and self.launch_ff == self.capture_ff)

    def key(self) -> tuple[float, tuple[int, ...]]:
        """Deterministic sort key: slack first, then the pin sequence."""
        return (self.slack, self.pins)
