"""Per-level path candidates (paper Definitions 3-4, Algorithms 2 and 5).

``paths_at_level(analyzer, d, k, mode)`` returns the top-``k`` paths whose
launching and capturing flip-flops lie in *different* groups when the
clock tree is cut below level ``d`` (equivalently: LCA depth <= ``d``),
ranked by the d-pessimism-removed slack
``slack(p, d) = slack(p) + credit(f_d(p.lauFF))``.

The launch credit is folded into the Q-pin seed arrival — subtracted for
setup (a *later* launch looks worse, so removing pessimism pulls the
launch earlier) and added for hold — exactly Algorithm 2 lines 4 and 6.
"""

from __future__ import annotations

from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.grouping import group_for_level
from repro.cppr.propagation import Seed, propagate_dual
from repro.cppr.types import PathFamily, TimingPath
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["paths_at_level"]


def paths_at_level(analyzer: TimingAnalyzer, level: int, k: int,
                   mode: AnalysisMode | str,
                   heap_capacity: int | None = None,
                   backend: str = "scalar",
                   batch=None) -> list[TimingPath]:
    """Top-``k`` level-``level`` path candidates, best slack first.

    Runs one grouped forward pass (``O(n)``) plus the deviation search
    (``O(k log k)`` heap work along paths), matching the per-level cost in
    the paper's complexity theorem.  ``backend`` selects the scalar or
    array substrate for the pass (see :mod:`repro.core`); results are
    identical.  When ``batch`` carries a pre-computed
    :class:`~repro.core.batched.BatchedLevels` sweep for this mode, the
    pass consumes its level slice instead of propagating — only the
    deviation search runs here, which is what lets the engine's
    executors still parallelize the searches.
    """
    with _obs.span("level", level):
        return _paths_at_level(analyzer, level, k, mode, heap_capacity,
                               backend, batch)


def _paths_at_level(analyzer: TimingAnalyzer, level: int, k: int,
                    mode: AnalysisMode | str, heap_capacity: int | None,
                    backend: str, batch=None) -> list[TimingPath]:
    mode = AnalysisMode.coerce(mode)
    graph = analyzer.graph
    tree = graph.clock_tree
    clock_period = analyzer.constraints.clock_period

    if batch is not None:
        grouping = batch.grouping(level)
        if not batch.num_seeds(level):
            # Mirrors the empty-seed early return below: a standalone
            # pass would not have propagated either.
            return []
        with _obs.span("propagate.slice"):
            arrays = batch.arrays(level)
    else:
        grouping = group_for_level(tree, level, graph.num_ffs, backend)

        seeds = []
        for ff in graph.ffs:
            if not grouping.participates(ff.index):
                continue
            node = ff.tree_node
            offset = grouping.launch_offset[ff.index]
            if mode.is_setup:
                q_at = tree.at_late(node) + ff.clk_to_q_late - offset
            else:
                q_at = tree.at_early(node) + ff.clk_to_q_early + offset
            seeds.append(Seed(ff.q_pin, q_at, ff.ck_pin,
                              grouping.group[ff.index]))

        if not seeds:
            return []
        with _obs.span("propagate"):
            arrays = propagate_dual(graph, mode, seeds, backend)

    capture_seeds = []
    for ff in graph.ffs:
        if not grouping.participates(ff.index):
            continue
        capture_group = grouping.group[ff.index]
        record = arrays.auto(ff.d_pin, capture_group)
        if record is None:
            continue
        if mode.is_setup:
            slack = (tree.at_early(ff.tree_node) + clock_period
                     - ff.t_setup - record[0])
        else:
            slack = record[0] - (tree.at_late(ff.tree_node) + ff.t_hold)
        capture_seeds.append(
            CaptureSeed(slack, ff.d_pin, capture_group, ff.index))

    with _obs.span("search"):
        results = run_topk(graph, arrays, capture_seeds, k, mode,
                           heap_capacity)

    paths = []
    for result in results:
        launch_ff = graph.ff_of_q_pin[result.pins[0]]
        paths.append(TimingPath(
            mode=mode, family=PathFamily.LEVEL, slack=result.slack,
            credit=grouping.launch_offset[launch_ff], pins=result.pins,
            launch_ff=launch_ff, capture_ff=result.capture_ff,
            level=level))
    _obs.add("candidates.produced.level", len(paths))
    return paths
