"""Final top-path selection (paper Algorithm 6).

Each candidate family's ranking metric equals the true post-CPPR slack
only for the paths the family is *responsible* for: level-``d`` candidates
whose launch/capture LCA depth is exactly ``d``, self-loop candidates that
really are self-loops, and all PI/OUTPUT candidates.  Everything else is a
duplicate covered by another family (with an over-credited, i.e. larger,
slack) and is discarded here — lines 5 and 8 of Algorithm 6.

The survivors are reduced to the global top-``k`` with a bounded best-k
heap; by the paper's correctness theorem the result is exactly the global
top-``k`` post-CPPR critical paths.
"""

from __future__ import annotations

from typing import Iterable

from repro.cppr.types import PathFamily, TimingPath
from repro.ds.bounded import TopK
from repro.obs import collector as _obs
from repro.sta.timing import TimingAnalyzer

__all__ = ["select_top_paths"]


def select_top_paths(analyzer: TimingAnalyzer,
                     candidates: Iterable[TimingPath],
                     k: int) -> list[TimingPath]:
    """Reduce all family candidates to the global top-``k`` paths.

    Returns paths sorted by post-CPPR slack (most critical first); ties
    are broken deterministically by the pin sequence.
    """
    with _obs.span("select"):
        return _select_top_paths(analyzer, candidates, k)


def _select_top_paths(analyzer: TimingAnalyzer,
                      candidates: Iterable[TimingPath],
                      k: int) -> list[TimingPath]:
    graph = analyzer.graph
    tree = graph.clock_tree
    col = _obs.ACTIVE
    counting = col is not None
    considered = 0
    filtered_level = 0
    filtered_self_loop = 0
    top = TopK(k)
    for path in candidates:
        if counting:
            considered += 1
        if path.family is PathFamily.LEVEL:
            launch = graph.ffs[path.launch_ff].tree_node
            capture = graph.ffs[path.capture_ff].tree_node
            if tree.lca_depth(launch, capture) != path.level:
                if counting:
                    filtered_level += 1
                continue
        elif path.family is PathFamily.SELF_LOOP:
            if path.launch_ff != path.capture_ff:
                if counting:
                    filtered_self_loop += 1
                continue
        top.offer(path.slack, path)
    selected = [path for _slack, path in top.sorted_items()]
    selected.sort(key=TimingPath.key)
    if counting:
        col.add("select.considered", considered)
        col.add("select.filtered.level", filtered_level)
        col.add("select.filtered.self_loop", filtered_self_loop)
        col.add("select.selected", len(selected))
    return selected
