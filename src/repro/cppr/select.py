"""Final top-path selection (paper Algorithm 6).

Each candidate family's ranking metric equals the true post-CPPR slack
only for the paths the family is *responsible* for: level-``d`` candidates
whose launch/capture LCA depth is exactly ``d``, self-loop candidates that
really are self-loops, and all PI/OUTPUT candidates.  Everything else is a
duplicate covered by another family (with an over-credited, i.e. larger,
slack) and is discarded here — lines 5 and 8 of Algorithm 6.

The survivors are reduced to the global top-``k`` with a bounded best-k
heap; by the paper's correctness theorem the result is exactly the global
top-``k`` post-CPPR critical paths.
"""

from __future__ import annotations

from typing import Iterable

from repro.cppr.types import PathFamily, TimingPath
from repro.ds.bounded import TopK
from repro.sta.timing import TimingAnalyzer

__all__ = ["select_top_paths"]


def select_top_paths(analyzer: TimingAnalyzer,
                     candidates: Iterable[TimingPath],
                     k: int) -> list[TimingPath]:
    """Reduce all family candidates to the global top-``k`` paths.

    Returns paths sorted by post-CPPR slack (most critical first); ties
    are broken deterministically by the pin sequence.
    """
    graph = analyzer.graph
    tree = graph.clock_tree
    top = TopK(k)
    for path in candidates:
        if path.family is PathFamily.LEVEL:
            launch = graph.ffs[path.launch_ff].tree_node
            capture = graph.ffs[path.capture_ff].tree_node
            if tree.lca_depth(launch, capture) != path.level:
                continue
        elif path.family is PathFamily.SELF_LOOP:
            if path.launch_ff != path.capture_ff:
                continue
        top.offer(path.slack, path)
    selected = [path for _slack, path in top.sorted_items()]
    selected.sort(key=TimingPath.key)
    return selected
