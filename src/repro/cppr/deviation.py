"""Deviation-edge top-k path search (paper Algorithm 5 and Figure 4).

A path is represented *implicitly* by its capture pin, its excluded group,
and a list of deviation edges relative to the arrival-tuple ``from``
pointers.  Popping the current best path from a min-max heap and pushing
every one-edge deviation of it enumerates paths in non-decreasing slack
order, because each deviation's cost — the arrival-time loss of entering a
node through a sub-optimal edge — is non-negative by construction of the
arrival tuples.

The heap is capacity-bounded at ``k`` (or the caller-provided capacity):
at most ``k`` paths are ever popped, so an entry worse than ``k`` stored
others can never be reported and is evicted via the min-max heap's
delete-max.  This yields the ``O(k)`` live-path bound behind the paper's
space-complexity theorem.

The same engine serves all candidate families; grouped passes supply
:class:`~repro.cppr.propagation.DualArrivalArrays` (whose ``auto`` honours
the excluded group) and ungrouped passes supply
:class:`~repro.cppr.propagation.SingleArrivalArrays`.

When the arrival arrays were produced by the array backend they carry a
:class:`~repro.core.propagate.FastDeviation` in their ``fast`` slot:
per-edge deviation costs precomputed in one vectorized pass over the
fanin CSR.  The expansion loop then reads a single precomputed cost per
edge — ``cost0[i]`` plus a per-pin adjustment when the popped tuple is
not the pin's primary one — and only falls back to an ``auto()`` query
for the rare edge whose source's primary group is the excluded group.
Both loops compute identical costs; the scalar loop is the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.circuit.graph import TimingGraph
from repro.cppr.tuples import NO_GROUP
from repro.ds.minmax_heap import MinMaxHeap
from repro.exceptions import AnalysisError
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode

__all__ = ["CaptureSeed", "SearchResult", "run_topk"]


class _ArrivalArrays(Protocol):
    def auto(self, pin: int,
             excluded_group: int) -> tuple[float, int, int] | None: ...


@dataclass(frozen=True, slots=True)
class CaptureSeed:
    """The best path into one capture point (Algorithm 5 lines 3-7).

    ``group`` is the capture group to exclude (``f_{d+1}`` of the capture
    clock pin) for level passes, or ``NO_GROUP`` for ungrouped families.
    """

    slack: float
    capture_pin: int
    group: int = NO_GROUP
    capture_ff: int | None = None


@dataclass(frozen=True, slots=True)
class _SearchState:
    """An implicit path on the heap: position + deviation list."""

    pos: int
    group: int
    devlist: tuple[tuple[int, int], ...]
    capture_pin: int
    capture_ff: int | None


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One reported path: its ranking slack and explicit pin sequence."""

    slack: float
    pins: tuple[int, ...]
    capture_pin: int
    capture_ff: int | None


def _materialize(graph: TimingGraph, arrays: _ArrivalArrays,
                 state: _SearchState) -> tuple[int, ...]:
    """Expand an implicit path into its explicit pin sequence.

    Walk backward from the capture pin following ``at_auto`` ``from``
    pointers, applying the deviation edges in order: deviations were
    appended sink-to-source, so the i-th deviation is the i-th departure
    from the pointer chain encountered on the walk.
    """
    pins: list[int] = []
    devlist = state.devlist
    dev_index = 0
    is_clock_pin = graph.is_clock_pin
    pin = state.capture_pin
    while True:
        pins.append(pin)
        if dev_index < len(devlist) and devlist[dev_index][1] == pin:
            pin = devlist[dev_index][0]
            dev_index += 1
            continue
        record = arrays.auto(pin, state.group)
        if record is None:  # pragma: no cover - defensive
            raise AnalysisError(
                f"broken arrival chain at pin {graph.pin_name(pin)!r}")
        from_pin = record[1]
        if from_pin < 0 or is_clock_pin[from_pin]:
            break
        pin = from_pin
    if dev_index != len(devlist):  # pragma: no cover - defensive
        raise AnalysisError("unconsumed deviation edges while expanding "
                            "a path; arrival tuples are inconsistent")
    pins.reverse()
    return tuple(pins)


def run_topk(graph: TimingGraph, arrays: _ArrivalArrays,
             seeds: list[CaptureSeed], k: int, mode: AnalysisMode,
             heap_capacity: int | None = None) -> list[SearchResult]:
    """Report up to ``k`` paths in non-decreasing ranking-slack order.

    ``seeds`` hold the best path per capture point; deviations generate
    every other path lazily.  ``heap_capacity`` defaults to ``k`` (always
    sufficient; see module docstring) but may be raised for the unbounded-
    heap ablation study.
    """
    if k < 1:
        raise AnalysisError(f"k must be at least 1, got {k}")
    capacity = heap_capacity if heap_capacity is not None else k
    if capacity < k:
        raise AnalysisError(
            f"heap capacity {capacity} is smaller than k={k}")
    is_setup = mode.is_setup
    is_clock_pin = graph.is_clock_pin
    fanin = graph.fanin

    # Array-backend fast path: precomputed per-edge deviation costs over
    # the fanin CSR (see module docstring).  ``None`` from the scalar
    # backend, in which case the reference loop below runs.
    fast = getattr(arrays, "fast", None)
    if fast is not None:
        fptr = fast.ptr
        fsrc = fast.src
        fdelay = fast.delay
        fcost0 = fast.cost0
        group0 = getattr(arrays, "group0", None)
        if group0 is not None:
            t0col = arrays.time0
            t1col = arrays.time1
        else:
            t0col = arrays.time
            t1col = None
        empty = mode.empty_time
        inf = float("inf")

    # Deviation-work counters: accumulated in locals and reported once at
    # the end so the disabled path costs one cheap local test per edge.
    col = _obs.ACTIVE
    counting = col is not None
    edges_explored = 0
    edges_generated = 0

    heap = MinMaxHeap()
    for seed in seeds:
        heap.push_bounded(
            seed.slack,
            _SearchState(seed.capture_pin, seed.group, (),
                         seed.capture_pin, seed.capture_ff),
            capacity)

    results: list[SearchResult] = []
    while heap and len(results) < k:
        slack, state = heap.pop_min()
        results.append(SearchResult(slack, _materialize(graph, arrays, state),
                                    state.capture_pin, state.capture_ff))
        if len(results) == k:
            break

        # Enumerate one-edge deviations along the path's backward walk
        # (Algorithm 5 lines 11-20).
        group = state.group
        devlist = state.devlist
        pin = state.pos
        while True:
            record = arrays.auto(pin, group)
            if record is None:  # pragma: no cover - defensive
                raise AnalysisError(
                    f"broken arrival chain at pin {graph.pin_name(pin)!r}")
            time_here, from_pin, _grp = record
            if fast is not None:
                # ``cost0[i] + adj`` equals the scalar cost below: the
                # adjustment re-bases the precomputed (primary-tuple)
                # cost onto the tuple actually popped at ``pin``.
                lo = fptr[pin]
                hi = fptr[pin + 1]
                if counting:
                    edges_explored += hi - lo
                adj = (time_here - t0col[pin] if is_setup
                       else t0col[pin] - time_here)
                for i in range(lo, hi):
                    w = fsrc[i]
                    if w == from_pin:
                        continue
                    if group0 is None or group0[w] != group:
                        cost = fcost0[i] + adj
                        if cost == inf:
                            continue
                    else:
                        t1 = t1col[w]
                        if t1 == empty:
                            continue
                        cost = (time_here - t1 - fdelay[i] if is_setup
                                else t1 + fdelay[i] - time_here)
                    if counting:
                        edges_generated += 1
                    heap.push_bounded(
                        slack + cost,
                        _SearchState(w, group, devlist + ((w, pin),),
                                     state.capture_pin, state.capture_ff),
                        capacity)
                if from_pin < 0 or is_clock_pin[from_pin]:
                    break
                pin = from_pin
                continue
            if counting:
                edges_explored += len(fanin[pin])
            for w, delay_early, delay_late in fanin[pin]:
                if w == from_pin:
                    continue
                w_record = arrays.auto(w, group)
                if w_record is None:
                    continue
                delay = delay_late if is_setup else delay_early
                if is_setup:
                    cost = time_here - w_record[0] - delay
                else:
                    cost = w_record[0] + delay - time_here
                if counting:
                    edges_generated += 1
                heap.push_bounded(
                    slack + cost,
                    _SearchState(w, group, devlist + ((w, pin),),
                                 state.capture_pin, state.capture_ff),
                    capacity)
            if from_pin < 0 or is_clock_pin[from_pin]:
                break
            pin = from_pin

    if counting:
        col.add("deviation.seeds", len(seeds))
        col.add("deviation.edges_explored", edges_explored)
        col.add("deviation.edges_generated", edges_generated)
        col.add("deviation.paths_reported", len(results))
        heap.flush_counters(col)

    return results
