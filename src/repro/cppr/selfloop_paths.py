"""Self-loop path candidates (paper Definition 5, Algorithm 3).

Paths whose launching and capturing flip-flop coincide have
``LCA(u, u) = u``, so their full launch-clock-path credit ``credit(u)`` is
removed.  The candidate set ranks *every* path by
``slack(p, depth(p.lauFF))`` — folding ``credit(lauFF)`` into each launch
seed — which over-credits non-self-loop paths (their real LCA is an
ancestor with no larger credit) and therefore never lets them displace a
true top-k self-loop path; ``selectTopPaths`` later discards them.

No grouping or fallback tuples are needed, so this pass uses the single-
tuple propagation.
"""

from __future__ import annotations

from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.propagation import Seed, propagate_single
from repro.cppr.types import PathFamily, TimingPath
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["self_loop_paths"]


def self_loop_paths(analyzer: TimingAnalyzer, k: int,
                    mode: AnalysisMode | str,
                    heap_capacity: int | None = None,
                    backend: str = "scalar",
                    arrays=None) -> list[TimingPath]:
    """Top-``k`` self-loop path candidates, best slack first.

    ``arrays`` optionally supplies this family's already-propagated
    :class:`~repro.cppr.propagation.SingleArrivalArrays` (an incremental
    session's maintained state), skipping the forward pass here — the
    same contract as the ``batch`` parameter of
    :func:`~repro.cppr.level_paths.paths_at_level`.
    """
    with _obs.span("self_loop"):
        return _self_loop_paths(analyzer, k, mode, heap_capacity, backend,
                                arrays)


def _self_loop_paths(analyzer: TimingAnalyzer, k: int,
                     mode: AnalysisMode | str,
                     heap_capacity: int | None,
                     backend: str, arrays=None) -> list[TimingPath]:
    mode = AnalysisMode.coerce(mode)
    graph = analyzer.graph
    tree = graph.clock_tree
    clock_period = analyzer.constraints.clock_period

    if arrays is None:
        seeds = []
        for ff in graph.ffs:
            node = ff.tree_node
            credit = tree.credit(node)
            if mode.is_setup:
                q_at = tree.at_late(node) + ff.clk_to_q_late - credit
            else:
                q_at = tree.at_early(node) + ff.clk_to_q_early + credit
            seeds.append(Seed(ff.q_pin, q_at, ff.ck_pin))

        if not seeds:
            return []
        with _obs.span("propagate"):
            arrays = propagate_single(graph, mode, seeds, backend)
    elif not graph.ffs:
        return []

    capture_seeds = []
    for ff in graph.ffs:
        record = arrays.best(ff.d_pin)
        if record is None:
            continue
        if mode.is_setup:
            slack = (tree.at_early(ff.tree_node) + clock_period
                     - ff.t_setup - record[0])
        else:
            slack = record[0] - (tree.at_late(ff.tree_node) + ff.t_hold)
        capture_seeds.append(
            CaptureSeed(slack, ff.d_pin, capture_ff=ff.index))

    with _obs.span("search"):
        results = run_topk(graph, arrays, capture_seeds, k, mode,
                           heap_capacity)

    paths = []
    for result in results:
        launch_ff = graph.ff_of_q_pin[result.pins[0]]
        paths.append(TimingPath(
            mode=mode, family=PathFamily.SELF_LOOP, slack=result.slack,
            credit=tree.credit(graph.ffs[launch_ff].tree_node),
            pins=result.pins, launch_ff=launch_ff,
            capture_ff=result.capture_ff))
    _obs.add("candidates.produced.self_loop", len(paths))
    return paths
