"""Targeted CPPR queries: one endpoint, or one launch/capture pair.

The engine answers the *global* top-k question; engineering-change-order
(ECO) flows usually ask narrower ones — "what are the worst paths into
this register?", "how bad is this specific transfer?".  Both are exact
and reuse the engine's propagation/deviation machinery.  Because the
capture point is fixed, the pair credit can be folded into each launch
seed directly (no node grouping needed) — the same per-endpoint trick
the pair-enumeration baseline applies to every endpoint at once.
"""

from __future__ import annotations

from repro.core import resolve_backend, safer_backend
from repro.cppr.pathutils import (build_timing_path, fanin_cone,
                                  launchers_in_cone,
                                  primary_inputs_in_cone)
from repro.cppr.deviation import CaptureSeed, run_topk
from repro.cppr.propagation import Seed, propagate_single
from repro.cppr.types import TimingPath
from repro.exceptions import AnalysisError, ExecutionError, ReproError
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["endpoint_paths", "pair_paths"]


def _propagate_resilient(graph, mode, seeds, backend: str, strict: bool):
    """Run ``propagate_single``, walking the backend ladder on failure.

    The targeted queries share the engine's degradation contract: a
    runtime fault inside the array substrate (numpy vanishing in a
    worker, an allocation failure) retries the propagation on the next
    safer backend — both compute bit-for-bit identical answers — unless
    ``strict`` asks for an :class:`ExecutionError` instead.  Modelled
    faults (``ReproError``) always propagate; they describe the input,
    not the execution strategy.
    """
    while True:
        try:
            return propagate_single(graph, mode, seeds, backend)
        except ReproError:
            raise
        except Exception as exc:
            if strict:
                raise ExecutionError(
                    f"single-source propagation failed in strict mode "
                    f"on backend {backend!r}") from exc
            safer = safer_backend(backend)
            if safer is None:
                raise ExecutionError(
                    f"single-source propagation failed on the last-"
                    f"resort backend {backend!r}") from exc
            col = _obs.ACTIVE
            if col is not None:
                col.add("degrade.backend")
            backend = safer


def _capture_slack(analyzer: TimingAnalyzer, capture, record,
                   mode: AnalysisMode) -> float:
    tree = analyzer.graph.clock_tree
    if mode.is_setup:
        return (tree.at_early(capture.tree_node)
                + analyzer.constraints.clock_period - capture.t_setup
                - record[0])
    return record[0] - (tree.at_late(capture.tree_node) + capture.t_hold)


def _launch_seed(analyzer: TimingAnalyzer, launch, credit: float,
                 mode: AnalysisMode) -> Seed:
    tree = analyzer.graph.clock_tree
    node = launch.tree_node
    if mode.is_setup:
        q_at = tree.at_late(node) + launch.clk_to_q_late - credit
    else:
        q_at = tree.at_early(node) + launch.clk_to_q_early + credit
    return Seed(launch.q_pin, q_at, launch.ck_pin)


def _resolve_ff(analyzer: TimingAnalyzer, ff: int | str):
    graph = analyzer.graph
    try:
        if isinstance(ff, str):
            return graph.ff_by_name(ff)
        return graph.ffs[ff]
    except (KeyError, IndexError):
        raise AnalysisError(f"unknown flip-flop {ff!r}") from None


def endpoint_paths(analyzer: TimingAnalyzer, capture_ff: int | str,
                   k: int, mode: AnalysisMode | str,
                   include_primary_inputs: bool = True,
                   backend: str = "auto",
                   strict: bool = False) -> list[TimingPath]:
    """Top-``k`` post-CPPR paths captured by one flip-flop, worst first.

    ``capture_ff`` is a flip-flop index or name.  Costs one cone-limited
    propagation plus the deviation search — exactly the per-endpoint unit
    of work the pair-enumeration baseline pays ``#FF`` times.
    """
    mode = AnalysisMode.coerce(mode)
    backend = resolve_backend(backend)
    graph = analyzer.graph
    capture = _resolve_ff(analyzer, capture_ff)
    if k < 1:
        raise AnalysisError(f"k must be at least 1, got {k}")

    tree = graph.clock_tree
    cone = fanin_cone(graph, capture.d_pin)
    seeds = []
    for launch_index in launchers_in_cone(graph, cone):
        launch = graph.ffs[launch_index]
        credit = tree.pair_credit(launch.tree_node, capture.tree_node)
        seeds.append(_launch_seed(analyzer, launch, credit, mode))
    if include_primary_inputs:
        for pi_index in primary_inputs_in_cone(graph, cone):
            pi = graph.primary_inputs[pi_index]
            seeds.append(Seed(pi.pin, pi.at_late if mode.is_setup
                              else pi.at_early))
    if not seeds:
        return []

    arrays = _propagate_resilient(graph, mode, seeds, backend, strict)
    record = arrays.best(capture.d_pin)
    if record is None:
        return []
    slack = _capture_slack(analyzer, capture, record, mode)
    results = run_topk(graph, arrays,
                       [CaptureSeed(slack, capture.d_pin,
                                    capture_ff=capture.index)],
                       k, mode)
    return [build_timing_path(analyzer, r.pins, mode, r.slack)
            for r in results]


def pair_paths(analyzer: TimingAnalyzer, launch_ff: int | str,
               capture_ff: int | str, k: int,
               mode: AnalysisMode | str,
               backend: str = "auto",
               strict: bool = False) -> list[TimingPath]:
    """Top-``k`` post-CPPR paths for one specific launch/capture pair.

    Returns an empty list when no data path connects the pair.
    """
    mode = AnalysisMode.coerce(mode)
    backend = resolve_backend(backend)
    graph = analyzer.graph
    launch = _resolve_ff(analyzer, launch_ff)
    capture = _resolve_ff(analyzer, capture_ff)
    if k < 1:
        raise AnalysisError(f"k must be at least 1, got {k}")

    tree = graph.clock_tree
    credit = tree.pair_credit(launch.tree_node, capture.tree_node)
    arrays = _propagate_resilient(
        graph, mode, [_launch_seed(analyzer, launch, credit, mode)],
        backend, strict)
    record = arrays.best(capture.d_pin)
    if record is None:
        return []
    slack = _capture_slack(analyzer, capture, record, mode)
    results = run_topk(graph, arrays,
                       [CaptureSeed(slack, capture.d_pin,
                                    capture_ff=capture.index)],
                       k, mode)
    return [build_timing_path(analyzer, r.pins, mode, r.slack)
            for r in results]
