"""Common Path Pessimism Removal — the paper's core algorithm.

The public entry point is :class:`~repro.cppr.engine.CpprEngine`, which
implements the paper's Algorithm 1: per-LCA-level path-candidate
generation (Algorithms 2 and 5), self-loop candidates (Algorithm 3),
primary-input candidates (Algorithm 4), and the final top-path selection
(Algorithm 6), optionally parallelized across the independent clock-tree
levels.

Submodules:

* :mod:`~repro.cppr.types` — path and candidate datatypes.
* :mod:`~repro.cppr.tuples` — the dual arrival-time tuples of Table II.
* :mod:`~repro.cppr.grouping` — node grouping by ``f_{d+1}`` (Figure 3).
* :mod:`~repro.cppr.propagation` — forward passes over the data DAG.
* :mod:`~repro.cppr.deviation` — deviation-edge top-k search (Figure 4).
* :mod:`~repro.cppr.level_paths` / :mod:`~repro.cppr.selfloop_paths` /
  :mod:`~repro.cppr.pi_paths` — the three candidate families.
* :mod:`~repro.cppr.select` — Algorithm 6.
* :mod:`~repro.cppr.engine` / :mod:`~repro.cppr.parallel` — orchestration.
"""

from repro.cppr.engine import CpprEngine, CpprOptions
from repro.cppr.queries import endpoint_paths, pair_paths
from repro.cppr.report import format_path, format_path_report
from repro.cppr.types import PathFamily, TimingPath

__all__ = [
    "CpprEngine",
    "CpprOptions",
    "PathFamily",
    "TimingPath",
    "endpoint_paths",
    "format_path",
    "format_path_report",
    "pair_paths",
]
