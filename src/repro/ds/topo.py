"""Topological ordering of the pin-level timing DAG.

Every arrival-time propagation in the paper (Algorithms 2, 3 and 4 all say
"for circuit pin u in topological order") runs over a fixed topological
order of the data graph.  The order is computed once per circuit and shared
by every per-level pass, so the cost is amortized away.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["CycleError", "topological_order", "longest_path_levels"]


class CycleError(ValueError):
    """The graph contains a directed cycle; carries a sample cycle."""

    def __init__(self, cycle: list[int]) -> None:
        super().__init__(f"graph contains a cycle through nodes {cycle}")
        self.cycle = cycle


def topological_order(num_nodes: int,
                      fanout: Sequence[Sequence[int]]) -> list[int]:
    """Return a topological order of ``0..num_nodes-1`` (Kahn's algorithm).

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    fanout:
        ``fanout[u]`` lists the successors of ``u``.

    Raises
    ------
    CycleError
        When the graph has a directed cycle; the exception carries one
        offending cycle to make netlist debugging possible.
    """
    indegree = [0] * num_nodes
    for u in range(num_nodes):
        for v in fanout[u]:
            indegree[v] += 1
    frontier = [u for u in range(num_nodes) if indegree[u] == 0]
    order: list[int] = []
    while frontier:
        u = frontier.pop()
        order.append(u)
        for v in fanout[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                frontier.append(v)
    if len(order) != num_nodes:
        raise CycleError(_find_cycle(num_nodes, fanout, indegree))
    return order


def _find_cycle(num_nodes: int, fanout: Sequence[Sequence[int]],
                indegree: Sequence[int]) -> list[int]:
    """Extract one cycle from the subgraph of nodes with indegree > 0."""
    in_cycle_region = [indegree[u] > 0 for u in range(num_nodes)]
    start = next(u for u in range(num_nodes) if in_cycle_region[u])
    seen: dict[int, int] = {}
    path: list[int] = []
    u = start
    while u not in seen:
        seen[u] = len(path)
        path.append(u)
        u = next(v for v in fanout[u] if in_cycle_region[v])
    return path[seen[u]:]


def longest_path_levels(num_nodes: int,
                        fanout: Sequence[Sequence[int]],
                        order: Sequence[int] | None = None) -> list[int]:
    """Assign each node its longest-path level from any source.

    Levelization is used by the workload generator to report combinational
    depth statistics and by the reports module to describe path topology.
    """
    if order is None:
        order = topological_order(num_nodes, fanout)
    levels = [0] * num_nodes
    for u in order:
        for v in fanout[u]:
            if levels[u] + 1 > levels[v]:
                levels[v] = levels[u] + 1
    return levels
