"""Core data structures used by the CPPR engine and its substrates.

This package contains from-scratch implementations of the data structures
the paper relies on:

* :class:`~repro.ds.minmax_heap.MinMaxHeap` — a double-ended priority queue
  used by Algorithms 5 and 6 to generate and select paths while keeping the
  live path set bounded by ``k`` (the paper's ``O(T(n+k)+kp)`` space bound).
* :class:`~repro.ds.binary_lifting.AncestorTable` — binary-lifting ancestor
  and LCA queries over the clock tree (``f_d(u)`` and ``LCA(u, v)`` from the
  paper's Table I).
* :mod:`~repro.ds.topo` — topological ordering of the pin-level DAG, which
  drives every arrival-time propagation.
* :class:`~repro.ds.bounded.TopK` — a bounded best-``k`` collector used by
  the baseline timers and by ``selectTopPaths``.
"""

from repro.ds.binary_lifting import AncestorTable
from repro.ds.bounded import TopK
from repro.ds.minmax_heap import MinMaxHeap
from repro.ds.topo import CycleError, longest_path_levels, topological_order

__all__ = [
    "AncestorTable",
    "CycleError",
    "MinMaxHeap",
    "TopK",
    "longest_path_levels",
    "topological_order",
]
