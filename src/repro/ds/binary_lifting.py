"""Binary-lifting ancestor tables for rooted trees.

The CPPR algorithm constantly asks two questions about the clock tree
(paper Table I):

* ``f_d(u)`` — the ancestor of node ``u`` at depth ``d`` (used for node
  grouping and for the per-level credit offsets), and
* ``LCA(u, v)`` — the lowest common ancestor of two clock pins (used by
  ``selectTopPaths`` to keep only paths whose pessimism was removed
  exactly).

Both are answered in ``O(log D)`` after an ``O(n log D)`` preprocessing
pass over the parent array, where ``D`` is the tree depth.  ``D`` is tiny
compared to the number of flip-flops (the whole point of the paper), so
these tables are effectively free.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["AncestorTable"]


class AncestorTable:
    """Ancestor/LCA queries over a forest given as a parent array.

    Parameters
    ----------
    parents:
        ``parents[v]`` is the parent of node ``v`` or ``-1`` for a root.
        Nodes are integers ``0..len(parents)-1``.

    Raises
    ------
    ValueError
        If the parent array contains a cycle or an out-of-range index.
    """

    __slots__ = ("_parents", "_depths", "_up", "_log")

    def __init__(self, parents: Sequence[int]) -> None:
        n = len(parents)
        self._parents = list(parents)
        for v, p in enumerate(self._parents):
            if p != -1 and not 0 <= p < n:
                raise ValueError(f"parent of node {v} out of range: {p}")
        self._depths = self._compute_depths()
        max_depth = max(self._depths, default=0)
        self._log = max(1, max_depth.bit_length())
        self._up = self._build_table()

    def _compute_depths(self) -> list[int]:
        n = len(self._parents)
        depths = [-1] * n
        for start in range(n):
            if depths[start] != -1:
                continue
            chain = []
            v = start
            while v != -1 and depths[v] == -1:
                chain.append(v)
                depths[v] = -2  # mark as being visited
                v = self._parents[v]
            if v != -1 and depths[v] == -2:
                raise ValueError(f"cycle detected through node {v}")
            base = 0 if v == -1 else depths[v] + 1
            for offset, node in enumerate(reversed(chain)):
                depths[node] = base + offset
        return depths

    def _build_table(self) -> list[list[int]]:
        up = [list(self._parents)]
        for level in range(1, self._log):
            prev = up[level - 1]
            up.append([prev[prev[v]] if prev[v] != -1 else -1
                       for v in range(len(prev))])
        return up

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._parents)

    def depth(self, node: int) -> int:
        """Depth of ``node``; roots have depth 0."""
        return self._depths[node]

    def parent(self, node: int) -> int:
        """Parent of ``node`` or ``-1`` for a root."""
        return self._parents[node]

    def kth_ancestor(self, node: int, k: int) -> int:
        """The ancestor ``k`` edges above ``node``, or ``-1`` if none."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        v = node
        level = 0
        while k and v != -1:
            if k & 1:
                v = self._up[level][v]
            k >>= 1
            level += 1
            if level >= self._log and k:
                return -1
        return v

    def ancestor_at_depth(self, node: int, depth: int) -> int:
        """``f_d(u)``: the ancestor of ``node`` at exactly ``depth``.

        Returns ``-1`` when ``depth`` exceeds the node's own depth.
        """
        delta = self._depths[node] - depth
        if delta < 0:
            return -1
        return self.kth_ancestor(node, delta)

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``.

        Returns ``-1`` when the nodes live in different trees of a forest.
        """
        if self._depths[u] < self._depths[v]:
            u, v = v, u
        u = self.kth_ancestor(u, self._depths[u] - self._depths[v])
        if u == v:
            return u
        for level in range(self._log - 1, -1, -1):
            if self._up[level][u] != self._up[level][v]:
                u = self._up[level][u]
                v = self._up[level][v]
        return self._parents[u]

    def lca_depth(self, u: int, v: int) -> int:
        """Depth of ``LCA(u, v)``; ``-1`` when the nodes are unrelated."""
        ancestor = self.lca(u, v)
        return -1 if ancestor == -1 else self._depths[ancestor]

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True when ``ancestor`` lies on the root path of ``node``."""
        return self.ancestor_at_depth(node, self._depths[ancestor]) == ancestor
