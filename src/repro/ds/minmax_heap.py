"""A min-max heap: a double-ended priority queue in one array.

The CPPR top-``k`` path generation (paper Algorithm 5) repeatedly pops the
path with the *smallest* slack while pushing deviated paths back.  Because
only ``k`` paths will ever be reported, any stored path that is worse than
``k`` other stored paths can be discarded; doing so requires a fast
*delete-max* next to the usual *delete-min*.  A min-max heap (Atkinson,
Sack, Santoro and Strothotte, 1986) provides both in ``O(log n)`` with no
auxiliary structures, which is what keeps the engine's live path set — and
therefore its memory — bounded by ``O(k)`` per level.

Entries are ``(key, payload)`` pairs ordered by ``key`` only; ties are broken
by insertion order so payloads never need to be comparable.

Mutations tally plain integer attributes (:attr:`~MinMaxHeap.pushes`,
:attr:`~MinMaxHeap.pop_mins`, :attr:`~MinMaxHeap.pop_maxes`,
:attr:`~MinMaxHeap.evictions`, :attr:`~MinMaxHeap.rejections` — an
eviction also counts as one ``pop_max`` plus one ``push`` because it is
implemented with those primitives).  The heap deliberately does *not*
talk to :mod:`repro.obs` itself: these are the hottest mutation paths
in the engine, and a per-event collector call costs several percent of
total runtime when armed.  Owners that want the ``heap.push``-style
counters flush the tallies once per search via
:meth:`flush_counters` — same totals, O(1) collector traffic.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = ["MinMaxHeap"]


def _is_min_level(index: int) -> bool:
    """Return True when heap slot ``index`` lies on a min (even) level."""
    level = (index + 1).bit_length() - 1
    return level % 2 == 0


class MinMaxHeap:
    """Double-ended priority queue keyed by a totally ordered ``key``.

    Supports ``push``, ``pop_min``, ``pop_max``, ``peek_min``, ``peek_max``
    in logarithmic time, plus :meth:`push_bounded` which maintains a fixed
    capacity by evicting the current maximum.

    Example::

        heap = MinMaxHeap()
        heap.push(3.0, "c")
        heap.push(1.0, "a")
        heap.push(2.0, "b")
        assert heap.pop_min() == (1.0, "a")
        assert heap.pop_max() == (3.0, "c")
    """

    __slots__ = ("_entries", "_counter", "pushes", "pop_mins",
                 "pop_maxes", "evictions", "rejections")

    def __init__(self, items: Iterable[tuple[float, Any]] = ()) -> None:
        self._entries: list[tuple[float, int, Any]] = []
        self._counter = 0
        self.pushes = 0
        self.pop_mins = 0
        self.pop_maxes = 0
        self.evictions = 0
        self.rejections = 0
        for key, payload in items:
            self.push(key, payload)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[tuple[float, Any]]:
        """Iterate over ``(key, payload)`` pairs in arbitrary heap order."""
        return ((key, payload) for key, _seq, payload in self._entries)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def peek_min(self) -> tuple[float, Any]:
        """Return the smallest ``(key, payload)`` without removing it."""
        if not self._entries:
            raise IndexError("peek_min on empty MinMaxHeap")
        key, _seq, payload = self._entries[0]
        return key, payload

    def peek_max(self) -> tuple[float, Any]:
        """Return the largest ``(key, payload)`` without removing it."""
        if not self._entries:
            raise IndexError("peek_max on empty MinMaxHeap")
        key, _seq, payload = self._entries[self._max_index()]
        return key, payload

    def min_key(self) -> float:
        """Return the smallest key. Raises ``IndexError`` when empty."""
        return self.peek_min()[0]

    def max_key(self) -> float:
        """Return the largest key. Raises ``IndexError`` when empty."""
        return self.peek_max()[0]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def push(self, key: float, payload: Any = None) -> None:
        """Insert ``payload`` with priority ``key``."""
        self.pushes += 1
        self._entries.append((key, self._counter, payload))
        self._counter += 1
        self._bubble_up(len(self._entries) - 1)

    def push_bounded(self, key: float, payload: Any, capacity: int) -> bool:
        """Insert while keeping at most ``capacity`` entries.

        When the heap is full and ``key`` is not smaller than the current
        maximum, the new entry is rejected; otherwise the maximum is evicted
        to make room.  Returns ``True`` when the entry was stored.

        This is the operation that bounds Algorithm 5's live path set: only
        paths that can still rank among the best ``capacity`` slacks are
        retained.
        """
        if capacity <= 0:
            return False
        if len(self._entries) < capacity:
            self.push(key, payload)
            return True
        if key >= self.max_key():
            self.rejections += 1
            return False
        self.evictions += 1
        self.pop_max()
        self.push(key, payload)
        return True

    def pop_min(self) -> tuple[float, Any]:
        """Remove and return the smallest ``(key, payload)``."""
        if not self._entries:
            raise IndexError("pop_min on empty MinMaxHeap")
        self.pop_mins += 1
        entry = self._entries[0]
        self._remove_at(0)
        return entry[0], entry[2]

    def pop_max(self) -> tuple[float, Any]:
        """Remove and return the largest ``(key, payload)``."""
        if not self._entries:
            raise IndexError("pop_max on empty MinMaxHeap")
        self.pop_maxes += 1
        index = self._max_index()
        entry = self._entries[index]
        self._remove_at(index)
        return entry[0], entry[2]

    def drain_sorted(self) -> list[tuple[float, Any]]:
        """Remove everything, returning ``(key, payload)`` pairs ascending."""
        result = []
        while self._entries:
            result.append(self.pop_min())
        return result

    def flush_counters(self, col) -> None:
        """Drain the mutation tallies into an obs collector.

        Emits the accumulated ``heap.push`` / ``heap.pop_min`` /
        ``heap.pop_max`` / ``heap.evict`` / ``heap.reject`` counters
        (zero tallies are skipped so untouched operations never mint a
        counter name) and resets the tallies, so flushing twice cannot
        double-count.
        """
        for name, count in (("heap.push", self.pushes),
                            ("heap.pop_min", self.pop_mins),
                            ("heap.pop_max", self.pop_maxes),
                            ("heap.evict", self.evictions),
                            ("heap.reject", self.rejections)):
            if count:
                col.add(name, count)
        self.pushes = 0
        self.pop_mins = 0
        self.pop_maxes = 0
        self.evictions = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _max_index(self) -> int:
        n = len(self._entries)
        if n == 1:
            return 0
        if n == 2:
            return 1
        return 1 if self._entries[1][:2] > self._entries[2][:2] else 2

    def _remove_at(self, index: int) -> None:
        last = self._entries.pop()
        if index < len(self._entries):
            self._entries[index] = last
            self._trickle_down(index)

    def _bubble_up(self, index: int) -> None:
        if index == 0:
            return
        entries = self._entries
        parent = (index - 1) // 2
        if _is_min_level(index):
            if entries[index][:2] > entries[parent][:2]:
                entries[index], entries[parent] = entries[parent], entries[index]
                self._bubble_up_grand(parent, is_min=False)
            else:
                self._bubble_up_grand(index, is_min=True)
        else:
            if entries[index][:2] < entries[parent][:2]:
                entries[index], entries[parent] = entries[parent], entries[index]
                self._bubble_up_grand(parent, is_min=True)
            else:
                self._bubble_up_grand(index, is_min=False)

    def _bubble_up_grand(self, index: int, *, is_min: bool) -> None:
        entries = self._entries
        while index > 2:
            grand = ((index - 1) // 2 - 1) // 2
            if is_min:
                if entries[index][:2] < entries[grand][:2]:
                    entries[index], entries[grand] = entries[grand], entries[index]
                    index = grand
                else:
                    break
            else:
                if entries[index][:2] > entries[grand][:2]:
                    entries[index], entries[grand] = entries[grand], entries[index]
                    index = grand
                else:
                    break

    def _trickle_down(self, index: int) -> None:
        if _is_min_level(index):
            self._trickle_down_dir(index, is_min=True)
        else:
            self._trickle_down_dir(index, is_min=False)

    def _descendants(self, index: int) -> list[int]:
        n = len(self._entries)
        children = [c for c in (2 * index + 1, 2 * index + 2) if c < n]
        grand = []
        for child in children:
            grand.extend(
                g for g in (2 * child + 1, 2 * child + 2) if g < n)
        return children + grand

    def _trickle_down_dir(self, index: int, *, is_min: bool) -> None:
        entries = self._entries
        while True:
            descendants = self._descendants(index)
            if not descendants:
                return
            if is_min:
                best = min(descendants, key=lambda i: entries[i][:2])
                if entries[best][:2] >= entries[index][:2]:
                    return
            else:
                best = max(descendants, key=lambda i: entries[i][:2])
                if entries[best][:2] <= entries[index][:2]:
                    return
            entries[index], entries[best] = entries[best], entries[index]
            if best <= 2 * index + 2:
                return  # Swapped with a direct child: done.
            parent = (best - 1) // 2
            if is_min:
                if entries[best][:2] > entries[parent][:2]:
                    entries[best], entries[parent] = (
                        entries[parent], entries[best])
            else:
                if entries[best][:2] < entries[parent][:2]:
                    entries[best], entries[parent] = (
                        entries[parent], entries[best])
            index = best

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the min-max heap ordering property for every node.

        Every node on a min level must be <= all its descendants and every
        node on a max level must be >= all its descendants.  Intended for
        tests; raises ``AssertionError`` on violation.
        """
        entries = self._entries
        for index in range(len(entries)):
            for descendant in self._descendants(index):
                if _is_min_level(index):
                    assert entries[index][:2] <= entries[descendant][:2], (
                        f"min-level violation at {index} vs {descendant}")
                else:
                    assert entries[index][:2] >= entries[descendant][:2], (
                        f"max-level violation at {index} vs {descendant}")
