"""A bounded best-``k`` collector.

Used wherever the library accumulates candidates but only ever reports the
best ``k`` of them: the baseline timers' per-endpoint merges and the final
``selectTopPaths`` reduction.  Internally a max-heap of size at most ``k``:
an item worse than the current k-th best is rejected in ``O(1)``.

With a :mod:`repro.obs` collector active, every ``offer`` emits
``topk.offer`` plus one of ``topk.store`` (free slot), ``topk.evict``
(displaced the current k-th best) or ``topk.reject``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterable, Iterator

from repro.obs import collector as _obs

__all__ = ["TopK"]


class TopK:
    """Collect items keyed by a float, retaining only the ``k`` smallest.

    Example::

        top = TopK(2)
        for key, item in [(3.0, "c"), (1.0, "a"), (2.0, "b")]:
            top.offer(key, item)
        assert [k for k, _ in top.sorted_items()] == [1.0, 2.0]
    """

    __slots__ = ("_capacity", "_heap", "_counter")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        # Max-heap via negated keys; counter breaks ties without comparing
        # payloads.
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def offer(self, key: float, item: Any = None) -> bool:
        """Consider ``item``; returns True when it was retained."""
        col = _obs.ACTIVE
        if col is not None:
            col.add("topk.offer")
        if self._capacity == 0:
            return False
        entry = (-key, next(self._counter), item)
        if len(self._heap) < self._capacity:
            heapq.heappush(self._heap, entry)
            if col is not None:
                col.add("topk.store")
            return True
        if -key <= self._heap[0][0]:
            if col is not None:
                col.add("topk.reject")
            return False
        heapq.heapreplace(self._heap, entry)
        if col is not None:
            col.add("topk.evict")
        return True

    def offer_many(self, items: Iterable[tuple[float, Any]]) -> int:
        """Offer each ``(key, item)`` pair; returns how many were retained."""
        return sum(1 for key, item in items if self.offer(key, item))

    def threshold(self) -> float:
        """Current k-th best key, or ``+inf`` while not yet full.

        Any future item with key >= threshold cannot enter the collection;
        the branch-and-bound baseline uses this as its pruning bound.
        """
        if len(self._heap) < self._capacity:
            return float("inf")
        return -self._heap[0][0]

    def would_accept(self, key: float) -> bool:
        """True when an item with ``key`` would currently be retained."""
        return self._capacity > 0 and (len(self._heap) < self._capacity
                                       or key < -self._heap[0][0])

    def sorted_items(self) -> list[tuple[float, Any]]:
        """Return retained ``(key, item)`` pairs, ascending by key."""
        return [(-neg, item)
                for neg, _seq, item in sorted(self._heap, reverse=True)]

    def __iter__(self) -> Iterator[tuple[float, Any]]:
        return iter(self.sorted_items())
