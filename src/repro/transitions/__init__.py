"""Rise/fall transition analysis via graph expansion.

Industrial STA distinguishes rising and falling signal transitions: a
cell's logic function decides which input transition causes which output
transition (*unateness*), and delays/constraints differ per transition.
The paper's algorithms are transition-agnostic, and this layer keeps
them that way: a :class:`~repro.transitions.netlist.RiseFallNetlist`
describes the design at the cell level (using
:mod:`repro.library` cells) and *expands* it into an ordinary
:class:`~repro.circuit.graph.TimingGraph` with two pins per logical
signal — one per transition — wired according to each cell's unateness.
Every engine, baseline, query, and report then works unchanged, and all
the correctness guarantees carry over verbatim.

Expansion rules:

* gate ``g`` becomes ``g@r`` / ``g@f`` (one per output transition), each
  with one input slot per (input, required input transition) arc;
* flip-flop ``x`` becomes ``x@r`` / ``x@f`` sharing a pseudo clock
  buffer ``x@ck`` that carries the physical leaf's clock delays, so the
  two expanded flip-flops' LCA is the physical clock pin and all CPPR
  credits are preserved exactly (cross-transition feedback through the
  same register gets the full self-loop credit);
* primary inputs/outputs split into ``p@r`` / ``p@f``;
* nets are non-inverting: they connect equal transitions.
"""

from repro.transitions.netlist import RiseFallDesign, RiseFallNetlist
from repro.transitions.random_rf import (RandomRiseFallSpec,
                                         random_rise_fall_design)

__all__ = [
    "RandomRiseFallSpec",
    "RiseFallDesign",
    "RiseFallNetlist",
    "random_rise_fall_design",
]
