"""The rise/fall netlist builder and its expansion to a timing graph."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.circuit.netlist import Netlist
from repro.exceptions import CircuitStructureError
from repro.library.cells import FlipFlopCell, LibraryCell, \
    StandardCellLibrary

__all__ = ["RiseFallDesign", "RiseFallNetlist"]

RISE = "r"
FALL = "f"
TRANSITIONS = (RISE, FALL)

_TRANSITION_LABEL = {RISE: "rise", FALL: "fall"}


def mangle(instance: str, transition: str) -> str:
    """Expanded entity name for one transition of a logical instance."""
    return f"{instance}@{transition}"


def unmangle(name: str) -> tuple[str, str | None]:
    """Split an expanded name into (logical instance, transition)."""
    base, sep, transition = name.rpartition("@")
    if sep and transition in TRANSITIONS + ("ck",):
        return base, transition
    return name, None


@dataclass(slots=True)
class _GateInstance:
    cell: LibraryCell
    # (input index, input transition) -> list of expanded input pin names
    input_slots: dict[tuple[int, str], list[str]]


class RiseFallDesign:
    """An expanded design: the graph plus logical<->expanded naming."""

    def __init__(self, graph: TimingGraph) -> None:
        self.graph = graph

    def pretty_pin(self, pin: int) -> str:
        """Human-readable name: ``"u1/Y (rise)"``."""
        name = self.graph.pin_name(pin)
        instance, _, pin_part = name.partition("/")
        base, transition = unmangle(instance)
        if transition in TRANSITIONS:
            label = _TRANSITION_LABEL[transition]
            suffix = f"/{pin_part}" if pin_part else ""
            return f"{base}{suffix} ({label})"
        return name

    def pretty_path(self, path) -> str:
        """The pin trace of a :class:`TimingPath`, transition-annotated."""
        return " -> ".join(self.pretty_pin(p) for p in path.pins)

    def flip_flop_indices(self, instance: str) -> tuple[int, int]:
        """(rise-capture FF index, fall-capture FF index) of a logical
        flip-flop instance."""
        rise = self.graph.ff_by_name(mangle(instance, RISE)).index
        fall = self.graph.ff_by_name(mangle(instance, FALL)).index
        return rise, fall


class RiseFallNetlist:
    """Cell-level builder; ``elaborate()`` expands to a plain graph.

    Logical pin references use the un-expanded names: gate pins
    ``"u1/A0"``/``"u1/Y"``, flip-flop pins ``"x/D"``/``"x/Q"``, and bare
    port names — exactly like :class:`repro.circuit.netlist.Netlist`.
    """

    def __init__(self, name: str,
                 library: StandardCellLibrary) -> None:
        self.name = name
        self.library = library
        self._netlist = Netlist(name)
        self._gates: dict[str, _GateInstance] = {}
        self._ffs: dict[str, FlipFlopCell] = {}
        self._inputs: set[str] = set()
        self._outputs: set[str] = set()

    # ------------------------------------------------------------------
    # Clock tree (single-transition: rising-edge triggered design)
    # ------------------------------------------------------------------
    def set_clock_root(self, name: str,
                       source_at: tuple[float, float] = (0.0, 0.0)) -> str:
        return self._netlist.set_clock_root(name, source_at)

    def add_clock_buffer(self, name: str, parent: str, delay_early: float,
                         delay_late: float) -> str:
        return self._netlist.add_clock_buffer(name, parent, delay_early,
                                              delay_late)

    def connect_clock(self, ff_instance: str, parent: str,
                      delay_early: float, delay_late: float) -> None:
        """Attach a flip-flop's physical clock pin below ``parent``.

        Internally a pseudo buffer ``{ff}@ck`` carries the leaf's delays
        and clocks both expanded flip-flops through zero-delay edges, so
        their LCA — and hence every CPPR credit — is the physical clock
        pin.
        """
        if ff_instance not in self._ffs:
            raise CircuitStructureError(
                f"connect_clock: unknown flip-flop {ff_instance!r}")
        pseudo = mangle(ff_instance, "ck")
        self._netlist.add_clock_buffer(pseudo, parent, delay_early,
                                       delay_late)
        for transition in TRANSITIONS:
            self._netlist.connect_clock(mangle(ff_instance, transition),
                                        pseudo, 0.0, 0.0)

    # ------------------------------------------------------------------
    # Instances and ports
    # ------------------------------------------------------------------
    def add_gate(self, instance: str, cell_name: str) -> None:
        """Instantiate a combinational library cell by name."""
        self.add_gate_cell(instance, self.library.cell(cell_name))

    def add_gate_cell(self, instance: str, cell: LibraryCell) -> None:
        """Instantiate a combinational cell from an explicit template.

        Used by the delay calculator, which clones library cells with
        per-instance computed delays.
        """
        input_slots: dict[tuple[int, str], list[str]] = {}

        for out_transition, arcs in ((RISE, cell.arcs_to_output_rise()),
                                     (FALL, cell.arcs_to_output_fall())):
            expanded = mangle(instance, out_transition)
            self._netlist.add_gate(expanded, num_inputs=len(arcs),
                                   arc_delays=[delay for _i, _t, delay
                                               in arcs])
            for slot, (input_index, input_transition, _delay) in \
                    enumerate(arcs):
                input_slots.setdefault(
                    (input_index, input_transition), []).append(
                    f"{expanded}/A{slot}")
        self._gates[instance] = _GateInstance(cell, input_slots)

    def add_flipflop(self, instance: str, cell_name: str) -> None:
        """Instantiate a sequential library cell by name."""
        self.add_flipflop_cell(instance, self.library.flip_flop(cell_name))

    def add_flipflop_cell(self, instance: str,
                          cell: FlipFlopCell) -> None:
        """Instantiate a sequential cell from an explicit template."""
        self._ffs[instance] = cell
        self._netlist.add_flipflop(mangle(instance, RISE),
                                   t_setup=cell.t_setup_rise,
                                   t_hold=cell.t_hold_rise,
                                   clk_to_q=cell.clk_to_q_rise)
        self._netlist.add_flipflop(mangle(instance, FALL),
                                   t_setup=cell.t_setup_fall,
                                   t_hold=cell.t_hold_fall,
                                   clk_to_q=cell.clk_to_q_fall)

    def add_primary_input(self, name: str,
                          rise_at: tuple[float, float] = (0.0, 0.0),
                          fall_at: tuple[float, float] = (0.0, 0.0)
                          ) -> str:
        self._inputs.add(name)
        self._netlist.add_primary_input(mangle(name, RISE), *rise_at)
        self._netlist.add_primary_input(mangle(name, FALL), *fall_at)
        return name

    def add_primary_output(self, name: str,
                           rat_early: float | None = None,
                           rat_late: float | None = None) -> str:
        self._outputs.add(name)
        for transition in TRANSITIONS:
            self._netlist.add_primary_output(mangle(name, transition),
                                             rat_early, rat_late)
        return name

    # ------------------------------------------------------------------
    # Interconnect
    # ------------------------------------------------------------------
    def _driver_pins(self, driver: str) -> dict[str, str]:
        """Expanded driver pin per transition for a logical driver."""
        instance, _, pin = driver.partition("/")
        if pin == "":
            if instance not in self._inputs:
                raise CircuitStructureError(
                    f"unknown primary input {driver!r}")
            return {t: mangle(instance, t) for t in TRANSITIONS}
        if pin == "Q":
            if instance not in self._ffs:
                raise CircuitStructureError(
                    f"unknown flip-flop {instance!r} in {driver!r}")
            return {t: f"{mangle(instance, t)}/Q" for t in TRANSITIONS}
        if pin == "Y":
            if instance not in self._gates:
                raise CircuitStructureError(
                    f"unknown gate {instance!r} in {driver!r}")
            return {t: f"{mangle(instance, t)}/Y" for t in TRANSITIONS}
        raise CircuitStructureError(
            f"{driver!r} is not a driver pin (expected a primary "
            f"input, 'inst/Q', or 'inst/Y')")

    def connect(self, driver: str, sink: str, delay_early: float = 0.0,
                delay_late: float = 0.0) -> None:
        """Connect a logical driver pin to a logical sink pin.

        Nets are non-inverting: the driver's rise feeds every expanded
        sink slot that wants a rising input, and likewise for fall.
        """
        drivers = self._driver_pins(driver)
        instance, _, pin = sink.partition("/")

        if pin == "D":
            if instance not in self._ffs:
                raise CircuitStructureError(
                    f"unknown flip-flop {instance!r} in {sink!r}")
            for transition in TRANSITIONS:
                self._netlist.connect(drivers[transition],
                                      f"{mangle(instance, transition)}/D",
                                      delay_early, delay_late)
            return
        if pin == "" and instance in self._outputs:
            for transition in TRANSITIONS:
                self._netlist.connect(drivers[transition],
                                      mangle(instance, transition),
                                      delay_early, delay_late)
            return
        if pin.startswith("A"):
            gate = self._gates.get(instance)
            if gate is None:
                raise CircuitStructureError(
                    f"unknown gate {instance!r} in {sink!r}")
            try:
                input_index = int(pin[1:])
            except ValueError:
                raise CircuitStructureError(
                    f"bad gate input pin {sink!r}") from None
            if not 0 <= input_index < gate.cell.num_inputs:
                raise CircuitStructureError(
                    f"gate {instance!r} ({gate.cell.name}) has "
                    f"{gate.cell.num_inputs} inputs; {sink!r} is out of "
                    f"range")
            for transition in TRANSITIONS:
                for slot in gate.input_slots.get(
                        (input_index, transition), []):
                    self._netlist.connect(drivers[transition], slot,
                                          delay_early, delay_late)
            return
        raise CircuitStructureError(
            f"{sink!r} is not a sink pin (expected 'inst/A<i>', "
            f"'inst/D', or a primary output)")

    # ------------------------------------------------------------------
    def elaborate(self) -> RiseFallDesign:
        """Expand and elaborate into a :class:`RiseFallDesign`."""
        return RiseFallDesign(self._netlist.elaborate())
