"""Random rise/fall designs built from standard-library cells.

A layered generator in the spirit of
:mod:`repro.workloads.random_circuit`, but at the cell level: each stage
instantiates random library cells (mixing unateness classes) and wires
them to the previous stage.  Used by the transitions test suite to
stress the expansion against the exhaustive oracle, and by the
``rise_fall`` example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.library.cells import StandardCellLibrary
from repro.library.standard import default_library
from repro.transitions.netlist import RiseFallDesign, RiseFallNetlist

__all__ = ["RandomRiseFallSpec", "random_rise_fall_design"]


@dataclass(frozen=True, slots=True)
class RandomRiseFallSpec:
    """Parameters for :func:`random_rise_fall_design`."""

    name: str = "rf_random"
    seed: int = 0
    num_ffs: int = 6
    num_pis: int = 2
    num_pos: int = 1
    layers: int = 3
    gates_per_layer: int = 4
    clock_depth: int = 2
    tree_delay: tuple[float, float] = (0.8, 1.3)
    net_delay: tuple[float, float] = (0.05, 0.12)

    def __post_init__(self) -> None:
        if self.num_ffs < 1:
            raise ValueError("num_ffs must be at least 1")
        if self.layers < 1 or self.gates_per_layer < 1:
            raise ValueError("need at least one layer and gate")


def random_rise_fall_design(spec: RandomRiseFallSpec,
                            library: StandardCellLibrary | None = None
                            ) -> RiseFallDesign:
    """Generate, wire, and expand one random rise/fall design."""
    rng = random.Random(spec.seed)
    library = library or default_library()
    comb_cells = [name for name in library
                  if not library.is_flip_flop(name)]
    ff_cells = [name for name in library if library.is_flip_flop(name)]
    netlist = RiseFallNetlist(spec.name, library)

    netlist.set_clock_root("clk")
    parents = ["clk"]
    for level in range(1, spec.clock_depth):
        new_parents = []
        for i in range(min(2 ** level, max(2, spec.num_ffs // 2))):
            name = f"cb{level}_{i}"
            netlist.add_clock_buffer(
                name, rng.choice(parents),
                spec.tree_delay[0] * rng.uniform(0.9, 1.1),
                spec.tree_delay[1] * rng.uniform(0.9, 1.1))
            new_parents.append(name)
        parents = new_parents

    ff_names = []
    for i in range(spec.num_ffs):
        name = f"x{i}"
        netlist.add_flipflop(name, rng.choice(ff_cells))
        netlist.connect_clock(
            name, rng.choice(parents),
            spec.tree_delay[0] * rng.uniform(0.9, 1.1),
            spec.tree_delay[1] * rng.uniform(0.9, 1.1))
        ff_names.append(name)

    pi_names = [netlist.add_primary_input(f"in{i}", (0.0, 0.1), (0.0, 0.1))
                for i in range(spec.num_pis)]

    def net_delay() -> tuple[float, float]:
        early = spec.net_delay[0] * rng.uniform(0.5, 1.5)
        return early, early + spec.net_delay[1] * rng.uniform(0.0, 1.0)

    previous = [f"{name}/Q" for name in ff_names] + list(pi_names)
    gate_index = 0
    for _layer in range(spec.layers):
        current = []
        for _ in range(spec.gates_per_layer):
            cell = library.cell(rng.choice(comb_cells))
            instance = f"u{gate_index}"
            gate_index += 1
            netlist.add_gate(instance, cell.name)
            for input_index in range(cell.num_inputs):
                netlist.connect(rng.choice(previous),
                                f"{instance}/A{input_index}",
                                *net_delay())
            current.append(f"{instance}/Y")
        previous = current

    for name in ff_names:
        netlist.connect(rng.choice(previous), f"{name}/D", *net_delay())
    for i in range(spec.num_pos):
        po = netlist.add_primary_output(
            f"out{i}", rat_early=0.0,
            rat_late=4.0 * (spec.layers + 2))
        netlist.connect(rng.choice(previous), po, *net_delay())

    return netlist.elaborate()
