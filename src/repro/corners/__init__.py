"""Multi-corner (MCMM) scenario modelling.

Real sign-off repeats timing analysis per *delay corner* — slow/fast
process, voltage and temperature scenarios that change edge and
clock-tree delays but never the netlist topology.  The structure/value
split of :mod:`repro.core.arrays` makes a corner a pure value-column
set by construction: every corner-realized graph shares the base
design's immutable :class:`~repro.core.arrays.CoreStructure` (and
topology caches — ``topo_order``, batched pad geometry, FF seed
columns), paying only a delay-column copy.

A :class:`Corner` names one scenario as a *delta* from the base design
(data-edge delay updates plus clock-tree edge updates, the exact
vocabulary of :class:`~repro.io.eco.EcoUpdates`); a :class:`CornerSet`
is the ordered, uniquely-named collection an engine analyzes together.
Passing a set via ``CpprOptions(corners=...)`` makes
:class:`~repro.cppr.engine.CpprEngine` run all ``C`` corners through
one fused ``(C * 2D, n)`` propagation sweep
(:func:`~repro.core.batched.propagate_dual_batched_corners`) and one
task fan-out, with per-corner results bit-for-bit identical to ``C``
independent single-corner engines.  See ``docs/MCMM.md``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.exceptions import AnalysisError
from repro.sta.incremental import (DelayUpdate, apply_clock_updates,
                                   apply_delay_updates)
from repro.sta.timing import TimingAnalyzer

__all__ = ["Corner", "CornerSet", "NO_CORNER"]

#: The corner label stamped on metrics and cache keys when an engine
#: has no corners configured.  Reserved — not a valid corner name.
NO_CORNER = "-"

#: Characters a corner name may not contain: names are embedded in
#: metric label encodings (``engine.queries{corner=...}``), CLI
#: ``NAME=FILE`` specs and profile header lines.
_FORBIDDEN = set("{}=, \t\n")


def _validate_name(name: object) -> str:
    if not isinstance(name, str) or not name:
        raise AnalysisError(
            f"corner name must be a non-empty string, got {name!r}")
    if name == NO_CORNER:
        raise AnalysisError(
            f"corner name {NO_CORNER!r} is reserved for the "
            f"no-corner label")
    bad = sorted(set(name) & _FORBIDDEN)
    if bad:
        raise AnalysisError(
            f"corner name {name!r} may not contain "
            f"{', '.join(map(repr, bad))} (names appear in metric "
            f"labels and NAME=FILE specs)")
    return name


class Corner:
    """One named delay scenario, expressed as a delta from the base.

    ``delays`` are :class:`~repro.sta.incremental.DelayUpdate` entries
    (data-edge delay replacements), ``clock`` maps clock-tree node
    names to new ``(early, late)`` edge delays — together exactly an
    :class:`~repro.io.eco.EcoUpdates`.  An empty delta is valid and
    names the base design itself (the conventional ``typ`` corner).
    Corners are immutable; edits resolve eagerly when the set is
    realized, so a typo'd pin name fails at engine construction, not on
    the first query.
    """

    __slots__ = ("name", "delays", "clock")

    def __init__(self, name: str,
                 delays: Iterable[DelayUpdate] = (),
                 clock: Mapping[str, tuple[float, float]] | None = None
                 ) -> None:
        self.name = _validate_name(name)
        self.delays = tuple(delays)
        for update in self.delays:
            if not isinstance(update, DelayUpdate):
                raise AnalysisError(
                    f"corner {name!r}: delays must be DelayUpdate "
                    f"entries, got {update!r}")
        self.clock = dict(clock or {})

    @classmethod
    def from_eco(cls, name: str, updates) -> "Corner":
        """A corner from an :class:`~repro.io.eco.EcoUpdates` bundle."""
        return cls(name, updates.delays, updates.clock)

    @classmethod
    def load(cls, name: str, path) -> "Corner":
        """A corner from an ECO-update JSON file (eagerly validated).

        File-format problems surface as the loader's
        :class:`~repro.exceptions.FormatError` with its usual
        ``path: context`` diagnostics.
        """
        from repro.io.eco import load_eco_updates
        return cls.from_eco(name, load_eco_updates(path))

    def __repr__(self) -> str:
        return (f"Corner({self.name!r}, delays={len(self.delays)}, "
                f"clock={len(self.clock)})")


class CornerSet:
    """An ordered set of uniquely-named corners analyzed together."""

    __slots__ = ("corners", "_by_name")

    def __init__(self, corners: Iterable[Corner]) -> None:
        self.corners = tuple(corners)
        if not self.corners:
            raise AnalysisError("a CornerSet needs at least one corner")
        self._by_name: dict[str, Corner] = {}
        for corner in self.corners:
            if not isinstance(corner, Corner):
                raise AnalysisError(
                    f"CornerSet entries must be Corner instances, "
                    f"got {corner!r}")
            if corner.name in self._by_name:
                raise AnalysisError(
                    f"duplicate corner name {corner.name!r}")
            self._by_name[corner.name] = corner

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(corner.name for corner in self.corners)

    def __len__(self) -> int:
        return len(self.corners)

    def __iter__(self) -> Iterator[Corner]:
        return iter(self.corners)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Corner:
        try:
            return self._by_name[name]
        except KeyError:
            raise AnalysisError(
                f"unknown corner {name!r}; valid corners: "
                f"{', '.join(self.names)}") from None

    def __repr__(self) -> str:
        return f"CornerSet({', '.join(self.names)})"

    def realize(self, analyzer: TimingAnalyzer,
                backend: str) -> dict[str, TimingAnalyzer]:
        """Corner-realized analyzers over one shared structure.

        On the array backend the base graph's core is built *first*,
        so every derived graph shares its
        :class:`~repro.core.arrays.CoreStructure` (the precondition of
        the fused sweep) and pays only a value-column copy.  Unknown
        pins or clock nodes raise :class:`AnalysisError` here — i.e.
        at engine construction — prefixed with the corner's name.
        """
        graph = analyzer.graph
        if backend == "array":
            from repro.core.arrays import get_core
            get_core(graph)
        realized: dict[str, TimingAnalyzer] = {}
        for corner in self.corners:
            derived = graph
            try:
                if corner.delays:
                    derived = apply_delay_updates(derived,
                                                  list(corner.delays))
                if corner.clock:
                    derived = apply_clock_updates(derived, corner.clock)
            except AnalysisError as exc:
                raise AnalysisError(
                    f"corner {corner.name!r}: {exc}") from None
            realized[corner.name] = TimingAnalyzer(derived,
                                                   analyzer.constraints)
        return realized
