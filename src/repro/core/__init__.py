"""repro.core — the flat array substrate shared by STA and every CPPR pass.

The paper's stated future work is a GPU port; the prerequisite — on any
hardware — is one compact array representation of the timing graph
instead of per-pin Python objects.  This package provides it:

* :class:`~repro.core.arrays.CoreArrays` — CSR fanout/fanin index
  arrays and per-source-level edge buckets, built once from a
  :class:`~repro.circuit.graph.TimingGraph` and cached on it
  (:func:`~repro.core.arrays.get_core`).
* :mod:`repro.core.propagate` — the ``backend="array"`` implementations
  of the dual/single arrival propagation (level-wise scatter relaxation
  that also recovers argmin ``from``-pointers and carries group ids, so
  the Table II dual-tuple semantics survive vectorization).
* :mod:`repro.core.grouping` — vectorized ``f_{d+1}``/credit lookups
  for the per-level node grouping, including the one-shot ``(D, n_ff)``
  grouping matrix.
* :mod:`repro.core.batched` — the level-batched grouped propagation:
  all ``D`` per-level forward passes as one sweep over ``(D, n_pins)``
  dual-tuple state (``CpprOptions.batch_levels``, gated by
  :func:`resolve_batch_levels`).

``numpy`` is an *optional* dependency (the ``fast`` extra).  This module
is importable without it; only the gate helpers live here so that
callers can decide between the scalar reference implementation and the
array backend without triggering the import:

* :data:`HAVE_NUMPY` — whether ``import numpy`` succeeds.
* :func:`resolve_backend` — maps the public ``"auto"|"scalar"|"array"``
  option to the concrete ``"scalar"``/``"array"`` implementation.
* :func:`require_numpy` — raises a clear, actionable error when the
  array backend is requested without numpy installed.

Tie-breaking contract (shared with the scalar backend): when two
arrival candidates at a pin have exactly equal times, the one with the
smaller ``from``-pin id wins; if those also tie, the smaller group id
wins.  Both backends implement this rule, so reported path sets are
identical across backends and executors.
"""

from __future__ import annotations

try:
    import numpy as _numpy  # noqa: F401
    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

__all__ = ["BACKENDS", "BATCH_LEVELS", "HAVE_NUMPY", "resolve_backend",
           "resolve_batch_levels", "require_numpy", "safer_backend"]

#: The values accepted by ``CpprOptions.backend`` and the CLI flag.
BACKENDS = ("auto", "scalar", "array")

#: The values accepted by ``CpprOptions.batch_levels`` and the CLI flag.
BATCH_LEVELS = ("auto", "on", "off")


def require_numpy(context: str = "the array backend") -> None:
    """Raise ``ImportError`` with install guidance when numpy is absent."""
    if not HAVE_NUMPY:
        raise ImportError(
            f"{context} requires numpy, which is not installed; "
            f"install it with `pip install repro[fast]` (or plain "
            f"`pip install numpy`), or use backend='scalar'")


def resolve_backend(backend: str) -> str:
    """Map an ``"auto"|"scalar"|"array"`` choice to a concrete backend.

    ``"auto"`` resolves to ``"array"`` when numpy is importable and
    falls back to ``"scalar"`` otherwise — the automatic-degradation
    path for minimal installs.  An explicit ``"array"`` without numpy
    raises ``ImportError`` (callers that validate options eagerly, such
    as :class:`repro.cppr.engine.CpprEngine`, surface it at
    construction time).
    """
    if backend == "auto":
        return "array" if HAVE_NUMPY else "scalar"
    if backend == "scalar":
        return "scalar"
    if backend == "array":
        require_numpy()
        return "array"
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}")


def safer_backend(backend: str) -> str | None:
    """The next rung of the backend degradation ladder, or ``None``.

    ``"array" -> "scalar"`` (the dependency-free reference that computes
    bit-for-bit the same reports), ``"scalar" -> None`` (there is no
    safer substrate).  The engine walks this ladder when an array or
    batched pass dies at runtime — a numpy import vanishing inside a
    worker, an allocation failure mid-sweep — so a query degrades to a
    slower-but-identical answer instead of failing.
    """
    if backend == "array":
        return "scalar"
    if backend == "scalar":
        return None
    raise ValueError(
        f"unknown concrete backend {backend!r}; expected 'scalar' or "
        f"'array'")


def resolve_batch_levels(batch_levels: str, backend: str) -> bool:
    """Decide whether the per-level passes share one batched sweep.

    ``backend`` must already be concrete (``"scalar"``/``"array"``, the
    output of :func:`resolve_backend`).  ``"auto"`` turns batching on
    exactly when the array backend is in use; ``"off"`` never batches;
    ``"on"`` demands it — raising ``ImportError`` (the same
    ``repro[fast]`` guidance as ``backend="array"``) when numpy is
    missing, and ``ValueError`` when combined with an explicit scalar
    backend, whose whole point is to avoid the array substrate.
    """
    if batch_levels not in BATCH_LEVELS:
        raise ValueError(
            f"unknown batch_levels {batch_levels!r}; expected one of "
            f"{BATCH_LEVELS}")
    if batch_levels == "off":
        return False
    if batch_levels == "on":
        require_numpy("batch_levels='on'")
        if backend == "scalar":
            raise ValueError(
                "batch_levels='on' requires the array backend; "
                "got backend='scalar'")
        return True
    return backend == "array"
