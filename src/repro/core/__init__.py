"""repro.core — the flat array substrate shared by STA and every CPPR pass.

The paper's stated future work is a GPU port; the prerequisite — on any
hardware — is one compact array representation of the timing graph
instead of per-pin Python objects.  This package provides it:

* :class:`~repro.core.arrays.CoreArrays` — CSR fanout/fanin index
  arrays and per-source-level edge buckets, built once from a
  :class:`~repro.circuit.graph.TimingGraph` and cached on it
  (:func:`~repro.core.arrays.get_core`).
* :mod:`repro.core.propagate` — the ``backend="array"`` implementations
  of the dual/single arrival propagation (level-wise scatter relaxation
  that also recovers argmin ``from``-pointers and carries group ids, so
  the Table II dual-tuple semantics survive vectorization).
* :mod:`repro.core.grouping` — vectorized ``f_{d+1}``/credit lookups
  for the per-level node grouping.

``numpy`` is an *optional* dependency (the ``fast`` extra).  This module
is importable without it; only the gate helpers live here so that
callers can decide between the scalar reference implementation and the
array backend without triggering the import:

* :data:`HAVE_NUMPY` — whether ``import numpy`` succeeds.
* :func:`resolve_backend` — maps the public ``"auto"|"scalar"|"array"``
  option to the concrete ``"scalar"``/``"array"`` implementation.
* :func:`require_numpy` — raises a clear, actionable error when the
  array backend is requested without numpy installed.

Tie-breaking contract (shared with the scalar backend): when two
arrival candidates at a pin have exactly equal times, the one with the
smaller ``from``-pin id wins; if those also tie, the smaller group id
wins.  Both backends implement this rule, so reported path sets are
identical across backends and executors.
"""

from __future__ import annotations

try:
    import numpy as _numpy  # noqa: F401
    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False

__all__ = ["BACKENDS", "HAVE_NUMPY", "resolve_backend", "require_numpy"]

#: The values accepted by ``CpprOptions.backend`` and the CLI flag.
BACKENDS = ("auto", "scalar", "array")


def require_numpy(context: str = "the array backend") -> None:
    """Raise ``ImportError`` with install guidance when numpy is absent."""
    if not HAVE_NUMPY:
        raise ImportError(
            f"{context} requires numpy, which is not installed; "
            f"install it with `pip install repro[fast]` (or plain "
            f"`pip install numpy`), or use backend='scalar'")


def resolve_backend(backend: str) -> str:
    """Map an ``"auto"|"scalar"|"array"`` choice to a concrete backend.

    ``"auto"`` resolves to ``"array"`` when numpy is importable and
    falls back to ``"scalar"`` otherwise — the automatic-degradation
    path for minimal installs.  An explicit ``"array"`` without numpy
    raises ``ImportError`` (callers that validate options eagerly, such
    as :class:`repro.cppr.engine.CpprEngine`, surface it at
    construction time).
    """
    if backend == "auto":
        return "array" if HAVE_NUMPY else "scalar"
    if backend == "scalar":
        return "scalar"
    if backend == "array":
        require_numpy()
        return "array"
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}")
