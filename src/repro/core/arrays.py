"""CSR/struct-of-arrays view of a :class:`TimingGraph`, split into an
immutable structure half and a mutable value half.

One :class:`CoreArrays` instance pairs

* a :class:`CoreStructure` — every index array that depends only on the
  graph's *topology*: ``level_of``, the levelized edge-table CSR with its
  per-level segment geometry, and the fanin CSR index columns.  The
  structure is immutable and shareable: two graphs with identical
  topology but different delays (an ECO edit) reuse one structure; and
* :class:`CoreValues` — the delay columns of both tables
  (``edge_early/edge_late`` and ``fanin_early/fanin_late`` with their
  plain-list mirrors) plus a monotonically increasing ``version``.
  Values are mutable: :meth:`CoreArrays.apply_value_updates` rewrites
  delay entries in place — the pipeline's ``values`` stage — so an
  incremental delay edit never rebuilds CSR.

Layout recap (unchanged from the single-object days):

* ``level_of`` — longest-path level per pin.  Every data edge goes from
  a lower to a strictly higher level, so relaxing the edge buckets in
  increasing source-level order is equivalent to relaxing edges in
  topological order (the invariant behind every level-wise pass).
* the **edge table** ``edge_src/edge_dst/edge_early/edge_late`` sorted
  by ``(level_of[src], dst, src, early, late)`` with ``level_ptr``
  offsets — the per-level buckets consumed by the forward passes
  (:mod:`repro.core.propagate` and
  :func:`repro.sta.vectorized.propagate_arrivals_vectorized`).
  Sorting each level by destination groups every target pin's incoming
  edges into one contiguous *segment*, so a level relaxation is a
  handful of ``ufunc.reduceat`` segment reductions instead of a runtime
  sort.  :class:`LevelBucket` precomputes the segment geometry
  (``estarts``/``eseg``/``seg_dst`` plus the pair-expanded
  ``cstarts``/``cseg``/``cand_src`` used by the dual two-tuple pass).
* the **fanin CSR** ``fanin_ptr/fanin_src/fanin_early/fanin_late``
  sorted by ``(dst, src, early, late)`` — consumed by the deviation
  search, which walks backward.  ``fanin_dst`` is the expanded per-edge
  destination column used to precompute deviation costs in one
  vectorized pass.  Plain-list mirrors of the CSR are kept alongside
  because the deviation walk indexes single elements in a tight loop,
  where Python lists beat numpy scalars.

Only the *within-run* order of parallel edges (equal ``(src, dst)``)
depends on delay values: runs are kept sorted by ``(early, late)``, and
:meth:`CoreArrays.apply_value_updates` re-sorts an edited run so the
arrays remain exactly what a from-scratch build of the edited graph
would produce.  Every index array is therefore a pure function of
topology, which is what makes structure sharing sound.

The sort keys make both tables fully deterministic functions of the
graph, independent of ``graph.fanout`` adjacency-list ordering — one
half of the cross-backend tie-breaking contract (see
:mod:`repro.core`).

Observability: building emits a ``core.build`` span with counters
``core.builds``, ``core.edges`` and ``core.levels``; cache hits count
``core.reuses``; a shared-structure value build counts
``core.structure_reuses``; in-place delay rewrites count
``core.value_updates``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.graph import TimingGraph
from repro.ds.topo import longest_path_levels
from repro.obs import collector as _obs

__all__ = ["CoreArrays", "CoreStructure", "CoreValues", "LevelBucket",
           "get_core"]


class LevelBucket:
    """One source level's edges, segmented by destination pin.

    The edge table is sorted so each destination's fanin inside a level
    is contiguous; ``estarts[s]`` is the first edge of segment ``s``,
    ``seg_dst[s]`` its destination pin (unique within the level), and
    ``eseg[i]`` the segment of edge ``i``.  The ``c``-prefixed arrays
    are the same geometry expanded 2x for the dual pass, where every
    edge contributes two candidate slots (the source's best tuple and
    its different-group fallback): slots ``2i`` and ``2i + 1`` belong
    to edge ``i``, and ``cand_src`` repeats each source pin twice.

    ``early``/``late`` are *views* into the owning
    :class:`CoreValues` columns, so in-place value updates are visible
    here without rebuilding the bucket.
    """

    __slots__ = ("src", "early", "late", "seg_dst", "estarts", "eseg",
                 "cstarts", "cseg", "cand_src")

    def __init__(self, src: np.ndarray, dst: np.ndarray,
                 early: np.ndarray, late: np.ndarray) -> None:
        self.src = src
        self.early = early
        self.late = late
        starts = np.flatnonzero(np.r_[True, dst[1:] != dst[:-1]])
        self.seg_dst = dst[starts]
        self.estarts = starts
        counts = np.diff(np.r_[starts, len(dst)])
        self.eseg = np.repeat(np.arange(len(starts)), counts)
        self.cstarts = starts * 2
        self.cseg = np.repeat(self.eseg, 2)
        self.cand_src = np.repeat(src, 2)

    @classmethod
    def _from_geometry(cls, geom: "LevelBucket", early: np.ndarray,
                       late: np.ndarray) -> "LevelBucket":
        """A bucket sharing ``geom``'s index arrays over new delay views.

        The segment geometry is a pure function of ``(src, dst)``, so a
        graph reusing another graph's :class:`CoreStructure` clones its
        buckets without recomputing any of it.
        """
        bucket = cls.__new__(cls)
        bucket.src = geom.src
        bucket.early = early
        bucket.late = late
        bucket.seg_dst = geom.seg_dst
        bucket.estarts = geom.estarts
        bucket.eseg = geom.eseg
        bucket.cstarts = geom.cstarts
        bucket.cseg = geom.cseg
        bucket.cand_src = geom.cand_src
        return bucket


class CoreStructure:
    """The topology-keyed half: every index array, no delay values.

    Immutable once built; safely shared between graphs whose topology
    (pin count, edge multiset of ``(src, dst)`` pairs, adjacency-row
    order) is identical — exactly what an ECO delay edit preserves.
    Also lazily caches the derived geometries the incremental pipeline
    needs: the per-bucket backward (source-grouped) relaxation geometry
    for required-time bound sweeps, and the fanin-position-by-source
    index for deviation-cost column maintenance.
    """

    __slots__ = ("num_pins", "num_edges", "num_levels", "level_of",
                 "edge_src", "edge_dst", "level_ptr", "bucket_spans",
                 "fanin_ptr", "fanin_src", "fanin_dst",
                 "fanin_ptr_list", "fanin_src_list", "fanin_dst_list",
                 "_backward_geo", "_fanin_by_src", "shm_layout",
                 "__weakref__")

    def __init__(self) -> None:
        self._backward_geo = None
        self._fanin_by_src = None
        self.shm_layout = None

    # ------------------------------------------------------------------
    # Edge/fanin run location (parallel edges share one run)
    # ------------------------------------------------------------------
    def fanin_run(self, u: int, v: int) -> tuple[int, int]:
        """Fanin-CSR slice ``[lo, hi)`` of the ``u -> v`` edge(s)."""
        lo = self.fanin_ptr_list[v]
        hi = self.fanin_ptr_list[v + 1]
        sub = self.fanin_src[lo:hi]
        a = lo + int(np.searchsorted(sub, u, side="left"))
        b = lo + int(np.searchsorted(sub, u, side="right"))
        return a, b

    def edge_run(self, u: int, v: int) -> tuple[int, int]:
        """Edge-table slice ``[lo, hi)`` of the ``u -> v`` edge(s)."""
        level = int(self.level_of[u])
        lo = int(self.level_ptr[level])
        hi = int(self.level_ptr[level + 1])
        dsub = self.edge_dst[lo:hi]
        a = lo + int(np.searchsorted(dsub, v, side="left"))
        b = lo + int(np.searchsorted(dsub, v, side="right"))
        ssub = self.edge_src[a:b]
        a2 = a + int(np.searchsorted(ssub, u, side="left"))
        b2 = a + int(np.searchsorted(ssub, u, side="right"))
        return a2, b2

    # ------------------------------------------------------------------
    # Lazy derived geometry for the incremental pipeline
    # ------------------------------------------------------------------
    def backward_geometry(self):
        """Per-bucket source-grouped relaxation geometry, highest first.

        For each non-empty level bucket (in *descending* source-level
        order, the schedule of a backward required-time sweep) yields
        ``(positions, sstarts, ssrc, dst_by_src)``: ``positions``
        reorders the bucket's edge-table slice by source pin (stable,
        so within one source the ``(dst, early, late)`` order is kept),
        ``sstarts`` marks equal-source runs, ``ssrc`` their source
        pins, and ``dst_by_src`` the reordered destination column.
        """
        if self._backward_geo is None:
            geos = []
            for lo, hi in reversed(self.bucket_spans):
                src = self.edge_src[lo:hi]
                order = np.argsort(src, kind="stable")
                positions = lo + order
                s = src[order]
                sstarts = np.flatnonzero(np.r_[True, s[1:] != s[:-1]])
                geos.append((positions, sstarts, s[sstarts],
                             self.edge_dst[positions]))
            self._backward_geo = geos
        return self._backward_geo

    def fanin_by_src(self):
        """``(order, starts)``: fanin positions grouped by source pin.

        ``order[starts[u]:starts[u + 1]]`` are the fanin-CSR positions
        whose *source* is ``u`` — the forward mirror of ``fanin_ptr``,
        used to patch deviation-cost entries after an arrival change at
        ``u``.
        """
        if self._fanin_by_src is None:
            order = np.argsort(self.fanin_src, kind="stable")
            starts = np.searchsorted(
                self.fanin_src[order], np.arange(self.num_pins + 1))
            self._fanin_by_src = (order.tolist(), starts.tolist())
        return self._fanin_by_src

    # ------------------------------------------------------------------
    # The shared-memory plane
    # ------------------------------------------------------------------
    def to_shared(self, kind: str = "structure"):
        """Publish the index columns into a shared-memory segment.

        Rebinds this object's arrays to segment-backed views (the list
        mirrors and lazy geometries are untouched — they are process
        local by design) and returns the picklable
        :class:`repro.core.shm.BufferLayout`.  Idempotent: a second
        call returns the existing layout.
        """
        from repro.core import shm as _shm
        if self.shm_layout is not None:
            return self.shm_layout
        layout, views = _shm.REGISTRY.publish(
            kind,
            {"level_of": self.level_of, "edge_src": self.edge_src,
             "edge_dst": self.edge_dst, "level_ptr": self.level_ptr,
             "fanin_ptr": self.fanin_ptr, "fanin_src": self.fanin_src,
             "fanin_dst": self.fanin_dst},
            version=0,
            meta={"num_pins": self.num_pins, "num_edges": self.num_edges,
                  "num_levels": self.num_levels})
        self.level_of = views["level_of"]
        self.edge_src = views["edge_src"]
        self.edge_dst = views["edge_dst"]
        self.level_ptr = views["level_ptr"]
        self.fanin_ptr = views["fanin_ptr"]
        self.fanin_src = views["fanin_src"]
        self.fanin_dst = views["fanin_dst"]
        self.shm_layout = layout
        import weakref
        weakref.finalize(self, _shm.REGISTRY.release, layout.segment)
        return layout

    @classmethod
    def attach(cls, layout) -> "CoreStructure":
        """Rebuild a structure from a published segment (read-only).

        Everything derivable is rederived locally: the list mirrors,
        the per-level ``bucket_spans``, and (lazily) the backward
        geometry — only the seven index columns come from the segment.
        """
        from repro.core import shm as _shm
        views = _shm.REGISTRY.views(layout, expected_version=0)
        meta = layout.meta_dict
        s = cls()
        s.num_pins = int(meta["num_pins"])
        s.num_edges = int(meta["num_edges"])
        s.num_levels = int(meta["num_levels"])
        s.level_of = views["level_of"]
        s.edge_src = views["edge_src"]
        s.edge_dst = views["edge_dst"]
        s.level_ptr = views["level_ptr"]
        s.fanin_ptr = views["fanin_ptr"]
        s.fanin_src = views["fanin_src"]
        s.fanin_dst = views["fanin_dst"]
        s.fanin_ptr_list = s.fanin_ptr.tolist()
        s.fanin_src_list = s.fanin_src.tolist()
        s.fanin_dst_list = s.fanin_dst.tolist()
        s.bucket_spans = []
        for level in range(s.num_levels):
            lo, hi = int(s.level_ptr[level]), int(s.level_ptr[level + 1])
            if lo != hi:
                s.bucket_spans.append((lo, hi))
        s.shm_layout = layout
        return s


class CoreValues:
    """The mutable half: delay columns of both tables, plus a version.

    ``version`` increments on every in-place rewrite
    (:meth:`CoreArrays.apply_value_updates`); pipeline artifacts embed
    it in their validity keys so a stale cache can never be served.
    """

    __slots__ = ("edge_early", "edge_late", "fanin_early", "fanin_late",
                 "_fanin_early_list", "_fanin_late_list", "_version",
                 "_version_slot", "shm_layout", "__weakref__")

    def __init__(self, edge_early: np.ndarray, edge_late: np.ndarray,
                 fanin_early: np.ndarray, fanin_late: np.ndarray) -> None:
        self.edge_early = edge_early
        self.edge_late = edge_late
        self.fanin_early = fanin_early
        self.fanin_late = fanin_late
        self._fanin_early_list = None
        self._fanin_late_list = None
        self._version = 0
        self._version_slot = None
        self.shm_layout = None

    # The scalar-walk mirrors are built on first use: a setup query
    # only ever reads the late list (and hold the early one), and a
    # corner realized but not yet queried reads neither — eager
    # ``tolist`` here would charge every CoreValues copy for both.
    @property
    def fanin_early_list(self) -> list[float]:
        mirror = self._fanin_early_list
        if mirror is None:
            mirror = self._fanin_early_list = self.fanin_early.tolist()
        return mirror

    @property
    def fanin_late_list(self) -> list[float]:
        mirror = self._fanin_late_list
        if mirror is None:
            mirror = self._fanin_late_list = self.fanin_late.tolist()
        return mirror

    @property
    def version(self) -> int:
        return self._version

    @version.setter
    def version(self, value: int) -> None:
        # Mirror every bump into the published segment's version slot,
        # so attached readers holding an older descriptor detect the
        # update (ShmStaleError) instead of reading mixed values.
        self._version = value
        if self._version_slot is not None:
            self._version_slot[0] = value

    # ------------------------------------------------------------------
    # The shared-memory plane
    # ------------------------------------------------------------------
    def to_shared(self, kind: str = "values"):
        """Publish the delay columns into a shared-memory segment.

        Rebinds the four arrays to *writable* segment-backed views, so
        subsequent :meth:`CoreArrays.apply_value_updates` rewrites hit
        shared pages directly — an ECO patch republishes nothing, it
        just bumps the version slot.  Returns the picklable layout;
        idempotent on repeat calls.
        """
        from repro.core import shm as _shm
        if self.shm_layout is not None:
            return self.shm_layout
        layout, views = _shm.REGISTRY.publish(
            kind,
            {"edge_early": self.edge_early, "edge_late": self.edge_late,
             "fanin_early": self.fanin_early,
             "fanin_late": self.fanin_late},
            version=self._version)
        self.edge_early = views["edge_early"]
        self.edge_late = views["edge_late"]
        self.fanin_early = views["fanin_early"]
        self.fanin_late = views["fanin_late"]
        self._version_slot = _shm.REGISTRY.version_slot(layout)
        self.shm_layout = layout
        import weakref
        weakref.finalize(self, _shm.REGISTRY.release, layout.segment)
        return layout

    @classmethod
    def attach(cls, layout, expected_version: int) -> "CoreValues":
        """Values over a published segment, validated at a version.

        Raises :class:`~repro.exceptions.ShmStaleError` when the
        segment's version slot disagrees with ``expected_version`` —
        the descriptor was minted before an in-place update.  The list
        mirrors are *copies snapshotted now*; callers cache the result
        keyed by ``(segment, version)`` so a later bump builds fresh
        mirrors instead of serving stale ones.
        """
        from repro.core import shm as _shm
        views = _shm.REGISTRY.views(layout,
                                    expected_version=expected_version)
        vals = cls(views["edge_early"], views["edge_late"],
                   views["fanin_early"], views["fanin_late"])
        # Materialize the scalar mirrors immediately — the arrays are
        # views into a segment the publisher may rewrite later, so the
        # "snapshotted now" contract above must not be lazy here.
        vals._fanin_early_list = vals.fanin_early.tolist()
        vals._fanin_late_list = vals.fanin_late.tolist()
        vals._version = expected_version
        vals.shm_layout = layout
        return vals


class CoreArrays:
    """Flat arrays for one graph; construct via :func:`get_core`.

    A thin pairing of one (possibly shared) :class:`CoreStructure` with
    one graph-private :class:`CoreValues`; every historical attribute
    (``edge_src``, ``fanin_early_list``, ...) is still reachable here,
    so consumers never need to know about the split.
    """

    __slots__ = ("structure", "values", "level_buckets")

    def __init__(self, graph: TimingGraph,
                 structure: CoreStructure | None = None,
                 values: CoreValues | None = None) -> None:
        if structure is not None:
            if values is None:
                raise ValueError(
                    "a shared CoreStructure needs explicit CoreValues")
            self.structure = structure
            self.values = values
            self._build_buckets(shared_from=None)
            return
        self._build(graph)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, graph: TimingGraph) -> None:
        n = graph.num_pins
        fanout = graph.fanout
        m = sum(len(adj) for adj in fanout)
        s = CoreStructure()
        s.num_pins = n
        s.num_edges = m

        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        early = np.empty(m, dtype=np.float64)
        late = np.empty(m, dtype=np.float64)
        i = 0
        for u in range(n):
            for v, e, l in fanout[u]:
                src[i] = u
                dst[i] = v
                early[i] = e
                late[i] = l
                i += 1

        levels = np.asarray(
            longest_path_levels(n, [[v for v, _e, _l in adj]
                                    for adj in fanout],
                                graph.topo_order),
            dtype=np.int64)
        s.level_of = levels

        # Edge table bucketed by source level, each level segmented by
        # destination (forward passes).  Parallel edges tie on
        # (level, dst, src) and land sorted by (early, late) — the
        # run order apply_value_updates maintains.
        order = np.lexsort((late, early, src, dst, levels[src]))
        s.edge_src = src[order]
        s.edge_dst = dst[order]
        edge_early = early[order]
        edge_late = late[order]
        src_levels = levels[s.edge_src]
        s.num_levels = int(levels.max()) + 1 if n else 0
        # level_ptr[L]..level_ptr[L+1] is the slice of edges whose
        # source sits at level L (possibly empty for sink-only levels).
        s.level_ptr = np.searchsorted(
            src_levels, np.arange(s.num_levels + 1))
        s.bucket_spans = []
        for level in range(s.num_levels):
            lo, hi = int(s.level_ptr[level]), int(s.level_ptr[level + 1])
            if lo == hi:
                continue
            s.bucket_spans.append((lo, hi))

        # Fanin CSR (backward deviation walk).
        order = np.lexsort((late, early, src, dst))
        s.fanin_src = src[order]
        s.fanin_dst = dst[order]
        s.fanin_ptr = np.searchsorted(s.fanin_dst, np.arange(n + 1))
        s.fanin_ptr_list = s.fanin_ptr.tolist()
        s.fanin_src_list = s.fanin_src.tolist()
        s.fanin_dst_list = s.fanin_dst.tolist()

        self.structure = s
        self.values = CoreValues(edge_early, edge_late,
                                 early[order], late[order])
        self._build_buckets(shared_from=None)

    def _build_buckets(self, shared_from) -> None:
        s, v = self.structure, self.values
        self.level_buckets = []
        for lo, hi in s.bucket_spans:
            self.level_buckets.append(LevelBucket(
                s.edge_src[lo:hi], s.edge_dst[lo:hi],
                v.edge_early[lo:hi], v.edge_late[lo:hi]))

    # ------------------------------------------------------------------
    # The shared-memory plane
    # ------------------------------------------------------------------
    def share_values(self, kind: str = "values"):
        """Publish the value columns and rebind the level buckets.

        After this, the buckets' ``early``/``late`` views alias the
        shared segment, so every consumer of this core (STA, CPPR
        passes, batched propagation) reads the same pages workers
        attach.  Returns the values :class:`~repro.core.shm.BufferLayout`.
        """
        already = self.values.shm_layout is not None
        layout = self.values.to_shared(kind)
        if not already:
            self._build_buckets(shared_from=None)
        return layout

    # ------------------------------------------------------------------
    # Incremental value rewrites (the pipeline's ``values`` stage)
    # ------------------------------------------------------------------
    def apply_value_updates(
            self, updates: list[tuple[int, int, float, float,
                                      float, float]]) -> None:
        """Rewrite delay entries in place; no index array is touched.

        ``updates`` holds ``(u, v, old_early, old_late, new_early,
        new_late)`` tuples; the entry holding the old pair is replaced
        (mirroring the adjacency-row patch that accompanies it) and a
        parallel-edge run containing the entry is re-sorted by
        ``(early, late)`` so the tables stay exactly what a fresh build
        of the edited graph would produce.
        """
        vals = self.values
        e_mirror = vals._fanin_early_list
        l_mirror = vals._fanin_late_list
        for u, v, old_e, old_l, new_e, new_l in updates:
            flo, fhi = self.structure.fanin_run(u, v)
            if flo == fhi:
                raise ValueError(f"no data edge {u} -> {v} in the core")
            elo, ehi = self.structure.edge_run(u, v)
            if fhi - flo == 1:
                vals.fanin_early[flo] = new_e
                vals.fanin_late[flo] = new_l
                if e_mirror is not None:
                    e_mirror[flo] = new_e
                if l_mirror is not None:
                    l_mirror[flo] = new_l
                vals.edge_early[elo] = new_e
                vals.edge_late[elo] = new_l
                continue
            # Parallel-edge run: replace the entry matching the old
            # pair, then restore the (early, late) run order in both
            # tables.
            for i in range(flo, fhi):
                if (vals.fanin_early[i] == old_e
                        and vals.fanin_late[i] == old_l):
                    break
            else:
                raise ValueError(
                    f"edge {u} -> {v}: no entry with delays "
                    f"({old_e}, {old_l}) to replace")
            vals.fanin_early[i] = new_e
            vals.fanin_late[i] = new_l
            pairs = sorted(zip(vals.fanin_early[flo:fhi].tolist(),
                               vals.fanin_late[flo:fhi].tolist()))
            for j, (e, l) in enumerate(pairs):
                vals.fanin_early[flo + j] = e
                vals.fanin_late[flo + j] = l
                if e_mirror is not None:
                    e_mirror[flo + j] = e
                if l_mirror is not None:
                    l_mirror[flo + j] = l
                vals.edge_early[elo + j] = e
                vals.edge_late[elo + j] = l
        vals.version += 1
        col = _obs.ACTIVE
        if col is not None:
            col.add("core.value_updates", len(updates))

    def updated_copy(self, graph: TimingGraph,
                     updates: list[tuple[int, int, float, float,
                                         float, float]]) -> "CoreArrays":
        """A new :class:`CoreArrays` for ``graph``: shared structure,
        copied value columns with ``updates`` applied.

        The structure-sharing fast path behind
        :func:`repro.sta.incremental.apply_delay_updates` — the derived
        graph pays one array copy instead of a CSR rebuild.
        """
        old = self.values
        vals = CoreValues(old.edge_early.copy(), old.edge_late.copy(),
                          old.fanin_early.copy(), old.fanin_late.copy())
        new = CoreArrays(graph, structure=self.structure, values=vals)
        new.apply_value_updates(updates)
        col = _obs.ACTIVE
        if col is not None:
            col.add("core.structure_reuses")
        return new

    # ------------------------------------------------------------------
    # The historical flat-attribute surface (facade)
    # ------------------------------------------------------------------
    @property
    def num_pins(self) -> int:
        return self.structure.num_pins

    @property
    def num_edges(self) -> int:
        return self.structure.num_edges

    @property
    def num_levels(self) -> int:
        return self.structure.num_levels

    @property
    def level_of(self) -> np.ndarray:
        return self.structure.level_of

    @property
    def edge_src(self) -> np.ndarray:
        return self.structure.edge_src

    @property
    def edge_dst(self) -> np.ndarray:
        return self.structure.edge_dst

    @property
    def level_ptr(self) -> np.ndarray:
        return self.structure.level_ptr

    @property
    def edge_early(self) -> np.ndarray:
        return self.values.edge_early

    @property
    def edge_late(self) -> np.ndarray:
        return self.values.edge_late

    @property
    def fanin_ptr(self) -> np.ndarray:
        return self.structure.fanin_ptr

    @property
    def fanin_src(self) -> np.ndarray:
        return self.structure.fanin_src

    @property
    def fanin_dst(self) -> np.ndarray:
        return self.structure.fanin_dst

    @property
    def fanin_early(self) -> np.ndarray:
        return self.values.fanin_early

    @property
    def fanin_late(self) -> np.ndarray:
        return self.values.fanin_late

    @property
    def fanin_ptr_list(self) -> list[int]:
        return self.structure.fanin_ptr_list

    @property
    def fanin_src_list(self) -> list[int]:
        return self.structure.fanin_src_list

    @property
    def fanin_dst_list(self) -> list[int]:
        return self.structure.fanin_dst_list

    @property
    def fanin_early_list(self) -> list[float]:
        return self.values.fanin_early_list

    @property
    def fanin_late_list(self) -> list[float]:
        return self.values.fanin_late_list

    def level_slices(self):
        """Yield ``(src, dst, early, late)`` per source level, in order."""
        s, v = self.structure, self.values
        ptr = s.level_ptr
        for level in range(s.num_levels):
            lo, hi = ptr[level], ptr[level + 1]
            if lo == hi:
                continue
            yield (s.edge_src[lo:hi], s.edge_dst[lo:hi],
                   v.edge_early[lo:hi], v.edge_late[lo:hi])


def get_core(graph: TimingGraph) -> CoreArrays:
    """The graph's cached :class:`CoreArrays`, building it on first use.

    Thread-safe in the benign sense: concurrent first calls may build
    twice and one result wins, exactly like the graph's other lazy
    caches.  Forked workers inherit an already-built core for free.
    Derived graphs (:func:`repro.sta.incremental.apply_delay_updates`,
    session clones) arrive with a pre-planted core that shares the
    parent's :class:`CoreStructure`, so only the value columns differ.
    """
    core = getattr(graph, "_core_arrays", None)
    if core is None:
        with _obs.span("core.build"):
            core = CoreArrays(graph)
        col = _obs.ACTIVE
        if col is not None:
            col.add("core.builds")
            col.add("core.edges", core.num_edges)
            col.add("core.levels", core.num_levels)
        graph._core_arrays = core
    else:
        col = _obs.ACTIVE
        if col is not None:
            col.add("core.reuses")
    return core
