"""CSR/struct-of-arrays view of a :class:`TimingGraph`.

One :class:`CoreArrays` instance holds every flat representation the
array backend needs, built in a single pass over ``graph.fanout`` and
cached on the graph object (:func:`get_core`):

* ``level_of`` — longest-path level per pin.  Every data edge goes from
  a lower to a strictly higher level, so relaxing the edge buckets in
  increasing source-level order is equivalent to relaxing edges in
  topological order (the invariant behind every level-wise pass).
* the **edge table** ``edge_src/edge_dst/edge_early/edge_late`` sorted
  by ``(level_of[src], dst, src, early, late)`` with ``level_ptr``
  offsets — the per-level buckets consumed by the forward passes
  (:mod:`repro.core.propagate` and
  :func:`repro.sta.vectorized.propagate_arrivals_vectorized`).
  Sorting each level by destination groups every target pin's incoming
  edges into one contiguous *segment*, so a level relaxation is a
  handful of ``ufunc.reduceat`` segment reductions instead of a runtime
  sort.  :class:`LevelBucket` precomputes the segment geometry
  (``estarts``/``eseg``/``seg_dst`` plus the pair-expanded
  ``cstarts``/``cseg``/``cand_src`` used by the dual two-tuple pass).
* the **fanin CSR** ``fanin_ptr/fanin_src/fanin_early/fanin_late``
  sorted by ``(dst, src, early, late)`` — consumed by the deviation
  search, which walks backward.  ``fanin_dst`` is the expanded per-edge
  destination column used to precompute deviation costs in one
  vectorized pass.  Plain-list mirrors of the CSR (``fanin_ptr_list``,
  ``fanin_src_list``, ``fanin_early_list``, ``fanin_late_list``) are
  kept alongside because the deviation walk indexes single elements in
  a tight loop, where Python lists beat numpy scalars.

The sort keys make both tables fully deterministic functions of the
graph, independent of ``graph.fanout`` adjacency-list ordering — one
half of the cross-backend tie-breaking contract (see
:mod:`repro.core`).

Observability: building emits a ``core.build`` span with counters
``core.builds``, ``core.edges`` and ``core.levels``; cache hits count
``core.reuses``.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.graph import TimingGraph
from repro.ds.topo import longest_path_levels
from repro.obs import collector as _obs

__all__ = ["CoreArrays", "LevelBucket", "get_core"]


class LevelBucket:
    """One source level's edges, segmented by destination pin.

    The edge table is sorted so each destination's fanin inside a level
    is contiguous; ``estarts[s]`` is the first edge of segment ``s``,
    ``seg_dst[s]`` its destination pin (unique within the level), and
    ``eseg[i]`` the segment of edge ``i``.  The ``c``-prefixed arrays
    are the same geometry expanded 2x for the dual pass, where every
    edge contributes two candidate slots (the source's best tuple and
    its different-group fallback): slots ``2i`` and ``2i + 1`` belong
    to edge ``i``, and ``cand_src`` repeats each source pin twice.
    """

    __slots__ = ("src", "early", "late", "seg_dst", "estarts", "eseg",
                 "cstarts", "cseg", "cand_src")

    def __init__(self, src: np.ndarray, dst: np.ndarray,
                 early: np.ndarray, late: np.ndarray) -> None:
        self.src = src
        self.early = early
        self.late = late
        starts = np.flatnonzero(np.r_[True, dst[1:] != dst[:-1]])
        self.seg_dst = dst[starts]
        self.estarts = starts
        counts = np.diff(np.r_[starts, len(dst)])
        self.eseg = np.repeat(np.arange(len(starts)), counts)
        self.cstarts = starts * 2
        self.cseg = np.repeat(self.eseg, 2)
        self.cand_src = np.repeat(src, 2)


class CoreArrays:
    """Flat arrays for one graph; construct via :func:`get_core`."""

    __slots__ = (
        "num_pins", "num_edges", "num_levels", "level_of",
        "edge_src", "edge_dst", "edge_early", "edge_late", "level_ptr",
        "level_buckets",
        "fanin_ptr", "fanin_src", "fanin_dst", "fanin_early",
        "fanin_late",
        "fanin_ptr_list", "fanin_src_list", "fanin_early_list",
        "fanin_late_list",
    )

    def __init__(self, graph: TimingGraph) -> None:
        n = graph.num_pins
        fanout = graph.fanout
        m = sum(len(adj) for adj in fanout)
        self.num_pins = n
        self.num_edges = m

        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        early = np.empty(m, dtype=np.float64)
        late = np.empty(m, dtype=np.float64)
        i = 0
        for u in range(n):
            for v, e, l in fanout[u]:
                src[i] = u
                dst[i] = v
                early[i] = e
                late[i] = l
                i += 1

        levels = np.asarray(
            longest_path_levels(n, [[v for v, _e, _l in adj]
                                    for adj in fanout],
                                graph.topo_order),
            dtype=np.int64)
        self.level_of = levels

        # Edge table bucketed by source level, each level segmented by
        # destination (forward passes).
        order = np.lexsort((late, early, src, dst, levels[src]))
        self.edge_src = src[order]
        self.edge_dst = dst[order]
        self.edge_early = early[order]
        self.edge_late = late[order]
        src_levels = levels[self.edge_src]
        self.num_levels = int(levels.max()) + 1 if n else 0
        # level_ptr[L]..level_ptr[L+1] is the slice of edges whose
        # source sits at level L (possibly empty for sink-only levels).
        self.level_ptr = np.searchsorted(
            src_levels, np.arange(self.num_levels + 1))
        self.level_buckets = []
        for level in range(self.num_levels):
            lo, hi = self.level_ptr[level], self.level_ptr[level + 1]
            if lo == hi:
                continue
            self.level_buckets.append(LevelBucket(
                self.edge_src[lo:hi], self.edge_dst[lo:hi],
                self.edge_early[lo:hi], self.edge_late[lo:hi]))

        # Fanin CSR (backward deviation walk).
        order = np.lexsort((late, early, src, dst))
        self.fanin_src = src[order]
        self.fanin_dst = dst[order]
        self.fanin_early = early[order]
        self.fanin_late = late[order]
        self.fanin_ptr = np.searchsorted(self.fanin_dst,
                                         np.arange(n + 1))
        self.fanin_ptr_list = self.fanin_ptr.tolist()
        self.fanin_src_list = self.fanin_src.tolist()
        self.fanin_early_list = self.fanin_early.tolist()
        self.fanin_late_list = self.fanin_late.tolist()

    def level_slices(self):
        """Yield ``(src, dst, early, late)`` per source level, in order."""
        ptr = self.level_ptr
        for level in range(self.num_levels):
            lo, hi = ptr[level], ptr[level + 1]
            if lo == hi:
                continue
            yield (self.edge_src[lo:hi], self.edge_dst[lo:hi],
                   self.edge_early[lo:hi], self.edge_late[lo:hi])


def get_core(graph: TimingGraph) -> CoreArrays:
    """The graph's cached :class:`CoreArrays`, building it on first use.

    Thread-safe in the benign sense: concurrent first calls may build
    twice and one result wins, exactly like the graph's other lazy
    caches.  Forked workers inherit an already-built core for free.
    """
    core = getattr(graph, "_core_arrays", None)
    if core is None:
        with _obs.span("core.build"):
            core = CoreArrays(graph)
        col = _obs.ACTIVE
        if col is not None:
            col.add("core.builds")
            col.add("core.edges", core.num_edges)
            col.add("core.levels", core.num_levels)
        graph._core_arrays = core
    else:
        col = _obs.ACTIVE
        if col is not None:
            col.add("core.reuses")
    return core
