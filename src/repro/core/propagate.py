"""``backend="array"`` forward propagation (numpy level-wise relaxation).

Computes exactly what the scalar loops in :mod:`repro.cppr.propagation`
compute — the dual tuples of Table II (``propagate_dual_array``) and the
single-tuple ungrouped pass (``propagate_single_array``) — but one
source level at a time with bulk array operations instead of a per-edge
interpreter loop.

Correctness rests on two facts:

1. **Level order is topological order.**  Every data edge goes from a
   lower to a strictly higher longest-path level, so when the level-``L``
   edge bucket is relaxed, every level-``<= L`` pin (every possible
   source) is final.
2. **The two-tuple state is order-independent.**  After any candidate
   set has been offered to a pin, ``best`` is the lexicographically most
   pessimistic candidate and ``fallback`` the most pessimistic whose
   group differs from ``best``'s (see
   :class:`repro.cppr.tuples.DualArrival`).  A batch that merges the
   pin's current tuples with all of a level's offers and recomputes both
   from scratch therefore lands in exactly the state the scalar
   incremental rule reaches.

The lexicographic candidate order — more pessimistic time first, then
smaller ``from``-pin id, then smaller group id — is the shared
tie-breaking contract of :mod:`repro.core`.  The level relaxation never
sorts at runtime: the edge table is pre-sorted by ``(dst, src)`` inside
each level (:class:`~repro.core.arrays.LevelBucket`), so the most
pessimistic candidate per destination is a ``reduceat`` segment
reduction, and "earliest position achieving the segment extremum"
recovers exactly the contract's winner (positions ascend by from-pin;
the two candidate slots of one edge are pre-swapped so the smaller
group sits first on a time tie).  The same rule is spelled out
per-offer in the scalar backend, so ``from``-pointers (and hence
reported path sets) agree bit-for-bit.

Merging a level's batch extremum into the running per-pin state is a
pure element-wise combine: the union of two ``(best, fallback)``
summaries is again summarized by its lexicographic best plus the most
pessimistic survivor among the three remaining tuples whose group
differs from the new best's — any discarded candidate is dominated by
one of those three (see ``_combine_dual``).  Only the irregular seed
batch, which can hit arbitrary pins more than once, still goes through
a sort-based merge (:func:`_merge_dual_seeds`).

Each pass also precomputes the deviation-cost column for the graph's
fanin CSR in one vectorized pass over all edges
(:class:`FastDeviation`), which the top-k search in
:mod:`repro.cppr.deviation` consumes in place of per-edge ``auto()``
queries.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro import faults
from repro.circuit.graph import TimingGraph
from repro.core.arrays import CoreArrays, get_core
from repro.cppr.tuples import NO_GROUP, NO_NODE
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode

__all__ = ["FastDeviation", "propagate_dual_array",
           "propagate_single_array"]

_INF = float("inf")


class FastDeviation:
    """Precomputed per-edge deviation costs over the fanin CSR.

    ``cost0[i]`` is the cost of deviating into fanin edge ``i``
    (``src -> dst`` in :class:`~repro.core.arrays.CoreArrays` fanin
    order) assuming both endpoints are queried at their *primary* tuple:
    ``time0[dst] - time0[src] - delay`` for setup,
    ``time0[src] + delay - time0[dst]`` for hold.  Entries whose source
    is unreachable are ``inf`` (skip).  The deviation search corrects
    for a non-primary tuple at the *path* end with a per-pin additive
    adjustment and falls back to the fallback tuple of the *deviation*
    end only when its primary tuple's group is excluded — see
    ``run_topk`` in :mod:`repro.cppr.deviation`.

    All columns are plain Python lists: the search walks them one
    element at a time, where list indexing beats numpy scalar access.
    """

    __slots__ = ("ptr", "src", "delay", "cost0")

    def __init__(self, ptr: list[int], src: list[int],
                 delay: list[float], cost0: list[float]) -> None:
        self.ptr = ptr
        self.src = src
        self.delay = delay
        self.cost0 = cost0


def _fast_deviation(core: CoreArrays, time0: np.ndarray,
                    is_setup: bool) -> FastDeviation:
    """One vectorized pass over all fanin edges -> cost column."""
    t_src = time0[core.fanin_src]
    t_dst = time0[core.fanin_dst]
    with np.errstate(invalid="ignore"):
        if is_setup:
            cost0 = t_dst - t_src - core.fanin_late
            delay_list = core.fanin_late_list
        else:
            cost0 = t_src + core.fanin_early - t_dst
            delay_list = core.fanin_early_list
    # Unreachable sources give +inf; inf-inf (both ends unreachable,
    # never consulted by the walk) gives nan — normalize both to inf so
    # a single `== inf` test skips them.
    cost0[~np.isfinite(cost0)] = _INF
    return FastDeviation(core.fanin_ptr_list, core.fanin_src_list,
                         delay_list, cost0.tolist())


def _seed_columns(seeds: Iterable) -> tuple[np.ndarray, np.ndarray,
                                            np.ndarray, np.ndarray, int]:
    pins, times, froms, groups = [], [], [], []
    for seed in seeds:
        pins.append(seed.pin)
        times.append(seed.time)
        froms.append(seed.from_pin)
        groups.append(seed.group)
    return (np.asarray(pins, dtype=np.int64),
            np.asarray(times, dtype=np.float64),
            np.asarray(froms, dtype=np.int64),
            np.asarray(groups, dtype=np.int64),
            len(pins))


def _merge_dual_seeds(state, empty, is_setup, targets, ct, cf, cg):
    """Sort-based (best, fallback) recompute for the seed batch.

    Seeds can hit arbitrary pins any number of times, so unlike a level
    bucket there is no precomputed segment geometry — sort the batch by
    pin with the tie-break contract as secondary keys and take the
    per-pin head as best, the first different-group candidate as
    fallback.  Runs once per propagation on the (small) seed list.
    """
    time0, from0, group0, time1, from1, group1 = state
    order = np.lexsort((cg, cf, -ct if is_setup else ct, targets))
    v, t, f, g = targets[order], ct[order], cf[order], cg[order]
    starts = np.flatnonzero(np.r_[True, v[1:] != v[:-1]])
    upd = v[starts]
    best_g = g[starts]
    time0[upd] = t[starts]
    from0[upd] = f[starts]
    group0[upd] = best_g
    counts = np.diff(np.r_[starts, len(v)])
    pin_of_pos = np.repeat(np.arange(len(starts)), counts)
    pos = np.where(g != best_g[pin_of_pos], np.arange(len(v)), len(v))
    first = np.minimum.reduceat(pos, starts)
    has_fb = first < len(v)
    fb = first[has_fb]
    time1[upd[has_fb]] = t[fb]
    from1[upd[has_fb]] = f[fb]
    group1[upd[has_fb]] = g[fb]


def _combine_dual(state, empty, is_setup, upd,
                  b0t, b0f, b0g, b1t, b1f, b1g):
    """Merge one level's per-pin batch summary into the running state.

    ``upd`` holds distinct pins; ``(b0*, b1*)`` their batch best and
    batch fallback (``b1t == empty`` when the batch has no
    different-group candidate).  The union's best is the lexicographic
    winner of the two bests; its fallback is the most pessimistic of
    the three remaining tuples whose group differs from the new best's
    — every discarded candidate is dominated by one of them: candidates
    sharing the losing best's group by that best, all others by that
    side's fallback.
    """
    time0, from0, group0, time1, from1, group1 = state
    c0t, c0f, c0g = time0[upd], from0[upd], group0[upd]
    c1t, c1f, c1g = time1[upd], from1[upd], group1[upd]
    bwin = _lex_beats(is_setup, b0t, b0f, b0g, c0t, c0f, c0g)
    n0t = np.where(bwin, b0t, c0t)
    n0f = np.where(bwin, b0f, c0f)
    n0g = np.where(bwin, b0g, c0g)
    # Fallback tournament: losing best, then each side's fallback.
    rt = np.where(bwin, c0t, b0t)
    rf = np.where(bwin, c0f, b0f)
    rg = np.where(bwin, c0g, b0g)
    rv = (rt != empty) & (rg != n0g)
    for xt, xf, xg in ((c1t, c1f, c1g), (b1t, b1f, b1g)):
        xv = (xt != empty) & (xg != n0g)
        take = (xv & ~rv) | (xv & rv
                             & _lex_beats(is_setup, xt, xf, xg,
                                          rt, rf, rg))
        rt = np.where(take, xt, rt)
        rf = np.where(take, xf, rf)
        rg = np.where(take, xg, rg)
        rv = rv | xv
    time0[upd] = n0t
    from0[upd] = n0f
    group0[upd] = n0g
    time1[upd] = np.where(rv, rt, empty)
    from1[upd] = np.where(rv, rf, NO_NODE)
    group1[upd] = np.where(rv, rg, NO_GROUP)


def _beats(is_setup: bool, bt, at):
    """Element-wise "time ``bt`` is strictly more pessimistic"."""
    return bt > at if is_setup else bt < at


def _lex_beats(is_setup: bool, bt, bf, bg, at, af, ag):
    """Element-wise full tie-break: (time, from-pin, group)."""
    return (_beats(is_setup, bt, at)
            | ((bt == at) & ((bf < af) | ((bf == af) & (bg < ag)))))


def propagate_dual_array(graph: TimingGraph, mode: AnalysisMode,
                         seeds: Iterable) -> "DualArrivalArrays":
    """Array-backend grouped forward pass (Algorithm 2 lines 1-13)."""
    from repro.cppr.propagation import DualArrivalArrays

    faults.check("numpy.import")
    core = get_core(graph)
    n = graph.num_pins
    empty = mode.empty_time
    is_setup = mode.is_setup
    reduce_best = np.maximum.reduceat if is_setup else np.minimum.reduceat

    time0 = np.full(n, empty, dtype=np.float64)
    from0 = np.full(n, NO_NODE, dtype=np.int64)
    group0 = np.full(n, NO_GROUP, dtype=np.int64)
    time1 = np.full(n, empty, dtype=np.float64)
    from1 = np.full(n, NO_NODE, dtype=np.int64)
    group1 = np.full(n, NO_GROUP, dtype=np.int64)
    state = (time0, from0, group0, time1, from1, group1)

    s_pin, s_t, s_f, s_g, num_seeds = _seed_columns(seeds)
    if num_seeds:
        _merge_dual_seeds(state, empty, is_setup, s_pin, s_t, s_f, s_g)

        for b in core.level_buckets:
            src = b.src
            delay = b.late if is_setup else b.early
            # Two candidate slots per edge: the source's best tuple and
            # its fallback.  Pre-swap each pair so the slot order obeys
            # the tie-break (pessimistic time first, then smaller group
            # — the from-pin is the same for both slots).
            ta = time0[src] + delay
            tb = time1[src] + delay
            ga = group0[src]
            gb = group1[src]
            swap = _beats(is_setup, tb, ta) | ((tb == ta) & (gb < ga))
            m2 = 2 * len(src)
            t = np.empty(m2, dtype=np.float64)
            t[0::2] = np.where(swap, tb, ta)
            t[1::2] = np.where(swap, ta, tb)
            g = np.empty(m2, dtype=np.int64)
            g[0::2] = np.where(swap, gb, ga)
            g[1::2] = np.where(swap, ga, gb)
            # Segment extremum, then the earliest slot achieving it:
            # slots ascend by from-pin (and pair order breaks the rest),
            # so "first at extremum" is exactly the contract's winner.
            bt = reduce_best(t, b.cstarts)
            active = bt != empty
            if not active.any():
                continue
            slots = np.arange(m2)
            pos = np.where(t == bt[b.cseg], slots, m2)
            first = np.minimum.reduceat(pos, b.cstarts)
            first = np.minimum(first, m2 - 1)  # inactive segments only
            bf = b.cand_src[first]
            bg = g[first]
            # Batch fallback: most pessimistic slot in a different group.
            t2 = np.where(g != bg[b.cseg], t, empty)
            ft = reduce_best(t2, b.cstarts)
            pos = np.where(t2 == ft[b.cseg], slots, m2)
            first = np.minimum(np.minimum.reduceat(pos, b.cstarts),
                               m2 - 1)
            has_fb = ft != empty
            ff = np.where(has_fb, b.cand_src[first], NO_NODE)
            fg = np.where(has_fb, g[first], NO_GROUP)
            _combine_dual(state, empty, is_setup, b.seg_dst[active],
                          bt[active], bf[active], bg[active],
                          ft[active], ff[active], fg[active])

    col = _obs.ACTIVE
    if col is not None:
        col.add("propagation.seeds", num_seeds)
        col.add("propagation.pins_visited",
                int((time0 != empty).sum()))

    fast = _fast_deviation(core, time0, is_setup)
    return DualArrivalArrays(mode, time0.tolist(), from0.tolist(),
                             group0.tolist(), time1.tolist(),
                             from1.tolist(), group1.tolist(), fast=fast)


def propagate_single_array(graph: TimingGraph, mode: AnalysisMode,
                           seeds: Iterable) -> "SingleArrivalArrays":
    """Array-backend ungrouped forward pass (Algorithms 3 and 4)."""
    from repro.cppr.propagation import SingleArrivalArrays

    faults.check("numpy.import")
    core = get_core(graph)
    n = graph.num_pins
    empty = mode.empty_time
    is_setup = mode.is_setup

    reduce_best = np.maximum.reduceat if is_setup else np.minimum.reduceat

    time0 = np.full(n, empty, dtype=np.float64)
    from0 = np.full(n, NO_NODE, dtype=np.int64)

    s_pin, s_t, s_f, _s_g, num_seeds = _seed_columns(seeds)
    if num_seeds:
        # Seed batch: sort by pin with the tie-break as secondary keys.
        order = np.lexsort((s_f, -s_t if is_setup else s_t, s_pin))
        v, t, f = s_pin[order], s_t[order], s_f[order]
        starts = np.flatnonzero(np.r_[True, v[1:] != v[:-1]])
        time0[v[starts]] = t[starts]
        from0[v[starts]] = f[starts]

        for b in core.level_buckets:
            t = time0[b.src] + (b.late if is_setup else b.early)
            bt = reduce_best(t, b.estarts)
            active = bt != empty
            if not active.any():
                continue
            m = len(t)
            pos = np.where(t == bt[b.eseg], np.arange(m), m)
            first = np.minimum(np.minimum.reduceat(pos, b.estarts),
                               m - 1)
            bf = b.src[first]
            upd = b.seg_dst[active]
            b0t, b0f = bt[active], bf[active]
            c0t, c0f = time0[upd], from0[upd]
            take = (_beats(is_setup, b0t, c0t)
                    | ((b0t == c0t) & (b0f < c0f)))
            time0[upd] = np.where(take, b0t, c0t)
            from0[upd] = np.where(take, b0f, c0f)

    col = _obs.ACTIVE
    if col is not None:
        col.add("propagation.seeds", num_seeds)
        col.add("propagation.pins_visited",
                int((time0 != empty).sum()))

    fast = _fast_deviation(core, time0, is_setup)
    return SingleArrivalArrays(mode, time0.tolist(), from0.tolist(),
                               fast=fast)
