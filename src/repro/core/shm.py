"""repro.core.shm — the zero-copy shared-memory plane.

The process executor used to re-pickle the timing graph for every task,
so multi-core scaling flattened almost immediately: fork + pickle cost
grew with design size while per-task work stayed level-sized.  This
module decouples the two.  A publisher (the engine, or a
:class:`~repro.pipeline.session.CpprSession`) copies the flat numpy
columns of :class:`~repro.core.arrays.CoreStructure` /
:class:`~repro.core.arrays.CoreValues` into named
``multiprocessing.shared_memory`` segments **once**; workers receive
only a tiny picklable :class:`BufferLayout` descriptor over the pipe and
map read-only views lazily, caching the attachment for the lifetime of
the worker process.

Segment format
--------------
Every segment starts with a 64-byte header whose first 8 bytes are an
``int64`` *version slot*; column payloads follow, each aligned to a
64-byte boundary.  The publisher stamps the slot at publish time and
in-place updates (ECO value patches) bump it, so a reader holding a
descriptor minted *before* an update detects the mismatch
(:class:`~repro.exceptions.ShmStaleError`) instead of silently serving
values its query never saw.

Lifecycle
---------
A process-lifetime :class:`SegmentRegistry` tracks every segment this
process created or attached, reference-counts releases, and unlinks
owned segments on interpreter exit (``atexit``) — and eagerly on
``BrokenProcessPool`` recovery via :func:`SegmentRegistry.sweep`.  Fork
children inherit the registry dict but never unlink: unlink is guarded
by the creator's pid.  The registry is also a context manager
(``with SegmentRegistry() as reg: ...`` sweeps on exit) for tests.

Fault sites
-----------
``shm.attach`` fires on the genuine-attach and fork-inherited read
paths (never for the publishing process itself), modelling a platform
refusing the mapping; armed with ``times=inf`` it makes
:func:`available` report ``False``, which is how CI simulates a
platform without ``shared_memory`` entirely.  ``shm.stale`` fires just
before version validation on the same paths.  Both raise
:class:`~repro.exceptions.ShmError` subclasses that the resilient
scheduler treats as ordinary task failures, so the
process -> thread -> serial ladder keeps working.
"""

from __future__ import annotations

import atexit
import contextlib as _contextlib
import os
import signal as _signal
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro import faults
from repro.exceptions import ShmAttachError, ShmStaleError
from repro.obs import metrics as _metrics

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:  # pragma: no cover - absent on some exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Whether this interpreter can host the memory plane at all.  The
#: plane is numpy-only by construction: the scalar backend has no flat
#: columns to map, and degrades through the ordinary pickling path.
HAVE_SHM = _np is not None and _shared_memory is not None

#: Segment header size; the first 8 bytes are the ``int64`` version slot.
HEADER_BYTES = 64

#: Column payloads are aligned to this boundary (cache-line friendly,
#: and satisfies every numpy dtype's alignment requirement).
ALIGNMENT = 64

_SEGMENT_BYTES = _metrics.REGISTRY.gauge(
    "shm.segment_bytes", labels=("kind",),
    help="Live shared-memory bytes tracked by this process's "
         "SegmentRegistry, by segment kind")

__all__ = [
    "ALIGNMENT",
    "BufferLayout",
    "ColumnSpec",
    "HAVE_SHM",
    "HEADER_BYTES",
    "REGISTRY",
    "SegmentRegistry",
    "available",
    "install_signal_handlers",
    "read_version",
]


def available() -> bool:
    """Whether the shared-memory plane should be used right now.

    ``False`` when the platform lacks ``shared_memory``/numpy — or when
    the ``shm.attach`` fault site is armed *unbounded* (``times=inf``),
    which is the supported way to simulate such a platform in CI: every
    attach would fail forever, so the engine skips the plane entirely
    and exercises the legacy pickling fallback.
    """
    if not HAVE_SHM:
        return False
    spec = faults.site_armed("shm.attach")
    if spec is not None and spec.times is None:
        return False
    return True


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Location of one flat column inside a segment.

    ``dtype`` is the numpy dtype *string* (``"float64"``, ``"int32"``)
    so the spec pickles without importing numpy on the wire.
    """

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "dtype": self.dtype,
                "shape": list(self.shape), "offset": self.offset}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ColumnSpec":
        return cls(name=data["name"], dtype=data["dtype"],
                   shape=tuple(data["shape"]), offset=data["offset"])


@dataclass(frozen=True, slots=True)
class BufferLayout:
    """The picklable wire descriptor for one published segment.

    This — not the arrays — is what crosses the process pipe: segment
    name, total size, a :class:`ColumnSpec` per column, the version the
    publisher stamped, and a small ``meta`` mapping for
    publisher-specific scalars (e.g. batched seed counts).  Schema:
    ``repro.core/shm-layout@1`` via :meth:`to_dict`.
    """

    segment: str
    nbytes: int
    kind: str
    version: int
    columns: tuple[ColumnSpec, ...]
    meta: tuple[tuple[str, Any], ...] = field(default=())

    def column(self, name: str) -> ColumnSpec:
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise KeyError(f"segment {self.segment!r} has no column {name!r}")

    @property
    def meta_dict(self) -> dict[str, Any]:
        return dict(self.meta)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.core/shm-layout@1",
            "segment": self.segment,
            "nbytes": self.nbytes,
            "kind": self.kind,
            "version": self.version,
            "columns": [spec.to_dict() for spec in self.columns],
            "meta": {key: value for key, value in self.meta},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BufferLayout":
        return cls(
            segment=data["segment"],
            nbytes=data["nbytes"],
            kind=data["kind"],
            version=data["version"],
            columns=tuple(ColumnSpec.from_dict(col)
                          for col in data["columns"]),
            meta=tuple(sorted(dict(data.get("meta", {})).items())),
        )


def read_version(buf) -> int:
    """The ``int64`` version slot at the head of a segment buffer."""
    return int(_np.frombuffer(buf, dtype=_np.int64, count=1)[0])


@_contextlib.contextmanager
def _attach_untracked():
    """Keep a pure attach out of the resource tracker's books.

    Python < 3.13 registers *attached* segments with the resource
    tracker exactly like created ones, so a worker exiting would unlink
    segments it does not own (and warn about leaked resources it never
    leaked).  Worse, fork-pool workers share the parent's tracker
    process, whose cache is a *set*: a worker's redundant register
    collapses into the creator's entry and the later unregister pair
    then spews ``KeyError`` tracebacks from the tracker.  Suppressing
    registration during the attach (instead of unregistering after)
    leaves the tracker's books exactly as the creator wrote them —
    ownership here is the registry's job, not the tracker's.
    """
    try:  # pragma: no cover - interpreter-internal API
        from multiprocessing import resource_tracker
    except Exception:
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        yield
    finally:
        resource_tracker.register = original


class _Entry:
    """Registry bookkeeping for one tracked segment."""

    __slots__ = ("shm", "kind", "creator_pid", "nbytes", "refs")

    def __init__(self, shm, kind: str, creator_pid: int,
                 nbytes: int) -> None:
        self.shm = shm
        self.kind = kind
        self.creator_pid = creator_pid
        self.nbytes = nbytes
        self.refs = 1


class SegmentRegistry:
    """Tracks, reference-counts, and unlinks shared-memory segments.

    One instance (:data:`REGISTRY`) lives for the whole process and is
    swept at interpreter exit.  Entries carry the *creator pid*: a fork
    child inherits the dict, but :meth:`release` only unlinks when the
    current process created the segment, so worker exits can never tear
    down the parent's plane.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        self._seq = 0
        self._gauge_kinds: set[str] = set()

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.sweep()

    # -- internals -------------------------------------------------------

    def _next_name(self) -> str:
        with self._lock:
            self._seq += 1
            return f"repro-{os.getpid()}-{self._seq}"

    def _gauge_refresh_locked(self) -> None:
        totals: dict[str, int] = {}
        for entry in self._entries.values():
            totals[entry.kind] = totals.get(entry.kind, 0) + entry.nbytes
        seen = set(totals)
        seen.update(self._gauge_kinds)
        for kind in seen:
            _SEGMENT_BYTES.set(totals.get(kind, 0), kind=kind)
        self._gauge_kinds = set(totals)

    def _check_version(self, layout: BufferLayout, buf,
                       expected_version: int | None) -> None:
        if expected_version is None:
            return
        actual = read_version(buf)
        if actual != expected_version:
            raise ShmStaleError(
                f"segment {layout.segment!r} is at version {actual}, "
                f"but the descriptor was minted at version "
                f"{expected_version}")

    def _column_views(self, layout: BufferLayout, buf,
                      writable: bool) -> dict:
        views = {}
        for spec in layout.columns:
            view = _np.ndarray(spec.shape, dtype=_np.dtype(spec.dtype),
                               buffer=buf, offset=spec.offset)
            view.flags.writeable = writable
            views[spec.name] = view
        return views

    # -- publishing ------------------------------------------------------

    def publish(self, kind: str, columns: Mapping[str, Any],
                version: int = 0,
                meta: Mapping[str, Any] | None = None,
                ) -> tuple[BufferLayout, dict]:
        """Create a segment holding ``columns`` and return its plane.

        Returns ``(layout, views)`` where ``views`` maps column name to
        a *writable* numpy array backed by the segment — the publisher
        keeps these as its live arrays so later in-place updates are
        visible to every attached reader (after a version bump).
        """
        if not HAVE_SHM:
            raise ShmAttachError(
                "shared memory is unavailable on this platform")
        specs = []
        offset = HEADER_BYTES
        arrays = {}
        for name, array in columns.items():
            array = _np.ascontiguousarray(array)
            arrays[name] = array
            specs.append(ColumnSpec(name=name, dtype=str(array.dtype),
                                    shape=tuple(array.shape),
                                    offset=offset))
            offset += array.nbytes
            offset = (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
        nbytes = max(offset, HEADER_BYTES)
        install_signal_handlers()
        segment = self._next_name()
        shm = _shared_memory.SharedMemory(
            name=segment, create=True, size=nbytes)
        header = _np.ndarray((1,), dtype=_np.int64, buffer=shm.buf)
        header[0] = version
        layout = BufferLayout(
            segment=segment, nbytes=nbytes, kind=kind, version=version,
            columns=tuple(specs),
            meta=tuple(sorted((meta or {}).items())))
        views = {}
        for spec in layout.columns:
            view = _np.ndarray(spec.shape, dtype=_np.dtype(spec.dtype),
                               buffer=shm.buf, offset=spec.offset)
            view[...] = arrays[spec.name]
            views[spec.name] = view
        with self._lock:
            self._entries[segment] = _Entry(shm, kind, os.getpid(), nbytes)
            self._gauge_refresh_locked()
        return layout, views

    def version_slot(self, layout: BufferLayout):
        """The writable 1-element ``int64`` version array (owner only)."""
        with self._lock:
            entry = self._entries.get(layout.segment)
        if entry is None or entry.creator_pid != os.getpid():
            raise ShmAttachError(
                f"this process does not own segment {layout.segment!r}")
        return _np.ndarray((1,), dtype=_np.int64, buffer=entry.shm.buf)

    # -- attaching -------------------------------------------------------

    def views(self, layout: BufferLayout,
              expected_version: int | None = None) -> dict:
        """Resolve ``layout`` to column arrays in this process.

        Three paths, cheapest first:

        * **owner** — this process published the segment: trusted live
          buffer, no fault checks, version still validated so a stale
          descriptor is caught even in-process.
        * **inherited** — a fork child whose registry dict (and mmap)
          came from the owner: the pages are genuinely shared, but the
          read is subject to ``shm.attach`` / ``shm.stale`` chaos like
          any worker.
        * **attach** — map the named segment fresh, cache it in the
          registry so subsequent tasks in this worker reuse the
          mapping.

        Returned views are read-only except on the owner path's
        original publish views (which are not re-derived here).
        """
        with self._lock:
            entry = self._entries.get(layout.segment)
        if entry is not None and entry.creator_pid == os.getpid():
            self._check_version(layout, entry.shm.buf, expected_version)
            return self._column_views(layout, entry.shm.buf, writable=False)
        if entry is not None:
            faults.check("shm.attach")
            faults.check("shm.stale")
            self._check_version(layout, entry.shm.buf, expected_version)
            return self._column_views(layout, entry.shm.buf, writable=False)
        faults.check("shm.attach")
        try:
            with self._lock, _attach_untracked():
                shm = _shared_memory.SharedMemory(name=layout.segment)
        except Exception as exc:
            raise ShmAttachError(
                f"cannot attach segment {layout.segment!r}: {exc}") from exc
        with self._lock:
            # Another thread may have raced the attach; keep the first.
            entry = self._entries.get(layout.segment)
            if entry is None:
                entry = _Entry(shm, layout.kind, -1, layout.nbytes)
                self._entries[layout.segment] = entry
                shm = None
                self._gauge_refresh_locked()
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
        faults.check("shm.stale")
        self._check_version(layout, entry.shm.buf, expected_version)
        return self._column_views(layout, entry.shm.buf, writable=False)

    # -- releasing -------------------------------------------------------

    def retain(self, segment: str) -> None:
        """Bump ``segment``'s reference count (pairs with release)."""
        with self._lock:
            entry = self._entries.get(segment)
            if entry is not None:
                entry.refs += 1

    def release(self, segment: str) -> None:
        """Drop one reference; close (and unlink, if owner) at zero.

        Safe to call for unknown segments (no-op) and safe against
        live numpy views: a ``BufferError`` on close defers the munmap
        to garbage collection, but the unlink still happens — POSIX
        keeps the mapping valid until the last reference drops.
        """
        with self._lock:
            entry = self._entries.get(segment)
            if entry is None:
                return
            entry.refs -= 1
            if entry.refs > 0:
                return
            del self._entries[segment]
            self._gauge_refresh_locked()
        owner = entry.creator_pid == os.getpid()
        try:
            entry.shm.close()
        except BufferError:
            pass
        if owner:
            try:
                entry.shm.unlink()
            except FileNotFoundError:
                pass

    def sweep(self) -> None:
        """Release every tracked segment (exit / broken-pool recovery)."""
        with self._lock:
            segments = list(self._entries)
            for entry in self._entries.values():
                entry.refs = 1
        for segment in segments:
            self.release(segment)

    def sweep_kind(self, kind: str) -> None:
        """Release every tracked segment of one ``kind``."""
        with self._lock:
            segments = [name for name, entry in self._entries.items()
                        if entry.kind == kind]
            for name in segments:
                self._entries[name].refs = 1
        for segment in segments:
            self.release(segment)

    # -- introspection ---------------------------------------------------

    def segments(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def owned_segments(self) -> tuple[str, ...]:
        pid = os.getpid()
        with self._lock:
            return tuple(name for name, entry in self._entries.items()
                         if entry.creator_pid == pid)

    def tracked_bytes(self, kind: str | None = None) -> int:
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values()
                       if kind is None or entry.kind == kind)


#: The process-lifetime registry; swept at interpreter exit.
REGISTRY = SegmentRegistry()
atexit.register(REGISTRY.sweep)

#: Signals whose default disposition kills the process *without*
#: running ``atexit`` hooks, which would orphan owned ``/dev/shm``
#: segments until a reboot.
_SWEEP_SIGNALS = (_signal.SIGTERM, _signal.SIGINT)

_HANDLERS_INSTALLED = False
_PREVIOUS_HANDLERS: dict[int, Any] = {}


def _signal_sweep(signum, frame) -> None:
    """Sweep owned segments, then deliver the signal's original fate."""
    REGISTRY.sweep()
    previous = _PREVIOUS_HANDLERS.get(signum)
    if callable(previous):
        previous(signum, frame)
        return
    if previous is _signal.SIG_IGN:
        return
    # SIG_DFL: restore the default disposition and re-raise so the
    # process still dies by the signal with the proper wait status.
    _signal.signal(signum, _signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def install_signal_handlers() -> bool:
    """Chain SIGTERM/SIGINT handlers that sweep owned segments.

    ``atexit`` does not run when the process dies by an unhandled
    signal, so a publisher killed with SIGTERM would leak its segments.
    The installed handlers are *chained* (a previously installed Python
    handler still runs afterwards) and *re-raising* (a default-action
    signal still terminates the process, preserving the wait status
    observed by the parent).  Idempotent; called automatically on first
    publish.  Returns ``False`` without installing anything when called
    off the main thread, where CPython forbids ``signal.signal`` — the
    main thread's handlers, if any, stay in place.
    """
    global _HANDLERS_INSTALLED
    if _HANDLERS_INSTALLED:
        return True
    if threading.current_thread() is not threading.main_thread():
        return False
    for signum in _SWEEP_SIGNALS:
        previous = _signal.getsignal(signum)
        if previous is _signal_sweep:  # pragma: no cover - paranoia
            continue
        _PREVIOUS_HANDLERS[signum] = previous
        _signal.signal(signum, _signal_sweep)
    _HANDLERS_INSTALLED = True
    return True
