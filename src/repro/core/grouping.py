"""Vectorized per-level node grouping (``backend="array"``).

``group_for_level`` in :mod:`repro.cppr.grouping` answers, for every
flip-flop, "which ``f_{d+1}`` subtree do you hang from, and what is the
credit of your ``f_d`` ancestor?" — one binary-lifting walk per leaf.
This module answers the same queries for *all* leaves at once: the
clock tree's binary-lifting table is flattened into a ``(log D, n)``
numpy matrix once per tree (cached on it), and one ancestor lookup per
level is ``log D`` fancy-indexing steps over the whole leaf set.

Results are integer tree-node ids and exact float credits — identical
to the scalar path, which the equivalence suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.clocktree import ClockTree

__all__ = ["group_for_level_array", "tree_lift"]


class _TreeLift:
    """Numpy mirror of a clock tree's ancestor table and leaf set."""

    __slots__ = ("up", "leaf_nodes", "leaf_depths", "leaf_ffs",
                 "credits")

    def __init__(self, tree: ClockTree) -> None:
        n = len(tree)
        table = tree._table
        self.up = np.asarray(table._up, dtype=np.int64)
        leaves = np.asarray(tree.leaves(), dtype=np.int64)
        self.leaf_nodes = leaves
        self.leaf_depths = np.asarray(
            [table.depth(int(node)) for node in leaves], dtype=np.int64)
        self.leaf_ffs = np.asarray(
            [tree.ff_of_node[int(node)] for node in leaves],
            dtype=np.int64)
        self.credits = np.asarray(tree._credits, dtype=np.float64)


def tree_lift(tree: ClockTree) -> _TreeLift:
    """The tree's cached numpy lifting mirror, building it on first use."""
    lift = tree._core_lift
    if lift is None:
        lift = _TreeLift(tree)
        tree._core_lift = lift
    return lift


def _ancestors_at_depth(lift: _TreeLift, nodes: np.ndarray,
                        depths: np.ndarray, depth: int) -> np.ndarray:
    """``f_depth(node)`` for every node; callers ensure depth is valid."""
    idx = nodes.copy()
    k = depths - depth
    for bit in range(lift.up.shape[0]):
        step = (k >> bit) & 1 == 1
        if step.any():
            idx[step] = lift.up[bit][idx[step]]
    return idx


def group_for_level_array(tree: ClockTree, level: int,
                          num_ffs: int) -> "LevelGrouping":
    """Array-backend :func:`repro.cppr.grouping.group_for_level`."""
    from repro.cppr.grouping import LevelGrouping

    if level < 0:
        raise ValueError(f"level must be non-negative, got {level}")
    lift = tree_lift(tree)
    group = np.full(num_ffs, -1, dtype=np.int64)
    offset = np.zeros(num_ffs, dtype=np.float64)
    mask = lift.leaf_depths > level
    if mask.any():
        nodes = lift.leaf_nodes[mask]
        depths = lift.leaf_depths[mask]
        ffs = lift.leaf_ffs[mask]
        group[ffs] = _ancestors_at_depth(lift, nodes, depths, level + 1)
        offset[ffs] = lift.credits[
            _ancestors_at_depth(lift, nodes, depths, level)]
    return LevelGrouping(level, group.tolist(), offset.tolist())
