"""Vectorized per-level node grouping (``backend="array"``).

``group_for_level`` in :mod:`repro.cppr.grouping` answers, for every
flip-flop, "which ``f_{d+1}`` subtree do you hang from, and what is the
credit of your ``f_d`` ancestor?" — one binary-lifting walk per leaf.
This module answers the same queries for *all* leaves at once: the
clock tree's binary-lifting table is flattened into a ``(log D, n)``
numpy matrix once per tree (cached on it), and one ancestor lookup per
level is ``log D`` fancy-indexing steps over the whole leaf set.

:func:`group_matrix` goes one step further for the batched level sweep
(:mod:`repro.core.batched`): every level's grouping column at once as
one ``(D, n_ff)`` matrix, from a single bottom-up parent walk over all
leaves — each leaf's full ancestor chain is materialized once, so the
per-level rows are plain row reads instead of ``D`` separate lifting
walks.

Results are integer tree-node ids and exact float credits — identical
to the scalar path, which the equivalence suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.clocktree import ClockTree

__all__ = ["group_for_level_array", "group_matrix", "tree_lift"]


class _TreeLift:
    """Numpy mirror of a clock tree's ancestor table and leaf set."""

    __slots__ = ("up", "leaf_nodes", "leaf_depths", "leaf_ffs",
                 "credits")

    def __init__(self, tree: ClockTree) -> None:
        n = len(tree)
        table = tree._table
        self.up = np.asarray(table._up, dtype=np.int64)
        leaves = np.asarray(tree.leaves(), dtype=np.int64)
        self.leaf_nodes = leaves
        self.leaf_depths = np.asarray(
            [table.depth(int(node)) for node in leaves], dtype=np.int64)
        self.leaf_ffs = np.asarray(
            [tree.ff_of_node[int(node)] for node in leaves],
            dtype=np.int64)
        self.credits = np.asarray(tree._credits, dtype=np.float64)


def tree_lift(tree: ClockTree) -> _TreeLift:
    """The tree's cached numpy lifting mirror, building it on first use."""
    lift = tree._core_lift
    if lift is None:
        lift = _TreeLift(tree)
        tree._core_lift = lift
    return lift


def _ancestors_at_depth(lift: _TreeLift, nodes: np.ndarray,
                        depths: np.ndarray, depth: int) -> np.ndarray:
    """``f_depth(node)`` for every node; callers ensure depth is valid."""
    idx = nodes.copy()
    k = depths - depth
    for bit in range(lift.up.shape[0]):
        step = (k >> bit) & 1 == 1
        if step.any():
            idx[step] = lift.up[bit][idx[step]]
    return idx


def group_for_level_array(tree: ClockTree, level: int,
                          num_ffs: int) -> "LevelGrouping":
    """Array-backend :func:`repro.cppr.grouping.group_for_level`."""
    from repro.cppr.grouping import LevelGrouping

    if level < 0:
        raise ValueError(f"level must be non-negative, got {level}")
    lift = tree_lift(tree)
    group = np.full(num_ffs, -1, dtype=np.int64)
    offset = np.zeros(num_ffs, dtype=np.float64)
    mask = lift.leaf_depths > level
    if mask.any():
        nodes = lift.leaf_nodes[mask]
        depths = lift.leaf_depths[mask]
        ffs = lift.leaf_ffs[mask]
        group[ffs] = _ancestors_at_depth(lift, nodes, depths, level + 1)
        offset[ffs] = lift.credits[
            _ancestors_at_depth(lift, nodes, depths, level)]
    return LevelGrouping(level, group.tolist(), offset.tolist())


def group_matrix(tree: ClockTree,
                 num_ffs: int) -> tuple[np.ndarray, np.ndarray]:
    """All ``D`` grouping columns at once: ``(group, offset)`` matrices.

    Row ``d`` of the ``(D, num_ffs)`` result holds exactly what
    :func:`group_for_level_array` computes for level ``d``: the
    ``f_{d+1}`` group node id (``-1`` for non-participants) and the
    ``credit(f_d)`` launch offset (``0.0`` for non-participants).

    Instead of ``D`` binary-lifting walks, one bottom-up parent walk
    materializes every leaf's full ancestor chain (``anc[d, j]`` = the
    depth-``d`` ancestor of leaf ``j``) in ``O(max_depth)`` vectorized
    steps; each level's row is then two fancy-indexed reads.  Group ids
    are exact integers and offsets exact credit floats, so the rows are
    bit-for-bit the per-level results.
    """
    lift = tree_lift(tree)
    num_levels = tree.num_levels
    gm = np.full((num_levels, num_ffs), -1, dtype=np.int64)
    om = np.zeros((num_levels, num_ffs), dtype=np.float64)
    num_leaves = len(lift.leaf_nodes)
    if num_levels == 0 or num_leaves == 0:
        return gm, om

    max_depth = int(lift.leaf_depths.max())
    anc = np.full((max_depth + 1, num_leaves), -1, dtype=np.int64)
    parent = lift.up[0]
    cur = lift.leaf_nodes.copy()
    depth = lift.leaf_depths.copy()
    cols = np.arange(num_leaves)
    while True:
        active = depth >= 0
        if not active.any():
            break
        anc[depth[active], cols[active]] = cur[active]
        cur[active] = parent[cur[active]]
        depth -= 1

    for level in range(num_levels):
        mask = lift.leaf_depths > level
        if not mask.any():
            continue
        ffs = lift.leaf_ffs[mask]
        gm[level, ffs] = anc[level + 1, mask]
        om[level, ffs] = lift.credits[anc[level, mask]]
    return gm, om
