"""Level-batched grouped propagation: one ``(D, n)`` sweep for all levels.

The engine's per-level candidate passes (``paths_at_level`` for
``d = 0 .. D-1``) differ only in their *inputs*: the grouping column and
the per-FF launch offset.  The graph topology, the topological edge
schedule, the edge delays, and the deviation-cost formula are identical
across levels.  This module exploits that: instead of ``D`` independent
forward sweeps it relaxes each topological level bucket for **all**
``D`` cut-levels simultaneously.  The dual-tuple state is *stacked* —
one ``(2D, n_pins)`` matrix per component, best-tuple rows ``0..D-1``
and different-group-fallback rows ``D..2D-1``, with the public
``time0``/``time1`` etc. exposed as row-range views — so each gather,
candidate computation, and segment reduction is ONE numpy call for
both halves of all levels.  That matters because at realistic ``D``
the sweep is dispatch-bound, not bandwidth-bound.

Segment reductions avoid per-segment ``reduceat`` dispatch where
geometry allows: ragged destination segments are duplicate-padded to a
dense ``(rows, nseg, w)`` block (``_bucket_pads``) and reduced along
the last axis.  Padding repeats a segment's *first* edge index, which
never changes a ``max``/``min``, and in the argmin-recovery pass the
duplicate carries that first edge's slot — already the segment's
smallest candidate — so tie-breaks are unchanged.  Buckets whose
destinations provably still hold their initial empty state (a static
scan over the bucket order, also in ``_bucket_pads``) skip the merge
tournament entirely and scatter the batch summary directly.

Because the batch axis multiplies every per-element cost by ``D``, this
sweep also trims the per-element work the 1-D pass can afford to waste:

* no pair expansion — instead of interleaving each edge's two candidate
  slots into a ``(D, 2m)`` matrix, the best-tuple and fallback-tuple
  halves are reduced separately over the edge-granularity segments
  (``estarts``/``eseg``) and merged per segment.  The interleaved
  "earliest slot achieving the extremum" tie-break is recovered
  exactly: the earlier edge wins, and on an equal-edge tie the
  pre-swap rule degenerates to the smaller group (both slots of one
  edge share a from-pin, and a best/fallback time tie makes the swap
  predicate a pure group comparison) — see ``_first_at``;
* ``int32`` from-pin/group state — pin and group ids are well inside
  32 bits, so four of the six state matrices (and all slot-index
  scratch) carry half the memory traffic.  Converting a row with
  ``tolist`` yields the same Python ints as the 1-D pass's ``int64``;
* the per-FF seed columns are built once and cached on the graph.

Bit-for-bit equivalence with the per-level sweeps (and hence with the
scalar reference) holds because every row of the batched state sees the
exact same IEEE-754 operation sequence as a standalone level-``d`` pass:

* seeds — ``(clock arrival + clk-to-q) ∓ launch offset`` with the same
  association, assigned directly (Q pins are distinct per flip-flop, so
  no seed merge is needed);
* relaxation — the same candidate times over the same pre-sorted
  :class:`~repro.core.arrays.LevelBucket` geometry; ``max``/``min``
  segment reductions are exact, and the two-half argmin merge recovers
  the same (time, from-pin, group) tie-break winner as the interleaved
  argmin (see above);
* the element-wise dual-state combine processes every segment with a
  validity guard instead of filtering active segments per row (activity
  differs across rows); invalid batches provably leave the row's state
  untouched;
* deviation costs — the same three-operation column formula, evaluated
  once as a ``(D, m)`` matrix.

The result object serves each level's slice back as the ordinary
:class:`~repro.cppr.propagation.DualArrivalArrays` /
:class:`~repro.core.propagate.FastDeviation` pair, so the deviation
search and everything downstream are reused unchanged.

The same stacking generalizes along a second axis:
:func:`propagate_dual_batched_corners` fuses ``C`` delay corners that
share one :class:`~repro.core.arrays.CoreStructure` into a single
``(C * 2D, n)`` sweep — corner ``c``'s rows are exactly the ``(2D, n)``
state its standalone sweep would hold, per-bucket delays broadcast from
a ``(C, m)`` stack, and the result is served back as ``C`` ordinary
:class:`BatchedLevels` slices.  See ``docs/MCMM.md``.

Observability: building emits one ``propagate.batched`` span with
``grouping`` / ``seeds`` / ``sweep`` / ``deviation_costs`` children,
the same ``propagation.seeds`` / ``propagation.pins_visited`` totals
the ``D`` separate passes would have emitted (empty levels contribute
zero to both, exactly like their skipped passes), and a per-level
breakdown under ``batched.seeds.level[d]`` /
``batched.pins_visited.level[d]``.
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.circuit.graph import TimingGraph
from repro.core.arrays import get_core
from repro.core.grouping import group_matrix
from repro.core.propagate import FastDeviation, _beats, _lex_beats
from repro.cppr.tuples import NO_GROUP, NO_NODE
from repro.obs import collector as _obs
from repro.sta.modes import AnalysisMode

__all__ = ["BatchedLevels", "propagate_dual_batched",
           "propagate_dual_batched_corners"]

_INF = float("inf")


class _LazyColumn:
    """Scalar access into one row of a batched state matrix.

    The fallback columns (``time1``/``from1``/``group1``) are consulted
    only when an ``auto()`` query's excluded group matches the pin's
    primary group — the rare case by design of the dual tuples — so
    eagerly converting the whole row with ``tolist`` (as the hot
    primary columns do) would cost more than every access it serves.
    ``.item()`` converts one element per query into the same Python
    scalar a list would have held.
    """

    __slots__ = ("row",)

    def __init__(self, row: np.ndarray) -> None:
        self.row = row

    def __getitem__(self, i):
        return self.row[i].item()

    def __len__(self) -> int:
        return len(self.row)


class BatchedLevels:
    """The batched sweep's result: per-level views over shared matrices.

    ``time0 .. group1`` are the ``(D, n_pins)`` dual-tuple matrices,
    ``cost0`` the ``(D, m_fanin)`` deviation-cost matrix; row ``d`` is
    exactly what a standalone level-``d`` array pass would produce.
    :meth:`arrays` materializes one row as the
    :class:`~repro.cppr.propagation.DualArrivalArrays` the deviation
    search consumes: the hot primary/cost columns as plain lists, the
    rarely-touched fallback columns as :class:`_LazyColumn` views (the
    fanin CSR columns are shared across levels).
    """

    __slots__ = ("mode", "num_levels", "groupings", "seed_counts",
                 "time0", "from0", "group0", "time1", "from1", "group1",
                 "cost0", "fanin_ptr", "fanin_src", "fanin_delay")

    def __init__(self, mode, num_levels, groupings, seed_counts,
                 time0, from0, group0, time1, from1, group1,
                 cost0, fanin_ptr, fanin_src, fanin_delay) -> None:
        self.mode = mode
        self.num_levels = num_levels
        self.groupings = groupings
        self.seed_counts = seed_counts
        self.time0 = time0
        self.from0 = from0
        self.group0 = group0
        self.time1 = time1
        self.from1 = from1
        self.group1 = group1
        self.cost0 = cost0
        self.fanin_ptr = fanin_ptr
        self.fanin_src = fanin_src
        self.fanin_delay = fanin_delay

    def grouping(self, level: int):
        """The level's :class:`~repro.cppr.grouping.LevelGrouping`."""
        return self.groupings[level]

    def num_seeds(self, level: int) -> int:
        """Participating flip-flops (= launch seeds) at ``level``."""
        return self.seed_counts[level]

    def arrays(self, level: int):
        """Level ``level``'s slice as ordinary dual-arrival arrays.

        The primary and cost columns the search touches on every edge
        or walk pin are eagerly converted to lists; the fallback
        columns are consulted only on an ``auto()`` group-exclusion
        miss — rare by design of the dual tuples — where a lazy
        per-element view is cheaper than the up-front ``tolist``.
        """
        from repro.cppr.propagation import DualArrivalArrays

        fast = FastDeviation(self.fanin_ptr, self.fanin_src,
                             self.fanin_delay,
                             self.cost0[level].tolist())
        return DualArrivalArrays(
            self.mode,
            self.time0[level].tolist(),
            self.from0[level].tolist(),
            self.group0[level].tolist(),
            _LazyColumn(self.time1[level]),
            _LazyColumn(self.from1[level]),
            _LazyColumn(self.group1[level]),
            fast=fast)


def _combine_dual_batched(state, levels, empty, is_setup, upd,
                          b0t, b0f, b0g, b1t, b1f, b1g, virgin):
    """2-D variant of :func:`repro.core.propagate._combine_dual`.

    ``state`` is the stacked ``(timeS, fromS, groupS)`` matrices —
    rows ``0..D-1`` the best tuple, rows ``D..2D-1`` the fallback —
    so each current-state gather is one numpy call for both halves.
    ``upd`` holds the bucket's distinct destination pins (columns);
    the batch summaries are ``(D, len(upd))``.  Unlike the 1-D pass —
    which filters inactive segments before combining — activity here
    differs per row, so every segment is processed and a per-element
    ``bvalid`` guard masks segments whose batch is empty for that row:
    with ``bvalid`` false the best keeps the current tuple, the losing
    "best" entering the fallback tournament is the empty batch best
    (never valid), and the row's own fallback wins its slot back, so
    the state is preserved exactly.

    ``virgin`` is the statically precomputed guarantee (see
    :func:`_bucket_pads`) that the destination columns still hold
    their initial empty state, making the merge a direct scatter.
    """
    timeS, fromS, groupS = state
    bvalid = b0t != empty
    if virgin:
        # Virgin destinations: the merge against all-empty state is the
        # batch summary itself.  The batch fallback is valid exactly
        # where non-empty and always differs from the batch best's
        # group, so it needs no re-masking.
        timeS[:levels, upd] = b0t
        fromS[:levels, upd] = np.where(bvalid, b0f, NO_NODE)
        groupS[:levels, upd] = np.where(bvalid, b0g, NO_GROUP)
        timeS[levels:, upd] = b1t
        fromS[levels:, upd] = b1f
        groupS[levels:, upd] = b1g
        return
    ctS = timeS[:, upd]
    cfS = fromS[:, upd]
    cgS = groupS[:, upd]
    c0t, c1t = ctS[:levels], ctS[levels:]
    c0f, c1f = cfS[:levels], cfS[levels:]
    c0g, c1g = cgS[:levels], cgS[levels:]
    bwin = bvalid & _lex_beats(is_setup, b0t, b0f, b0g, c0t, c0f, c0g)
    n0t = np.where(bwin, b0t, c0t)
    n0f = np.where(bwin, b0f, c0f)
    n0g = np.where(bwin, b0g, c0g)
    # Fallback tournament: losing best, then each side's fallback.
    rt = np.where(bwin, c0t, b0t)
    rf = np.where(bwin, c0f, b0f)
    rg = np.where(bwin, c0g, b0g)
    rv = (rt != empty) & (rg != n0g)
    for xt, xf, xg in ((c1t, c1f, c1g), (b1t, b1f, b1g)):
        xv = (xt != empty) & (xg != n0g)
        take = (xv & ~rv) | (xv & rv
                             & _lex_beats(is_setup, xt, xf, xg,
                                          rt, rf, rg))
        rt = np.where(take, xt, rt)
        rf = np.where(take, xf, rf)
        rg = np.where(take, xg, rg)
        rv = rv | xv
    timeS[:levels, upd] = n0t
    fromS[:levels, upd] = n0f
    groupS[:levels, upd] = n0g
    timeS[levels:, upd] = np.where(rv, rt, empty)
    fromS[levels:, upd] = np.where(rv, rf, NO_NODE)
    groupS[levels:, upd] = np.where(rv, rg, NO_GROUP)


def _first_at(t, g, bt, eseg, slots, sentinel, seg_min):
    """Earliest edge slot per segment achieving the extremum ``bt``.

    Returns ``(first, idx, group_at_idx)`` where ``first`` is the edge
    index, or ``sentinel`` (= the edge count) for segments in which
    this half never reaches ``bt``; the group is gathered at the
    clamped index and is garbage exactly where ``first`` is the
    sentinel (callers mask those via the sentinel comparison or the
    batch-validity guard).
    """
    pos = np.where(t == bt[:, eseg], slots, sentinel)
    first = seg_min(pos)
    idx = np.minimum(first, sentinel - 1)
    return first, idx, np.take_along_axis(g, idx, axis=1)


def _build_groupings(tree, gm, om):
    """Wrap the matrix rows as cached LevelGrouping objects.

    Rows are exactly what ``group_for_level(tree, d, n, "array")``
    computes, so they populate (and reuse) the tree's ``(level,
    "array")`` grouping cache.
    """
    from repro.cppr.grouping import LevelGrouping

    cache = tree._group_cache
    groupings = []
    for level in range(gm.shape[0]):
        key = (level, "array")
        grouping = cache.get(key)
        if grouping is None:
            grouping = LevelGrouping(level, gm[level].tolist(),
                                     om[level].tolist())
            cache[key] = grouping
        groupings.append(grouping)
    return groupings


def _bucket_pads(graph: TimingGraph, core):
    """Per-bucket padded-gather geometry, built once per graph.

    ``reduceat`` over ragged segments pays per-segment ufunc dispatch;
    a dense ``(D, nseg, w)`` axis reduction is far cheaper.  Each
    segment is padded to the bucket's widest segment ``w`` by
    *repeating its own first edge index* — duplicates of an element
    never change a ``max``/``min`` (the reduction still returns one of
    the segment's original IEEE-754 values, and in the argmin recovery
    the duplicate carries the first edge's original slot index, which
    is already the segment's minimum candidate) — so the padded
    reduction is bit-for-bit the reduceat result.

    Pad entries are ``None`` for single-segment buckets (they never
    reduce) and for buckets where padding would more than double the
    work (``w * nseg > 2 * m``); those keep the reduceat path.

    Each entry also carries the bucket's static *virginity*: whether
    its destination columns are guaranteed to still hold their initial
    empty state when the bucket combines — true unless a destination
    is a (potentially seeded) flip-flop Q pin or was already a
    destination of an earlier bucket.  This is conservative (an
    earlier bucket may have been skipped as all-empty at run time);
    non-virgin buckets take the full merge, which handles empty state
    correctly either way.
    """
    pads = getattr(graph, "_batched_pads", None)
    if pads is None:
        written = np.zeros(core.num_pins, dtype=bool)
        written[_ff_columns(graph)[0]] = True
        pads = []
        for b in core.level_buckets:
            virgin = not written[b.seg_dst].any()
            written[b.seg_dst] = True
            m = len(b.src)
            nseg = len(b.seg_dst)
            if nseg == m:
                pads.append((None, virgin))
                continue
            estarts = np.asarray(b.estarts, dtype=np.intp)
            sizes = np.append(estarts[1:], m) - estarts
            w = int(sizes.max())
            if w * nseg > 2 * m:
                pads.append((None, virgin))
                continue
            offs = np.arange(w, dtype=np.intp)
            idx = np.where(offs[None, :] >= sizes[:, None],
                           estarts[:, None],
                           estarts[:, None] + offs[None, :])
            pads.append(((idx.ravel(), nseg, w), virgin))
        graph._batched_pads = pads
    return pads


def _ff_columns(graph: TimingGraph):
    """Per-FF launch columns, built once and cached on the graph."""
    cols = getattr(graph, "_batched_ff_columns", None)
    if cols is None:
        num_ffs = graph.num_ffs
        q_pin = np.empty(num_ffs, dtype=np.int64)
        ck_pin = np.empty(num_ffs, dtype=np.int64)
        node = np.empty(num_ffs, dtype=np.int64)
        ctq_early = np.empty(num_ffs, dtype=np.float64)
        ctq_late = np.empty(num_ffs, dtype=np.float64)
        for ff in graph.ffs:
            i = ff.index
            q_pin[i] = ff.q_pin
            ck_pin[i] = ff.ck_pin
            node[i] = ff.tree_node
            ctq_early[i] = ff.clk_to_q_early
            ctq_late[i] = ff.clk_to_q_late
        cols = (q_pin, ck_pin, node, ctq_early, ctq_late)
        graph._batched_ff_columns = cols
    return cols


def _sweep(graph: TimingGraph, core, state, levels, empty, is_setup,
           candidates) -> None:
    """Relax every level bucket over the stacked dual-tuple state.

    ``levels`` is the row-half size of ``state`` (``D`` for a
    single-graph sweep, ``C * D`` for the corner-fused one) and
    ``candidates(bi, b)`` produces bucket ``bi``'s stacked candidate
    matrix — the current source state plus the bucket's edge delays,
    shaped ``(2 * levels, m)``.  Everything else here — segment
    geometry, reductions, argmin recovery, the dual-state combine — is
    row-count agnostic, which is what lets
    :func:`propagate_dual_batched_corners` reuse this body unchanged
    for ``C`` stacked corners.
    """
    timeS, fromS, groupS = state
    reduce_best = np.maximum.reduceat if is_setup else np.minimum.reduceat
    pick_best = np.maximum if is_setup else np.minimum
    slots_cache: dict[int, np.ndarray] = {}
    pads = _bucket_pads(graph, core)
    for bi, b in enumerate(core.level_buckets):
        pad, virgin = pads[bi]
        src = b.src
        tS = candidates(bi, b)
        ta, tb = tS[:levels], tS[levels:]
        # Buckets whose sources carry no fallback state yet
        # (common near the launch seeds) skip the whole
        # fallback half: with every B slot empty the merged
        # best is the A-side result and every B-side
        # candidate loses its tie-break or validity guard.
        has_b = (tb != empty).any()
        m = len(src)
        src32 = src.astype(np.int32)
        if len(b.seg_dst) == m:
            # Every destination has exactly one edge in this
            # bucket, so the segment extremum degenerates to
            # the edge's two-slot tournament — the pre-swap
            # rule of the 1-D pass, applied element-wise
            # with no reductions or argmin recovery at all.
            if not has_b:
                if not (ta != empty).any():
                    continue
                ga = groupS[:levels, src]
                _combine_dual_batched(
                    state, levels, empty, is_setup,
                    b.seg_dst, ta, src32, ga,
                    empty, NO_NODE, NO_GROUP, virgin)
                continue
            gS = groupS[:, src]
            ga, gb = gS[:levels], gS[levels:]
            useb = (_beats(is_setup, tb, ta)
                    | ((tb == ta) & (gb < ga)))
            bt = np.where(useb, tb, ta)
            if not (bt != empty).any():
                continue
            bg = np.where(useb, gb, ga)
            # The losing slot is the fallback iff its group
            # differs (the winner's group is ``bg`` itself).
            ft = np.where(ga != gb,
                          np.where(useb, ta, tb), empty)
            has_fb = ft != empty
            fallback_f = np.where(has_fb, src32, NO_NODE)
            fallback_g = np.where(
                has_fb, np.where(useb, ga, gb), NO_GROUP)
            _combine_dual_batched(state, levels, empty,
                                  is_setup, b.seg_dst,
                                  bt, src32, bg,
                                  ft, fallback_f, fallback_g,
                                  virgin)
            continue
        estarts = b.estarts
        if pad is not None:
            # Duplicate-padded dense reduction (see
            # _bucket_pads): same values, no per-segment
            # reduceat dispatch.
            pad_idx, nseg, w = pad
            if is_setup:
                def seg_best(x):
                    return x[:, pad_idx].reshape(
                        len(x), nseg, w).max(axis=2)
            else:
                def seg_best(x):
                    return x[:, pad_idx].reshape(
                        len(x), nseg, w).min(axis=2)

            def seg_min(x):
                return x[:, pad_idx].reshape(
                    len(x), nseg, w).min(axis=2)
        else:
            def seg_best(x):
                return reduce_best(x, estarts, axis=1)

            def seg_min(x):
                return np.minimum.reduceat(x, estarts,
                                           axis=1)
        slots = slots_cache.get(m)
        if slots is None:
            slots = slots_cache[m] = np.arange(
                m, dtype=np.int32)
        sentinel = np.int32(m)
        eseg = b.eseg
        if not has_b:
            bt = seg_best(ta)
            if not (bt != empty).any():
                continue
            ga = groupS[:levels, src]
            _fa, ia, gaw = _first_at(ta, ga, bt, eseg,
                                     slots, sentinel, seg_min)
            bf = src32[ia]
            bg = gaw
            t2a = np.where(ga != bg[:, eseg], ta, empty)
            ft = seg_best(t2a)
            if not (ft != empty).any():
                _combine_dual_batched(
                    state, levels, empty, is_setup,
                    b.seg_dst, bt, bf, bg,
                    empty, NO_NODE, NO_GROUP, virgin)
                continue
            _fa, ia, gaw = _first_at(t2a, ga, ft, eseg,
                                     slots, sentinel, seg_min)
            has_fb = ft != empty
            fallback_f = np.where(has_fb, src32[ia], NO_NODE)
            fallback_g = np.where(has_fb, gaw, NO_GROUP)
            _combine_dual_batched(state, levels, empty,
                                  is_setup, b.seg_dst,
                                  bt, bf, bg,
                                  ft, fallback_f, fallback_g,
                                  virgin)
            continue
        # Both halves reduce and argmin-recover in single
        # stacked calls; the (2, levels, m) reshape views let
        # the per-half extremum broadcast without a tiled copy.
        btS = seg_best(tS)
        bt = pick_best(btS[:levels], btS[levels:])
        if not (bt != empty).any():
            continue
        gS = groupS[:, src]
        tS3 = tS.reshape(2, levels, m)
        pos = np.where(tS3 == bt[:, eseg][None], slots,
                       sentinel).reshape(2 * levels, m)
        first = seg_min(pos)
        idx = np.minimum(first, sentinel - 1)
        gw = np.take_along_axis(gS, idx, axis=1)
        fa, fb = first[:levels], first[levels:]
        gaw, gbw = gw[:levels], gw[levels:]
        useb = (fb < fa) | ((fb == fa) & (gbw < gaw))
        bf = src32[np.where(useb, idx[levels:], idx[:levels])]
        bg = np.where(useb, gbw, gaw)
        # Batch fallback: most pessimistic slot in a group
        # different from the batch best's.
        t2S = np.where(gS.reshape(2, levels, m)
                       != bg[:, eseg][None],
                       tS3, empty).reshape(2 * levels, m)
        ftS = seg_best(t2S)
        ft = pick_best(ftS[:levels], ftS[levels:])
        if not (ft != empty).any():
            # No segment produced a different-group
            # fallback anywhere: skip the argmin recovery.
            _combine_dual_batched(
                state, levels, empty, is_setup,
                b.seg_dst, bt, bf, bg,
                empty, NO_NODE, NO_GROUP, virgin)
            continue
        pos = np.where(t2S.reshape(2, levels, m)
                       == ft[:, eseg][None], slots,
                       sentinel).reshape(2 * levels, m)
        first = seg_min(pos)
        idx = np.minimum(first, sentinel - 1)
        gw = np.take_along_axis(gS, idx, axis=1)
        fa, fb = first[:levels], first[levels:]
        gaw, gbw = gw[:levels], gw[levels:]
        useb = (fb < fa) | ((fb == fa) & (gbw < gaw))
        has_fb = ft != empty
        fallback_f = np.where(
            has_fb,
            src32[np.where(useb, idx[levels:], idx[:levels])],
            NO_NODE)
        fallback_g = np.where(
            has_fb, np.where(useb, gbw, gaw), NO_GROUP)
        _combine_dual_batched(state, levels, empty, is_setup,
                              b.seg_dst, bt, bf, bg,
                              ft, fallback_f, fallback_g,
                              virgin)


def propagate_dual_batched(graph: TimingGraph,
                           mode: AnalysisMode) -> BatchedLevels:
    """Run the grouped forward pass for **all** levels in one sweep."""
    mode = AnalysisMode.coerce(mode)
    faults.check("numpy.import")
    core = get_core(graph)
    tree = graph.clock_tree
    num_levels = tree.num_levels
    n = graph.num_pins
    num_ffs = graph.num_ffs
    empty = mode.empty_time
    is_setup = mode.is_setup

    with _obs.span("propagate.batched"):
        with _obs.span("grouping"):
            gm, om = group_matrix(tree, num_ffs)
            groupings = _build_groupings(tree, gm, om)

        with _obs.span("seeds"):
            q_pin, ck_pin, node, ctq_early, ctq_late = _ff_columns(graph)
            clk_to_q = ctq_late if is_setup else ctq_early
            at = np.asarray(tree._at_late if is_setup else tree._at_early,
                            dtype=np.float64)
            # Same association as the scalar seed formula:
            # (clock arrival + clk-to-q) -/+ launch offset.
            base = at[node] + clk_to_q
            q_time = base - om if is_setup else base + om

            # Best tuple in rows 0..D-1, fallback tuple in rows D..2D-1:
            # one stacked matrix per field means every sweep gather and
            # element-wise step handles both halves with a single numpy
            # dispatch (the batch rows are small, so the sweep is
            # dispatch-bound, not bandwidth-bound).
            timeS = np.full((2 * num_levels, n), empty, dtype=np.float64)
            fromS = np.full((2 * num_levels, n), NO_NODE, dtype=np.int32)
            groupS = np.full((2 * num_levels, n), NO_GROUP,
                             dtype=np.int32)
            time0, time1 = timeS[:num_levels], timeS[num_levels:]
            from0, from1 = fromS[:num_levels], fromS[num_levels:]
            group0, group1 = groupS[:num_levels], groupS[num_levels:]
            state = (timeS, fromS, groupS)

            part = gm >= 0
            rows, cols = np.nonzero(part)
            # Q pins are distinct per flip-flop, so seeding is a plain
            # scatter — no per-pin merge like the irregular seed batches
            # of the single-level pass.
            time0[rows, q_pin[cols]] = q_time[rows, cols]
            from0[rows, q_pin[cols]] = ck_pin[cols]
            group0[rows, q_pin[cols]] = gm[rows, cols]
            seed_counts = part.sum(axis=1)
            num_seeds = int(seed_counts.sum())

        with _obs.span("sweep"):
            if num_seeds:
                def candidates(bi, b):
                    delay = b.late if is_setup else b.early
                    return timeS[:, b.src] + delay

                _sweep(graph, core, state, num_levels, empty, is_setup,
                       candidates)

        with _obs.span("deviation_costs"):
            with np.errstate(invalid="ignore"):
                if is_setup:
                    cost0 = time0[:, core.fanin_dst]
                    np.subtract(cost0, time0[:, core.fanin_src],
                                out=cost0)
                    np.subtract(cost0, core.fanin_late, out=cost0)
                    delay_list = core.fanin_late_list
                else:
                    cost0 = time0[:, core.fanin_src]
                    np.add(cost0, core.fanin_early, out=cost0)
                    np.subtract(cost0, time0[:, core.fanin_dst],
                                out=cost0)
                    delay_list = core.fanin_early_list
            # Any non-finite cost (unreached endpoint, or inf - inf =
            # nan) means "no deviation here": collapse them all to +inf
            # in one in-place pass.
            np.nan_to_num(cost0, copy=False,
                          nan=_INF, posinf=_INF, neginf=_INF)

    col = _obs.ACTIVE
    if col is not None:
        visited = (time0 != empty).sum(axis=1)
        col.add("batched.builds")
        col.add("batched.levels", num_levels)
        col.add("propagation.seeds", num_seeds)
        col.add("propagation.pins_visited", int(visited.sum()))
        for level in range(num_levels):
            col.add(f"batched.seeds.level[{level}]",
                    int(seed_counts[level]))
            col.add(f"batched.pins_visited.level[{level}]",
                    int(visited[level]))

    return BatchedLevels(mode, num_levels, groupings,
                         seed_counts.tolist(),
                         time0, from0, group0, time1, from1, group1,
                         cost0, core.fanin_ptr_list, core.fanin_src_list,
                         delay_list)


def propagate_dual_batched_corners(graphs, mode: AnalysisMode
                                   ) -> list:
    """Run the grouped forward pass for ``C`` corners in ONE sweep.

    ``graphs`` are the corner-realized graphs: same topology, one
    shared :class:`~repro.core.arrays.CoreStructure`, per-corner
    :class:`~repro.core.arrays.CoreValues` columns and clock trees.
    The dual-tuple state is stacked a second time — ``(2 * C * D, n)``
    with corner ``c``'s level-``d`` best row at ``c * D + d`` — so the
    whole multi-corner analysis pays *one* grouping-matrix application,
    one relaxation per level bucket, and one deviation-cost pass
    instead of ``C`` of each.  Per-bucket edge delays broadcast through
    a ``(2, C, D, m)`` reshape view, and per-corner fanin delays
    through a ``(C, D, m_fanin)`` view, so every corner's rows see the
    exact IEEE-754 operation sequence of its standalone
    :func:`propagate_dual_batched` — the returned list of per-corner
    :class:`BatchedLevels` (row-slice views into the stacked matrices)
    is bit-for-bit what ``C`` independent builds would produce.

    Counters: one ``batched.builds``, ``batched.corners`` = ``C``,
    ``batched.levels`` = ``C * D`` (total stacked rows), seed/visit
    totals and per-level breakdowns summed across corners.
    """
    mode = AnalysisMode.coerce(mode)
    if len(graphs) == 1:
        return [propagate_dual_batched(graphs[0], mode)]
    faults.check("numpy.import")
    base = graphs[0]
    cores = [get_core(g) for g in graphs]
    structure = cores[0].structure
    for c in cores[1:]:
        if c.structure is not structure:
            raise ValueError(
                "corner graphs must share one CoreStructure; realize "
                "corners with repro.corners.CornerSet.realize")
    C = len(graphs)
    D = base.clock_tree.num_levels
    levels = C * D
    n = base.num_pins
    num_ffs = base.num_ffs
    empty = mode.empty_time
    is_setup = mode.is_setup

    with _obs.span("propagate.batched"):
        with _obs.span("grouping"):
            # gm is a pure function of the (shared) tree topology —
            # identical across corners — while om carries each corner's
            # credits; calling group_matrix per tree also populates the
            # lifting/grouping caches paths_at_level reads later.
            gms, oms, groupings = [], [], []
            for g in graphs:
                gm, om = group_matrix(g.clock_tree, num_ffs)
                gms.append(gm)
                oms.append(om)
                groupings.append(_build_groupings(g.clock_tree, gm, om))

        with _obs.span("seeds"):
            q_pin, ck_pin, node, ctq_early, ctq_late = _ff_columns(base)
            clk_to_q = ctq_late if is_setup else ctq_early
            timeS = np.full((2 * levels, n), empty, dtype=np.float64)
            fromS = np.full((2 * levels, n), NO_NODE, dtype=np.int32)
            groupS = np.full((2 * levels, n), NO_GROUP, dtype=np.int32)
            time0, time1 = timeS[:levels], timeS[levels:]
            from0, from1 = fromS[:levels], fromS[levels:]
            group0, group1 = groupS[:levels], groupS[levels:]
            state = (timeS, fromS, groupS)

            seed_counts = np.zeros((C, D), dtype=np.int64)
            for ci, g in enumerate(graphs):
                tree = g.clock_tree
                gm, om = gms[ci], oms[ci]
                at = np.asarray(
                    tree._at_late if is_setup else tree._at_early,
                    dtype=np.float64)
                base_t = at[node] + clk_to_q
                q_time = base_t - om if is_setup else base_t + om
                part = gm >= 0
                rows, cols = np.nonzero(part)
                time0[ci * D + rows, q_pin[cols]] = q_time[rows, cols]
                from0[ci * D + rows, q_pin[cols]] = ck_pin[cols]
                group0[ci * D + rows, q_pin[cols]] = gm[rows, cols]
                seed_counts[ci] = part.sum(axis=1)
            num_seeds = int(seed_counts.sum())

        with _obs.span("sweep"):
            if num_seeds:
                def candidates(bi, b):
                    m = len(b.src)
                    # (C, m) per-corner delay rows broadcast against a
                    # (2, C, D, m) view of the gathered source state:
                    # each corner block sees exactly its standalone
                    # ``timeS[:, src] + delay`` element-wise adds.
                    if is_setup:
                        delays = np.stack(
                            [c.level_buckets[bi].late for c in cores])
                    else:
                        delays = np.stack(
                            [c.level_buckets[bi].early for c in cores])
                    gathered = timeS[:, b.src]
                    return (gathered.reshape(2, C, D, m)
                            + delays[None, :, None, :]
                            ).reshape(2 * levels, m)

                _sweep(base, cores[0], state, levels, empty, is_setup,
                       candidates)

        with _obs.span("deviation_costs"):
            mf = len(structure.fanin_dst)
            with np.errstate(invalid="ignore"):
                if is_setup:
                    cost0 = time0[:, structure.fanin_dst]
                    np.subtract(cost0, time0[:, structure.fanin_src],
                                out=cost0)
                    lates = np.stack([c.values.fanin_late
                                      for c in cores])
                    c3 = cost0.reshape(C, D, mf)
                    np.subtract(c3, lates[:, None, :], out=c3)
                    delay_lists = [c.values.fanin_late_list
                                   for c in cores]
                else:
                    cost0 = time0[:, structure.fanin_src]
                    earlies = np.stack([c.values.fanin_early
                                        for c in cores])
                    c3 = cost0.reshape(C, D, mf)
                    np.add(c3, earlies[:, None, :], out=c3)
                    np.subtract(cost0, time0[:, structure.fanin_dst],
                                out=cost0)
                    delay_lists = [c.values.fanin_early_list
                                   for c in cores]
            np.nan_to_num(cost0, copy=False,
                          nan=_INF, posinf=_INF, neginf=_INF)

    col = _obs.ACTIVE
    if col is not None:
        visited = (time0 != empty).sum(axis=1).reshape(C, D)
        col.add("batched.builds")
        col.add("batched.corners", C)
        col.add("batched.levels", levels)
        col.add("propagation.seeds", num_seeds)
        col.add("propagation.pins_visited", int(visited.sum()))
        level_seeds = seed_counts.sum(axis=0)
        level_visited = visited.sum(axis=0)
        for level in range(D):
            col.add(f"batched.seeds.level[{level}]",
                    int(level_seeds[level]))
            col.add(f"batched.pins_visited.level[{level}]",
                    int(level_visited[level]))

    results = []
    for ci in range(C):
        lo, hi = ci * D, (ci + 1) * D
        results.append(BatchedLevels(
            mode, D, groupings[ci], seed_counts[ci].tolist(),
            time0[lo:hi], from0[lo:hi], group0[lo:hi],
            time1[lo:hi], from1[lo:hi], group1[lo:hi],
            cost0[lo:hi], structure.fanin_ptr_list,
            structure.fanin_src_list, delay_lists[ci]))
    return results
