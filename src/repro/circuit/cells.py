"""Cell-level specifications used by the netlist builder.

These are *user-facing* descriptions.  :meth:`repro.circuit.netlist.Netlist
.elaborate` lowers them into pin-level records
(:class:`~repro.circuit.graph.FlipFlopRecord` etc.) on the timing graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import TimingConstraintError

__all__ = ["FlipFlopSpec", "GateSpec"]


@dataclass(slots=True)
class FlipFlopSpec:
    """An edge-triggered flip-flop.

    The flip-flop owns three pins named ``{name}/CK``, ``{name}/D`` and
    ``{name}/Q``.  ``clk_to_q`` is the (early, late) clock-to-output delay;
    launch paths start at the clock pin and traverse this arc, exactly as in
    the paper's Algorithm 2 lines 1-7.
    """

    name: str
    t_setup: float = 0.0
    t_hold: float = 0.0
    clk_to_q_early: float = 0.0
    clk_to_q_late: float = 0.0

    def __post_init__(self) -> None:
        values = (self.t_setup, self.t_hold, self.clk_to_q_early,
                  self.clk_to_q_late)
        if not all(math.isfinite(v) for v in values):
            raise TimingConstraintError(
                f"flip-flop {self.name!r}: timing values must be finite, "
                f"got {values}")
        if self.clk_to_q_early > self.clk_to_q_late:
            raise TimingConstraintError(
                f"flip-flop {self.name!r}: early clk->Q delay "
                f"{self.clk_to_q_early} exceeds late {self.clk_to_q_late}")

    @property
    def ck_pin(self) -> str:
        return f"{self.name}/CK"

    @property
    def d_pin(self) -> str:
        return f"{self.name}/D"

    @property
    def q_pin(self) -> str:
        return f"{self.name}/Q"


@dataclass(slots=True)
class GateSpec:
    """A combinational gate with ``num_inputs`` inputs and one output.

    Pins are named ``{name}/A{i}`` for inputs and ``{name}/Y`` for the
    output.  ``arc_delays[i]`` is the (early, late) delay of the timing arc
    from input ``i`` to the output; when fewer entries than inputs are
    given, the last entry is repeated.
    """

    name: str
    num_inputs: int = 1
    arc_delays: list[tuple[float, float]] = field(
        default_factory=lambda: [(0.0, 0.0)])

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise TimingConstraintError(
                f"gate {self.name!r}: needs at least one input")
        if not self.arc_delays:
            raise TimingConstraintError(
                f"gate {self.name!r}: needs at least one arc delay")
        for early, late in self.arc_delays:
            if not (math.isfinite(early) and math.isfinite(late)):
                raise TimingConstraintError(
                    f"gate {self.name!r}: arc delays must be finite, "
                    f"got ({early}, {late})")
            if early > late:
                raise TimingConstraintError(
                    f"gate {self.name!r}: early arc delay {early} exceeds "
                    f"late {late}")

    def arc_delay(self, input_index: int) -> tuple[float, float]:
        """(early, late) delay of the arc from input ``input_index``."""
        if input_index < len(self.arc_delays):
            return self.arc_delays[input_index]
        return self.arc_delays[-1]

    @property
    def output_pin(self) -> str:
        return f"{self.name}/Y"

    def input_pin(self, index: int) -> str:
        if not 0 <= index < self.num_inputs:
            raise IndexError(
                f"gate {self.name!r} has {self.num_inputs} inputs, "
                f"requested {index}")
        return f"{self.name}/A{index}"
