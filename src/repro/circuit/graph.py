"""The elaborated pin-level timing graph.

A :class:`TimingGraph` is the immutable analysis substrate shared by the
STA engine, the CPPR engine, and every baseline timer.  It stores

* a pin table (:class:`~repro.circuit.pins.Pin` per integer id),
* forward/backward adjacency over *data* pins with (early, late) edge
  delays — this is the DAG the paper's Algorithms 2-5 propagate over,
* flip-flop, primary-input and primary-output records, and
* the :class:`~repro.circuit.clocktree.ClockTree`.

Clock pins exist in the pin table but carry no data edges; launch arcs
(clock pin -> Q pin) are modeled by each flip-flop's clock-to-Q delay and
seeded directly by the propagation passes, exactly as Algorithm 2 lines
1-7 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.circuit.clocktree import ClockTree
from repro.circuit.pins import Pin
from repro.ds.topo import CycleError, topological_order
from repro.exceptions import CircuitStructureError

__all__ = ["FlipFlopRecord", "PrimaryInputRecord", "PrimaryOutputRecord",
           "TimingGraph"]


@dataclass(frozen=True, slots=True)
class FlipFlopRecord:
    """An elaborated flip-flop: pin ids, constraints, and its tree leaf."""

    index: int
    name: str
    ck_pin: int
    d_pin: int
    q_pin: int
    t_setup: float
    t_hold: float
    clk_to_q_early: float
    clk_to_q_late: float
    tree_node: int


@dataclass(frozen=True, slots=True)
class PrimaryInputRecord:
    """A primary input port with its given (early, late) arrival times."""

    pin: int
    name: str
    at_early: float = 0.0
    at_late: float = 0.0


@dataclass(frozen=True, slots=True)
class PrimaryOutputRecord:
    """A primary output port with optional required-time constraints.

    ``rat_early``/``rat_late`` follow the usual convention: a *hold* test
    requires the early arrival to be at least ``rat_early``, a *setup* test
    requires the late arrival to be at most ``rat_late``.  ``None`` means
    unconstrained.
    """

    pin: int
    name: str
    rat_early: float | None = None
    rat_late: float | None = None


class TimingGraph:
    """Immutable pin-level DAG with early/late delays and a clock tree."""

    def __init__(self, name: str, pins: list[Pin],
                 fanout: list[list[tuple[int, float, float]]],
                 ffs: list[FlipFlopRecord],
                 primary_inputs: list[PrimaryInputRecord],
                 primary_outputs: list[PrimaryOutputRecord],
                 clock_tree: ClockTree) -> None:
        self.name = name
        self.pins = pins
        self.fanout = fanout
        self.ffs = ffs
        self.primary_inputs = primary_inputs
        self.primary_outputs = primary_outputs
        self.clock_tree = clock_tree

        n = len(pins)
        if len(fanout) != n:
            raise CircuitStructureError(
                f"fanout table has {len(fanout)} rows for {n} pins")
        self.fanin: list[list[tuple[int, float, float]]] = [
            [] for _ in range(n)]
        for u in range(n):
            for v, early, late in fanout[u]:
                if not 0 <= v < n:
                    raise CircuitStructureError(
                        f"edge from {pins[u].name!r} targets unknown pin "
                        f"id {v}")
                self.fanin[v].append((u, early, late))

        self.ff_of_d_pin = {ff.d_pin: ff.index for ff in ffs}
        self.ff_of_q_pin = {ff.q_pin: ff.index for ff in ffs}
        self.ff_of_ck_pin = {ff.ck_pin: ff.index for ff in ffs}
        self.pin_index = {pin.name: pin.index for pin in pins}

        self.is_clock_pin = [pin.kind.is_clock for pin in pins]

    # ------------------------------------------------------------------
    # Size statistics
    # ------------------------------------------------------------------
    @property
    def num_pins(self) -> int:
        return len(self.pins)

    @property
    def num_edges(self) -> int:
        """Number of data edges (clock-tree edges are counted separately)."""
        return sum(len(adj) for adj in self.fanout)

    @property
    def num_ffs(self) -> int:
        return len(self.ffs)

    @cached_property
    def topo_order(self) -> list[int]:
        """A topological order of all pins; raises on combinational cycles.

        Computed once and shared by every propagation pass (the per-level
        passes of Algorithm 1 all reuse it).
        """
        try:
            return topological_order(self.num_pins, self._fanout_targets())
        except CycleError as exc:
            names = [self.pins[u].name for u in exc.cycle]
            raise CircuitStructureError(
                f"combinational cycle: {' -> '.join(names)}") from exc

    def _fanout_targets(self) -> list[list[int]]:
        return [[v for v, _e, _l in adj] for adj in self.fanout]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def pin(self, name: str) -> Pin:
        """Look up a pin by name; raises ``KeyError`` for unknown names."""
        return self.pins[self.pin_index[name]]

    def pin_name(self, index: int) -> str:
        return self.pins[index].name

    def ff(self, index: int) -> FlipFlopRecord:
        return self.ffs[index]

    def ff_by_name(self, name: str) -> FlipFlopRecord:
        for ff in self.ffs:
            if ff.name == name:
                return ff
        raise KeyError(f"no flip-flop named {name!r}")

    def endpoints(self) -> list[int]:
        """All pins where timing tests are checked (FF D pins, then POs)."""
        pins = [ff.d_pin for ff in self.ffs]
        pins.extend(po.pin for po in self.primary_outputs)
        return pins

    def describe(self) -> str:
        """One-line structural summary used by reports and examples."""
        return (f"design {self.name!r}: {self.num_pins} pins, "
                f"{self.num_edges} data edges, {self.num_ffs} FFs, "
                f"{len(self.primary_inputs)} PIs, "
                f"{len(self.primary_outputs)} POs, "
                f"clock tree depth D={self.clock_tree.num_levels}")

    # ------------------------------------------------------------------
    # Derived graphs (the incremental fast paths)
    # ------------------------------------------------------------------
    @classmethod
    def _derived(cls, parent: "TimingGraph", *,
                 fanout: list[list[tuple[int, float, float]]] | None = None,
                 fanin: list[list[tuple[int, float, float]]] | None = None,
                 clock_tree: ClockTree | None = None) -> "TimingGraph":
        """A graph sharing ``parent``'s topology-derived state.

        The incremental entry points (:mod:`repro.sta.incremental`,
        :class:`repro.pipeline.session.CpprSession`) construct edited graphs
        through here instead of ``__init__``: the pin table, FF/port
        records, name maps and — crucially — the already-computed
        ``topo_order`` are shared, because a delay or clock edit never
        changes the topology.  Callers that pass ``fanout``/``fanin``
        must pass copy-on-touch row lists: untouched rows may alias the
        parent's, touched rows must be fresh lists.

        The per-graph lazy caches (``_core_arrays``, batched pads, ...)
        are deliberately *not* carried over; whoever derives the graph
        decides which ones are still valid and plants them explicitly.
        """
        graph = cls.__new__(cls)
        graph.name = parent.name
        graph.pins = parent.pins
        graph.fanout = parent.fanout if fanout is None else fanout
        graph.fanin = parent.fanin if fanin is None else fanin
        graph.ffs = parent.ffs
        graph.primary_inputs = parent.primary_inputs
        graph.primary_outputs = parent.primary_outputs
        graph.clock_tree = (parent.clock_tree if clock_tree is None
                            else clock_tree)
        graph.ff_of_d_pin = parent.ff_of_d_pin
        graph.ff_of_q_pin = parent.ff_of_q_pin
        graph.ff_of_ck_pin = parent.ff_of_ck_pin
        graph.pin_index = parent.pin_index
        graph.is_clock_pin = parent.is_clock_pin
        # cached_property: copying the value into __dict__ makes the
        # derived graph's first topo_order read free.
        graph.__dict__["topo_order"] = parent.topo_order
        return graph

    def session_copy(self) -> "TimingGraph":
        """A privately mutable clone for :class:`~repro.pipeline.session.CpprSession`.

        Adjacency *rows* are copied (so the session may patch delay
        entries in place without aliasing the parent's rows); everything
        else — pins, records, maps, ``topo_order`` — is shared.
        """
        return TimingGraph._derived(
            self,
            fanout=[list(row) for row in self.fanout],
            fanin=[list(row) for row in self.fanin])
