"""The clock distribution tree: depths, arrival times, credits, LCA.

The CPPR credit of a clock-tree node ``u`` is
``credit(u) = at_late(u) - at_early(u)`` (paper Definition 2) and the credit
of a launching/capturing FF pair is the credit of their lowest common
ancestor.  This module owns every clock-tree quantity in the paper's
Table I: ``D`` (number of levels), ``depth(u)``, ``credit(u)``, ``f_d(u)``
and ``LCA(u, v)``.

Tree nodes use a compact integer id space separate from graph pin ids;
node 0 is always the clock source.  Leaves are flip-flop clock pins.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.ds.binary_lifting import AncestorTable
from repro.exceptions import CircuitStructureError

__all__ = ["ClockTree"]


class ClockTree:
    """An elaborated clock tree with timing annotations.

    Parameters
    ----------
    names:
        ``names[i]`` is the name of tree node ``i``; node 0 is the source.
    parents:
        ``parents[i]`` is the parent node id, ``-1`` for the source only.
    delays_early / delays_late:
        Early/late delay of the tree edge from ``parents[i]`` to node ``i``
        (ignored for the source).
    pin_ids:
        Graph pin index of each tree node (clock source / buffers / FF
        clock pins all exist as pins).
    ff_of_node:
        ``ff_of_node[i]`` is the flip-flop index whose clock pin is node
        ``i``, or ``-1`` for internal nodes.
    source_at:
        (early, late) arrival at the clock source, usually ``(0, 0)``;
        nonzero values model source latency.
    """

    __slots__ = ("names", "parents", "delays_early", "delays_late",
                 "pin_ids", "ff_of_node", "source_at", "_at_early",
                 "_at_late", "_credits", "_table", "_node_of_pin",
                 "_num_levels", "_core_lift", "_group_cache")

    def __init__(self, names: Sequence[str], parents: Sequence[int],
                 delays_early: Sequence[float], delays_late: Sequence[float],
                 pin_ids: Sequence[int], ff_of_node: Sequence[int],
                 source_at: tuple[float, float] = (0.0, 0.0)) -> None:
        n = len(names)
        if not (len(parents) == len(delays_early) == len(delays_late)
                == len(pin_ids) == len(ff_of_node) == n):
            raise CircuitStructureError(
                "clock tree arrays have inconsistent lengths")
        if n == 0:
            raise CircuitStructureError("clock tree must contain a source")
        if parents[0] != -1:
            raise CircuitStructureError("clock tree node 0 must be the root")
        for i in range(1, n):
            if parents[i] == -1:
                raise CircuitStructureError(
                    f"clock tree has two roots: node 0 and {names[i]!r}")
        for i in range(n):
            if not (math.isfinite(delays_early[i])
                    and math.isfinite(delays_late[i])):
                raise CircuitStructureError(
                    f"clock tree edge into {names[i]!r}: delays must be "
                    f"finite, got ({delays_early[i]}, {delays_late[i]})")
            if delays_early[i] > delays_late[i]:
                raise CircuitStructureError(
                    f"clock tree edge into {names[i]!r}: early delay "
                    f"{delays_early[i]} exceeds late delay {delays_late[i]}")
        if source_at[0] > source_at[1]:
            raise CircuitStructureError(
                f"clock source early arrival {source_at[0]} exceeds late "
                f"{source_at[1]}")

        self.names = list(names)
        self.parents = list(parents)
        self.delays_early = list(delays_early)
        self.delays_late = list(delays_late)
        self.pin_ids = list(pin_ids)
        self.ff_of_node = list(ff_of_node)
        self.source_at = source_at

        try:
            self._table = AncestorTable(self.parents)
        except ValueError as exc:
            raise CircuitStructureError(f"invalid clock tree: {exc}") from exc

        self._at_early, self._at_late = self._propagate_arrivals()
        self._credits = [late - early for early, late
                         in zip(self._at_early, self._at_late)]
        self._node_of_pin = {pin: node
                             for node, pin in enumerate(self.pin_ids)}
        #: Lazily-built numpy mirror for repro.core.grouping.
        self._core_lift = None
        #: Memoized LevelGrouping results keyed by (level, backend);
        #: groupings are pure functions of the immutable tree.
        self._group_cache: dict = {}
        leaf_depths = [self._table.depth(i) for i in range(n)
                       if self.ff_of_node[i] >= 0]
        self._num_levels = max(leaf_depths, default=0)

    def _propagate_arrivals(self) -> tuple[list[float], list[float]]:
        n = len(self.names)
        order = sorted(range(n), key=self._table.depth)
        at_early = [0.0] * n
        at_late = [0.0] * n
        at_early[0], at_late[0] = self.source_at
        for node in order:
            if node == 0:
                continue
            parent = self.parents[node]
            at_early[node] = at_early[parent] + self.delays_early[node]
            at_late[node] = at_late[parent] + self.delays_late[node]
        return at_early, at_late

    # ------------------------------------------------------------------
    # Size and identity
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.names)

    @property
    def num_levels(self) -> int:
        """``D``: the deepest flip-flop clock-pin depth.

        The engine enumerates LCA depths ``0..D-1``; two *distinct* leaves
        always meet strictly above the deeper of them, so no deeper level
        is ever needed.
        """
        return self._num_levels

    def node_of_pin(self, pin: int) -> int:
        """Tree node id of graph pin ``pin``; raises ``KeyError`` if none."""
        return self._node_of_pin[pin]

    def is_clock_pin(self, pin: int) -> bool:
        """True when graph pin ``pin`` is a clock-tree node."""
        return pin in self._node_of_pin

    def leaves(self) -> list[int]:
        """Tree node ids that are flip-flop clock pins."""
        return [i for i, ff in enumerate(self.ff_of_node) if ff >= 0]

    # ------------------------------------------------------------------
    # Timing quantities (paper Table I)
    # ------------------------------------------------------------------
    def at_early(self, node: int) -> float:
        """Early arrival time of the clock edge at ``node``."""
        return self._at_early[node]

    def at_late(self, node: int) -> float:
        """Late arrival time of the clock edge at ``node``."""
        return self._at_late[node]

    def credit(self, node: int) -> float:
        """CPPR credit ``at_late(node) - at_early(node)`` (Definition 2)."""
        return self._credits[node]

    def depth(self, node: int) -> int:
        """Depth of ``node``; the source has depth 0."""
        return self._table.depth(node)

    def parent(self, node: int) -> int:
        return self._table.parent(node)

    def ancestor_at_depth(self, node: int, depth: int) -> int:
        """``f_d(u)``: ancestor of ``node`` at depth ``depth`` (or -1)."""
        return self._table.ancestor_at_depth(node, depth)

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of tree nodes ``u`` and ``v``."""
        return self._table.lca(u, v)

    def lca_depth(self, u: int, v: int) -> int:
        """Depth of the LCA of tree nodes ``u`` and ``v``."""
        return self._table.lca_depth(u, v)

    def pair_credit(self, u: int, v: int) -> float:
        """Credit of the launching/capturing pair ``(u, v)``: the LCA's."""
        return self._credits[self._table.lca(u, v)]
