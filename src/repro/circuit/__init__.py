"""Circuit modeling: netlists, the pin-level timing graph, and clock trees.

The paper's preliminaries model a circuit as a directed acyclic graph whose
nodes are pins and whose edges carry early/late delay bounds; flip-flops are
driven by a clock source through a clock tree.  This package provides that
substrate:

* :class:`~repro.circuit.netlist.Netlist` — a named, user-facing builder for
  gates, flip-flops, primary I/O and the clock tree.
* :class:`~repro.circuit.graph.TimingGraph` — the elaborated, integer-indexed
  pin DAG consumed by the STA and CPPR engines.
* :class:`~repro.circuit.clocktree.ClockTree` — depths, arrival times,
  credits, ``f_d`` ancestor and LCA queries over the clock distribution
  network.
"""

from repro.circuit.cells import FlipFlopSpec, GateSpec
from repro.circuit.clocktree import ClockTree
from repro.circuit.graph import (FlipFlopRecord, PrimaryInputRecord,
                                 PrimaryOutputRecord, TimingGraph)
from repro.circuit.netlist import Netlist
from repro.circuit.pins import Pin, PinKind
from repro.circuit.validate import validate_graph

__all__ = [
    "ClockTree",
    "FlipFlopRecord",
    "FlipFlopSpec",
    "GateSpec",
    "Netlist",
    "Pin",
    "PinKind",
    "PrimaryInputRecord",
    "PrimaryOutputRecord",
    "TimingGraph",
    "validate_graph",
]
