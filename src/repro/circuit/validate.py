"""Structural validation of elaborated timing graphs.

:func:`validate_graph` re-checks every invariant the analysis engines rely
on.  The netlist builder enforces these during elaboration, but graphs can
also arrive from file parsers or generators, so a standalone validator is
part of the public API (and is run by the test suite against every
generated workload).
"""

from __future__ import annotations

from repro.circuit.graph import TimingGraph
from repro.circuit.pins import PinKind
from repro.exceptions import CircuitStructureError

__all__ = ["validate_graph"]

_VALID_EDGE_SOURCES = (PinKind.PRIMARY_INPUT, PinKind.GATE_INPUT,
                       PinKind.GATE_OUTPUT, PinKind.FF_Q)
_VALID_EDGE_SINKS = (PinKind.GATE_INPUT, PinKind.GATE_OUTPUT,
                     PinKind.FF_D, PinKind.PRIMARY_OUTPUT)


def validate_graph(graph: TimingGraph) -> None:
    """Raise :class:`CircuitStructureError` if ``graph`` is malformed.

    Checks, in order:

    1. every data edge connects legal pin kinds and has early <= late delay;
    2. no clock pin carries data edges, and no pin pair carries parallel
       edges (the deviation search identifies a path's predecessor by
       *pin*, which is only unambiguous without parallel edges);
    3. each flip-flop record references pins of the right kinds and a clock
       tree leaf mapped back to itself;
    4. clock-tree credits are non-negative and non-decreasing towards the
       leaves (the monotonicity the paper's level decomposition relies on);
    5. the data graph is acyclic (via ``topo_order``).
    """
    pins = graph.pins
    for u in range(graph.num_pins):
        targets: set[int] = set()
        for v, early, late in graph.fanout[u]:
            if early > late:
                raise CircuitStructureError(
                    f"edge {pins[u].name!r} -> {pins[v].name!r}: early "
                    f"delay {early} exceeds late delay {late}")
            if pins[u].kind not in _VALID_EDGE_SOURCES:
                raise CircuitStructureError(
                    f"pin {pins[u].name!r} of kind {pins[u].kind.value} "
                    f"must not source data edges")
            if pins[v].kind not in _VALID_EDGE_SINKS:
                raise CircuitStructureError(
                    f"pin {pins[v].name!r} of kind {pins[v].kind.value} "
                    f"must not sink data edges")
            if v in targets:
                raise CircuitStructureError(
                    f"parallel data edges {pins[u].name!r} -> "
                    f"{pins[v].name!r}; merge them into one edge with "
                    f"min-early/max-late delays")
            targets.add(v)

    tree = graph.clock_tree
    for ff in graph.ffs:
        for pin, kind in ((ff.ck_pin, PinKind.FF_CK),
                          (ff.d_pin, PinKind.FF_D),
                          (ff.q_pin, PinKind.FF_Q)):
            if pins[pin].kind is not kind:
                raise CircuitStructureError(
                    f"flip-flop {ff.name!r}: pin {pins[pin].name!r} has "
                    f"kind {pins[pin].kind.value}, expected {kind.value}")
        if tree.ff_of_node[ff.tree_node] != ff.index:
            raise CircuitStructureError(
                f"flip-flop {ff.name!r}: clock tree leaf {ff.tree_node} "
                f"is not mapped back to it")
        if tree.pin_ids[ff.tree_node] != ff.ck_pin:
            raise CircuitStructureError(
                f"flip-flop {ff.name!r}: tree leaf pin mismatch")

    for node in range(len(tree)):
        credit = tree.credit(node)
        if credit < 0:
            raise CircuitStructureError(
                f"clock node {tree.names[node]!r} has negative credit "
                f"{credit}")
        parent = tree.parent(node)
        if parent != -1 and credit < tree.credit(parent) - 1e-12:
            raise CircuitStructureError(
                f"clock node {tree.names[node]!r}: credit {credit} below "
                f"its parent's {tree.credit(parent)}; early/late delays "
                f"are inconsistent")

    graph.topo_order  # raises CircuitStructureError on cycles
