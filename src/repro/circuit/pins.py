"""Pin identities for the elaborated timing graph.

Pins are the nodes of the STA graph.  Each pin has a stable integer index
(the node id used by every adjacency structure), a hierarchical name such
as ``"u3/Y"``, a :class:`PinKind`, and optionally the owning cell name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Pin", "PinKind"]


class PinKind(enum.Enum):
    """Role a pin plays in the timing graph."""

    PRIMARY_INPUT = "primary_input"
    PRIMARY_OUTPUT = "primary_output"
    GATE_INPUT = "gate_input"
    GATE_OUTPUT = "gate_output"
    FF_D = "ff_d"
    FF_Q = "ff_q"
    FF_CK = "ff_ck"
    CLOCK_SOURCE = "clock_source"
    CLOCK_BUFFER = "clock_buffer"

    @property
    def is_clock(self) -> bool:
        """True for pins that live on the clock distribution network."""
        return self in (PinKind.FF_CK, PinKind.CLOCK_SOURCE,
                        PinKind.CLOCK_BUFFER)

    @property
    def is_data_endpoint(self) -> bool:
        """True for pins where a timing test is checked."""
        return self in (PinKind.FF_D, PinKind.PRIMARY_OUTPUT)


@dataclass(frozen=True, slots=True)
class Pin:
    """A node of the timing graph.

    Attributes
    ----------
    index:
        Integer node id; stable for the lifetime of the graph.
    name:
        Hierarchical pin name, unique within a design.
    kind:
        The pin's :class:`PinKind`.
    cell:
        Name of the owning cell, or ``None`` for ports and clock nodes.
    """

    index: int
    name: str
    kind: PinKind
    cell: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
