"""User-facing netlist builder.

A :class:`Netlist` accumulates ports, gates, flip-flops, the clock tree and
the interconnect, validates the structure, and elaborates everything into
an immutable :class:`~repro.circuit.graph.TimingGraph`.

Example::

    netlist = Netlist("demo")
    netlist.set_clock_root("clk")
    netlist.add_clock_buffer("buf0", "clk", 1.0, 1.4)
    netlist.add_flipflop("ff1", t_setup=0.5, clk_to_q=(0.2, 0.3))
    netlist.add_flipflop("ff2", t_setup=0.5)
    netlist.connect_clock("ff1", "buf0", 0.5, 0.7)
    netlist.connect_clock("ff2", "buf0", 0.5, 0.6)
    netlist.add_gate("g1", num_inputs=1, arc_delays=[(1.0, 2.0)])
    netlist.connect("ff1/Q", "g1/A0")
    netlist.connect("g1/Y", "ff2/D", 0.1, 0.2)
    graph = netlist.elaborate()
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.cells import FlipFlopSpec, GateSpec
from repro.circuit.clocktree import ClockTree
from repro.circuit.graph import (FlipFlopRecord, PrimaryInputRecord,
                                 PrimaryOutputRecord, TimingGraph)
from repro.circuit.pins import Pin, PinKind
from repro.exceptions import CircuitStructureError

__all__ = ["Netlist"]


@dataclass(slots=True)
class _Connection:
    driver: str
    sink: str
    delay_early: float
    delay_late: float


@dataclass(slots=True)
class _ClockEdge:
    parent: str
    delay_early: float
    delay_late: float


@dataclass(slots=True)
class _PortIn:
    at_early: float = 0.0
    at_late: float = 0.0


@dataclass(slots=True)
class _PortOut:
    rat_early: float | None = None
    rat_late: float | None = None


@dataclass(slots=True)
class _Clock:
    name: str
    source_at: tuple[float, float] = (0.0, 0.0)
    buffers: dict[str, _ClockEdge] = field(default_factory=dict)


class Netlist:
    """Mutable design-under-construction; see module docstring for usage."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._inputs: dict[str, _PortIn] = {}
        self._outputs: dict[str, _PortOut] = {}
        self._gates: dict[str, GateSpec] = {}
        self._ffs: dict[str, FlipFlopSpec] = {}
        self._clock: _Clock | None = None
        self._ff_clock: dict[str, _ClockEdge] = {}
        self._connections: list[_Connection] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # Component creation
    # ------------------------------------------------------------------
    def _claim_name(self, name: str, what: str) -> None:
        if not name:
            raise CircuitStructureError(f"{what} name must be non-empty")
        if "/" in name:
            raise CircuitStructureError(
                f"{what} name {name!r} must not contain '/'")
        if name in self._names:
            raise CircuitStructureError(
                f"name {name!r} already used in design {self.name!r}")
        self._names.add(name)

    def add_primary_input(self, name: str, at_early: float = 0.0,
                          at_late: float = 0.0) -> str:
        """Declare a primary input port; returns its pin name."""
        if at_early > at_late:
            raise CircuitStructureError(
                f"primary input {name!r}: early arrival {at_early} exceeds "
                f"late arrival {at_late}")
        self._claim_name(name, "primary input")
        self._inputs[name] = _PortIn(at_early, at_late)
        return name

    def add_primary_output(self, name: str, rat_early: float | None = None,
                           rat_late: float | None = None) -> str:
        """Declare a primary output port; returns its pin name."""
        self._claim_name(name, "primary output")
        self._outputs[name] = _PortOut(rat_early, rat_late)
        return name

    def add_gate(self, name: str, num_inputs: int = 1,
                 arc_delays: (list[tuple[float, float]]
                              | tuple[float, float]) = (0.0, 0.0)
                 ) -> GateSpec:
        """Add a combinational gate; returns its :class:`GateSpec`."""
        self._claim_name(name, "gate")
        if isinstance(arc_delays, tuple):
            arc_delays = [arc_delays]
        spec = GateSpec(name, num_inputs, list(arc_delays))
        self._gates[name] = spec
        return spec

    def add_flipflop(self, name: str, t_setup: float = 0.0,
                     t_hold: float = 0.0,
                     clk_to_q: tuple[float, float] = (0.0, 0.0)
                     ) -> FlipFlopSpec:
        """Add an edge-triggered flip-flop; returns its spec."""
        self._claim_name(name, "flip-flop")
        spec = FlipFlopSpec(name, t_setup, t_hold, clk_to_q[0], clk_to_q[1])
        self._ffs[name] = spec
        return spec

    # ------------------------------------------------------------------
    # Clock tree construction
    # ------------------------------------------------------------------
    def set_clock_root(self, name: str,
                       source_at: tuple[float, float] = (0.0, 0.0)) -> str:
        """Declare the clock source; must happen before buffers are added."""
        if self._clock is not None:
            raise CircuitStructureError(
                f"clock root already set to {self._clock.name!r}")
        self._claim_name(name, "clock root")
        self._clock = _Clock(name, source_at)
        return name

    def add_clock_buffer(self, name: str, parent: str,
                         delay_early: float, delay_late: float) -> str:
        """Add a clock-tree buffer under ``parent`` (root or a buffer)."""
        clock = self._require_clock()
        self._claim_name(name, "clock buffer")
        if parent != clock.name and parent not in clock.buffers:
            raise CircuitStructureError(
                f"clock buffer {name!r}: unknown parent {parent!r}")
        clock.buffers[name] = _ClockEdge(parent, delay_early, delay_late)
        return name

    def connect_clock(self, ff_name: str, parent: str,
                      delay_early: float, delay_late: float) -> None:
        """Attach a flip-flop's clock pin below a clock-tree node."""
        clock = self._require_clock()
        if ff_name not in self._ffs:
            raise CircuitStructureError(
                f"connect_clock: unknown flip-flop {ff_name!r}")
        if ff_name in self._ff_clock:
            raise CircuitStructureError(
                f"flip-flop {ff_name!r} clock already connected")
        if parent != clock.name and parent not in clock.buffers:
            raise CircuitStructureError(
                f"connect_clock: unknown clock node {parent!r}")
        self._ff_clock[ff_name] = _ClockEdge(parent, delay_early, delay_late)

    def _require_clock(self) -> _Clock:
        if self._clock is None:
            raise CircuitStructureError(
                "set_clock_root must be called before building the clock "
                "tree")
        return self._clock

    # ------------------------------------------------------------------
    # Interconnect
    # ------------------------------------------------------------------
    def connect(self, driver: str, sink: str, delay_early: float = 0.0,
                delay_late: float = 0.0) -> None:
        """Connect a driver pin to a sink pin with a net delay.

        Drivers are primary inputs, gate outputs (``gate/Y``) or flip-flop
        outputs (``ff/Q``); sinks are gate inputs (``gate/A<i>``),
        flip-flop data pins (``ff/D``) or primary outputs.
        """
        if not (math.isfinite(delay_early) and math.isfinite(delay_late)):
            raise CircuitStructureError(
                f"net {driver!r} -> {sink!r}: delays must be finite, "
                f"got ({delay_early}, {delay_late})")
        if delay_early > delay_late:
            raise CircuitStructureError(
                f"net {driver!r} -> {sink!r}: early delay {delay_early} "
                f"exceeds late delay {delay_late}")
        self._connections.append(
            _Connection(driver, sink, delay_early, delay_late))

    # ------------------------------------------------------------------
    # Elaboration
    # ------------------------------------------------------------------
    def elaborate(self) -> TimingGraph:
        """Lower the netlist to an immutable :class:`TimingGraph`.

        Raises :class:`CircuitStructureError` for structural problems:
        unconnected FF clocks, unknown pins, multiply driven sinks, or
        combinational cycles.
        """
        pins: list[Pin] = []
        index_of: dict[str, int] = {}

        def new_pin(name: str, kind: PinKind, cell: str | None = None) -> int:
            index = len(pins)
            pins.append(Pin(index, name, kind, cell))
            index_of[name] = index
            return index

        for name in self._inputs:
            new_pin(name, PinKind.PRIMARY_INPUT)
        for name in self._outputs:
            new_pin(name, PinKind.PRIMARY_OUTPUT)
        for gate in self._gates.values():
            for i in range(gate.num_inputs):
                new_pin(gate.input_pin(i), PinKind.GATE_INPUT, gate.name)
            new_pin(gate.output_pin, PinKind.GATE_OUTPUT, gate.name)
        for ff in self._ffs.values():
            new_pin(ff.ck_pin, PinKind.FF_CK, ff.name)
            new_pin(ff.d_pin, PinKind.FF_D, ff.name)
            new_pin(ff.q_pin, PinKind.FF_Q, ff.name)

        clock_tree = self._elaborate_clock_tree(new_pin, index_of)

        fanout: list[list[tuple[int, float, float]]] = [
            [] for _ in range(len(pins))]
        driven: dict[int, str] = {}

        def add_edge(u: int, v: int, early: float, late: float,
                     what: str) -> None:
            sink_kind = pins[v].kind
            if sink_kind in (PinKind.GATE_INPUT, PinKind.FF_D,
                             PinKind.PRIMARY_OUTPUT):
                if v in driven:
                    raise CircuitStructureError(
                        f"pin {pins[v].name!r} driven by both "
                        f"{driven[v]!r} and {what!r}")
                driven[v] = what
            fanout[u].append((v, early, late))

        for gate in self._gates.values():
            out = index_of[gate.output_pin]
            for i in range(gate.num_inputs):
                early, late = gate.arc_delay(i)
                fanout[index_of[gate.input_pin(i)]].append((out, early, late))

        valid_drivers = (PinKind.PRIMARY_INPUT, PinKind.GATE_OUTPUT,
                         PinKind.FF_Q)
        valid_sinks = (PinKind.GATE_INPUT, PinKind.FF_D,
                       PinKind.PRIMARY_OUTPUT)
        for conn in self._connections:
            for pin_name in (conn.driver, conn.sink):
                if pin_name not in index_of:
                    raise CircuitStructureError(
                        f"connection references unknown pin {pin_name!r}")
            u, v = index_of[conn.driver], index_of[conn.sink]
            if pins[u].kind not in valid_drivers:
                raise CircuitStructureError(
                    f"pin {conn.driver!r} ({pins[u].kind.value}) cannot "
                    f"drive a net")
            if pins[v].kind not in valid_sinks:
                raise CircuitStructureError(
                    f"pin {conn.sink!r} ({pins[v].kind.value}) cannot be a "
                    f"net sink")
            add_edge(u, v, conn.delay_early, conn.delay_late, conn.driver)

        ff_records = []
        for ff_index, ff in enumerate(self._ffs.values()):
            if ff.name not in self._ff_clock:
                raise CircuitStructureError(
                    f"flip-flop {ff.name!r} has no clock connection")
            ff_records.append(FlipFlopRecord(
                index=ff_index, name=ff.name,
                ck_pin=index_of[ff.ck_pin], d_pin=index_of[ff.d_pin],
                q_pin=index_of[ff.q_pin], t_setup=ff.t_setup,
                t_hold=ff.t_hold, clk_to_q_early=ff.clk_to_q_early,
                clk_to_q_late=ff.clk_to_q_late,
                tree_node=clock_tree.node_of_pin(index_of[ff.ck_pin])))

        pi_records = [PrimaryInputRecord(index_of[name], name,
                                         port.at_early, port.at_late)
                      for name, port in self._inputs.items()]
        po_records = [PrimaryOutputRecord(index_of[name], name,
                                          port.rat_early, port.rat_late)
                      for name, port in self._outputs.items()]

        graph = TimingGraph(self.name, pins, fanout, ff_records, pi_records,
                            po_records, clock_tree)
        graph.topo_order  # force cycle detection at elaboration time
        return graph

    def _elaborate_clock_tree(self, new_pin, index_of) -> ClockTree:
        if self._clock is None:
            if self._ffs:
                raise CircuitStructureError(
                    "design has flip-flops but no clock root")
            # A clock-less design still needs a trivial tree object.
            root_pin = new_pin("__virtual_clock__", PinKind.CLOCK_SOURCE)
            return ClockTree(["__virtual_clock__"], [-1], [0.0], [0.0],
                             [root_pin], [-1])

        clock = self._clock
        names = [clock.name]
        parents = [-1]
        delays_early = [0.0]
        delays_late = [0.0]
        tree_index = {clock.name: 0}
        pin_ids = [new_pin(clock.name, PinKind.CLOCK_SOURCE)]
        ff_of_node = [-1]

        # Buffers were validated to reference already-declared parents, so
        # insertion order is a valid topological order of the tree.
        for name, edge in clock.buffers.items():
            tree_index[name] = len(names)
            names.append(name)
            parents.append(tree_index[edge.parent])
            delays_early.append(edge.delay_early)
            delays_late.append(edge.delay_late)
            pin_ids.append(new_pin(name, PinKind.CLOCK_BUFFER))
            ff_of_node.append(-1)

        for ff_index, ff in enumerate(self._ffs.values()):
            edge = self._ff_clock.get(ff.name)
            if edge is None:
                continue  # reported by elaborate() with a better message
            names.append(ff.ck_pin)
            parents.append(tree_index[edge.parent])
            delays_early.append(edge.delay_early)
            delays_late.append(edge.delay_late)
            pin_ids.append(index_of[ff.ck_pin])
            ff_of_node.append(ff_index)

        return ClockTree(names, parents, delays_early, delays_late,
                         pin_ids, ff_of_node, clock.source_at)
