"""repro.faults — deterministic fault injection for chaos testing.

The resilient execution layer (scheduler retries, executor fallback,
backend degradation) is only trustworthy if its failure paths are
exercised on every CI run.  This package provides *named injection
sites* that production code consults at the exact points where real
faults strike, armed with *seeded, reproducible trigger schedules* so a
chaos test that fails once fails every time.

Usage::

    from repro import faults

    with faults.inject("task.exception:times=1,after=2"):
        engine.top_paths(50, "setup")   # third task raises, then recovers

or from the environment (picked up at import time, shared with forked
workers)::

    REPRO_FAULTS="task.timeout:times=1,seconds=0.2;numpy.import:times=1"

Sites are checked with :func:`check`, which is a single module-global
load plus an identity test when nothing is armed — the same
zero-cost-when-disabled pattern as :mod:`repro.obs`.

See ``docs/ROBUSTNESS.md`` for the full site reference.
"""

from repro.faults.injection import (ENV_VAR, SITES, FaultPlan, FaultSpec,
                                    InjectedFault, active_plan, armed,
                                    check, export_plan_state, inject,
                                    install_plan_state, mark_worker_process,
                                    plan_from_env, plan_from_specs,
                                    site_armed, triggered)

__all__ = [
    "ENV_VAR",
    "SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "armed",
    "check",
    "export_plan_state",
    "inject",
    "install_plan_state",
    "mark_worker_process",
    "plan_from_env",
    "plan_from_specs",
    "site_armed",
    "triggered",
]
