"""Named injection sites with seeded, reproducible trigger schedules.

A *site* is a point in production code where a real-world fault can
strike; a :class:`FaultSpec` describes *when* an armed site actually
fires (which hit indices, with what probability, how many times).  A
:class:`FaultPlan` binds several specs together and tracks per-site hit
counts, so schedules like "fail the third task once" are deterministic
across runs — and across the ``serial``/``thread``/``process``
executors, because forked workers inherit the armed plan.

The firing *action* is site-specific and models the real failure:

========================  ==============================================
``task.crash``            hard worker death: ``os._exit`` inside a fork
                          worker (detected as a broken pool by the
                          scheduler); raises :class:`InjectedFault` when
                          the current process is not expendable.
``task.timeout``          a hang: sleeps ``seconds`` (default 60) so a
                          configured task timeout expires.
``task.exception``        raises :class:`InjectedFault`.
``numpy.import``          raises ``ImportError`` from the array/batched
                          compute paths, as if numpy vanished mid-run.
``pool.broken``           raises ``BrokenProcessPool`` when the
                          scheduler starts a process rung.
``memory.pressure``       raises ``MemoryError`` inside a task.
``pipeline.stale_artifact``  *corrupts* instead of raising: the
                          incremental pipeline's artifact cache consults
                          :func:`triggered` at store time and poisons
                          the stored entry's validity basis, modelling a
                          cache whose invalidation hook was missed.  A
                          correct pipeline must then *detect* the key
                          mismatch and recompute rather than serve the
                          stale artifact (counter
                          ``pipeline.stale.detected``).
``shm.attach``            raises :class:`~repro.exceptions
                          .ShmAttachError` when a worker attaches a
                          shared-memory segment, as if the named
                          segment vanished.  Arming it with
                          ``times=inf`` is special-cased by
                          :func:`repro.core.shm.available`: an attach
                          that fails *forever* is indistinguishable
                          from a platform without
                          ``multiprocessing.shared_memory``, so the
                          memory plane disables itself up front and the
                          engine exercises its pickling/fork fallback.
``shm.stale``             raises :class:`~repro.exceptions
                          .ShmStaleError` at segment version
                          validation, as if a reader held a descriptor
                          minted before an in-place update.
``server.request_timeout``  a hung request handler: sleeps ``seconds``
                          (default 60) inside the server's query worker
                          so the request's deadline expires and the
                          service must answer with a structured 408.
``server.session_crash``  raises :class:`InjectedFault` inside a server
                          session operation, modelling a worker that
                          died mid-ECO; the service must rebuild the
                          session by journal replay and retry.
``server.queue_overflow`` *corrupts* instead of raising: the server's
                          admission gate consults :func:`triggered` and
                          sheds the request as if the bounded queue
                          were full (structured 429).
``io.parse_error``        raises :class:`~repro.exceptions
                          .FormatError` at the design-frontend entry
                          point (:func:`repro.io.load_design`), as if
                          the design file were truncated or corrupt;
                          chaos CI uses it to prove ingestion always
                          surfaces a structured, located error — never
                          a partially-built design.
========================  ==============================================

Persistent worker pools (:mod:`repro.cppr.shard`) outlive ``inject()``
windows, so fork-time plan inheritance is not enough for them: the
scheduler ships :func:`export_plan_state` with each task and workers
apply it via :func:`install_plan_state`, which installs each armed plan
*once per arming generation* — reproducing the per-worker-process
trigger semantics of the fork-inherited ephemeral pools.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs import collector as _obs
from repro.obs import metrics as _metrics

__all__ = ["SITES", "FaultPlan", "FaultSpec", "InjectedFault",
           "active_plan", "armed", "check", "export_plan_state",
           "inject", "install_plan_state", "mark_worker_process",
           "plan_from_env", "plan_from_specs", "site_armed", "triggered"]

#: Every named injection site production code consults.
SITES = ("task.crash", "task.timeout", "task.exception", "numpy.import",
         "pool.broken", "memory.pressure", "pipeline.stale_artifact",
         "shm.attach", "shm.stale", "server.request_timeout",
         "server.session_crash", "server.queue_overflow",
         "io.parse_error")

#: Environment variable holding the ambient fault plan (see
#: :func:`plan_from_env` for the format).
ENV_VAR = "REPRO_FAULTS"

#: ``True`` in processes that may be killed outright by ``task.crash``
#: (fork-pool workers); set by :func:`mark_worker_process`.
WORKER_PROCESS = False

#: Labeled view of injected firings (one sample per site), recorded
#: durably next to the flat ``faults.injected.<site>`` counters.
_FAULTS_INJECTED = _metrics.REGISTRY.counter(
    "fault.injected", labels=("site",),
    help="Injected chaos firings by fault site (durable: survives "
         "discarded task attempts)")


class InjectedFault(RuntimeError):
    """The error raised by ``task.exception`` (and non-worker crashes)."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One site's trigger schedule.

    Attributes
    ----------
    site:
        One of :data:`SITES`.
    times:
        Maximum number of firings (``None`` = unlimited).
    after:
        Zero-based hit index of the first eligible firing: ``after=2``
        skips the first two times the site is reached.
    rate:
        ``None`` fires on every eligible hit; otherwise each eligible
        hit fires with this probability, drawn from a ``random.Random``
        seeded with ``seed`` — reproducible by construction.
    seed:
        Seed for the per-site RNG (only consulted when ``rate`` is set).
    seconds:
        Sleep duration for ``task.timeout`` firings.
    """

    site: str
    times: int | None = 1
    after: int = 0
    rate: float | None = None
    seed: int = 0
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"expected one of {SITES}")
        if self.times is not None and self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``site[:key=value,...]``.

        Keys: ``times`` (int or ``inf``), ``after``, ``rate``, ``seed``,
        ``seconds``.  Example: ``task.timeout:times=1,seconds=0.2``.
        """
        site, _, params = text.strip().partition(":")
        kwargs: dict = {}
        if params:
            for item in params.split(","):
                key, eq, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if not eq or not value:
                    raise ValueError(
                        f"bad fault parameter {item!r} in {text!r}; "
                        f"expected key=value")
                if key == "times":
                    kwargs["times"] = (None if value == "inf"
                                       else int(value))
                elif key in ("after", "seed"):
                    kwargs[key] = int(value)
                elif key in ("rate", "seconds"):
                    kwargs[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault parameter {key!r} in {text!r}; "
                        f"expected times/after/rate/seed/seconds")
        return cls(site=site.strip(), **kwargs)


class _SiteState:
    """Mutable trigger bookkeeping for one armed site."""

    __slots__ = ("spec", "hits", "fired", "rng")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.hits = 0
        self.fired = 0
        self.rng = random.Random(spec.seed)


class FaultPlan:
    """A set of armed sites with thread-safe schedule evaluation."""

    def __init__(self, specs: Iterator[FaultSpec] | list[FaultSpec]) -> None:
        self._lock = threading.Lock()
        self._sites: dict[str, _SiteState] = {}
        for spec in specs:
            if spec.site in self._sites:
                raise ValueError(
                    f"duplicate fault site {spec.site!r} in plan")
            self._sites[spec.site] = _SiteState(spec)

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(self._sites)

    def spec(self, site: str) -> FaultSpec | None:
        state = self._sites.get(site)
        return state.spec if state is not None else None

    def should_trigger(self, site: str) -> bool:
        """Advance ``site``'s hit counter; ``True`` when it fires now."""
        state = self._sites.get(site)
        if state is None:
            return False
        with self._lock:
            index = state.hits
            state.hits += 1
            spec = state.spec
            if index < spec.after:
                return False
            if spec.times is not None and state.fired >= spec.times:
                return False
            if spec.rate is not None and state.rng.random() >= spec.rate:
                return False
            state.fired += 1
            return True

    def stats(self) -> dict[str, tuple[int, int]]:
        """``{site: (hits, fired)}`` — for assertions in chaos tests."""
        with self._lock:
            return {site: (st.hits, st.fired)
                    for site, st in self._sites.items()}


def plan_from_specs(*specs: FaultSpec | str) -> FaultPlan:
    """Build a plan from specs or ``site:key=value,...`` strings."""
    return FaultPlan([spec if isinstance(spec, FaultSpec)
                      else FaultSpec.parse(spec) for spec in specs])


def plan_from_env(value: str | None = None) -> FaultPlan | None:
    """Parse the ``REPRO_FAULTS`` format: specs joined with ``;``.

    ``None`` (or an empty/whitespace value) arms nothing.  Example::

        REPRO_FAULTS="task.exception:times=1;numpy.import:times=1,after=2"
    """
    if value is None:
        value = os.environ.get(ENV_VAR)
    if value is None or not value.strip():
        return None
    return plan_from_specs(*[entry for entry in value.split(";")
                             if entry.strip()])


#: The armed plan, or ``None``.  Hot call sites read this through
#: :func:`check`; arming goes through :func:`inject` (or the
#: environment at import time).
_ACTIVE: FaultPlan | None = plan_from_env()

#: Arming generation: bumped every time :data:`_ACTIVE` is reassigned,
#: so persistent pool workers can tell a freshly armed plan from the
#: one they already installed (see :func:`install_plan_state`).
_GEN = 0

#: The generation this process last installed via
#: :func:`install_plan_state` (worker-side bookkeeping).
_INSTALLED_GEN: int | None = None


def armed() -> bool:
    """Whether any fault plan is currently armed."""
    return _ACTIVE is not None


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _ACTIVE


def site_armed(site: str) -> FaultSpec | None:
    """The armed spec for ``site``, or ``None`` when it cannot fire."""
    plan = _ACTIVE
    return None if plan is None else plan.spec(site)


def export_plan_state() -> tuple:
    """A picklable snapshot of the armed plan for pool workers.

    Returns ``(generation, specs, stats)`` — ``specs``/``stats`` are
    ``None`` when nothing is armed.  Shipped with every task submitted
    to a *persistent* process pool, whose workers were forked before
    the current ``inject()`` window and therefore did not inherit it.
    """
    plan = _ACTIVE
    if plan is None:
        return (_GEN, None, None)
    return (_GEN, tuple(state.spec for state in plan._sites.values()),
            plan.stats())


def install_plan_state(state: tuple) -> None:
    """Adopt an exported plan snapshot (idempotent per generation).

    Installing the same generation twice is a no-op, so one worker
    process running many tasks of the same arming window keeps a single
    plan whose trigger schedule advances across its tasks — exactly the
    per-worker semantics of a fork-inherited plan.  Each site's
    hit/fired counters are fast-forwarded to the parent's snapshot,
    mirroring what a fork at submit time would have copied.
    """
    global _ACTIVE, _INSTALLED_GEN
    gen, specs, stats = state
    if gen == _INSTALLED_GEN:
        return
    _INSTALLED_GEN = gen
    if specs is None:
        _ACTIVE = None
        return
    plan = FaultPlan(list(specs))
    if stats:
        for site, (hits, fired) in stats.items():
            site_state = plan._sites.get(site)
            if site_state is not None:
                site_state.hits = hits
                site_state.fired = fired
    _ACTIVE = plan


@contextmanager
def inject(*specs: FaultSpec | str, plan: FaultPlan | None = None):
    """Arm a fault plan for the ``with`` body (process-global).

    The new plan *shadows* whatever was armed before (including the
    ``REPRO_FAULTS`` ambient plan) so programmatic chaos tests stay
    deterministic under an env-armed run; the previous plan is restored
    on exit.  Yields the armed :class:`FaultPlan` so tests can assert
    on :meth:`FaultPlan.stats`.
    """
    global _ACTIVE, _GEN
    if plan is None:
        plan = plan_from_specs(*specs)
    elif specs:
        raise ValueError("pass either specs or a prebuilt plan, not both")
    outer = _ACTIVE
    _ACTIVE = plan
    _GEN += 1
    try:
        yield plan
    finally:
        _ACTIVE = outer
        _GEN += 1


def mark_worker_process() -> None:
    """Declare this process expendable (a fork-pool worker).

    Inside a marked process ``task.crash`` firings kill the process
    outright (``os._exit``), modelling a segfaulting worker; elsewhere
    they raise :class:`InjectedFault` so a crash injected under the
    serial or thread executor cannot take down the caller's process.
    """
    global WORKER_PROCESS
    WORKER_PROCESS = True


def check(site: str) -> None:
    """Fire ``site``'s fault action if an armed schedule says so.

    Disarmed cost is one module-global load plus an identity test.
    """
    plan = _ACTIVE
    if plan is None:
        return
    if not plan.should_trigger(site):
        return
    col = _obs.ACTIVE
    if col is not None:
        # Durable: the attempt this firing kills is discarded, but the
        # evidence that a fault was injected must not be.
        col.add_durable(f"faults.injected.{site}")
        _FAULTS_INJECTED.labels(site=site).inc_durable()
    spec = plan.spec(site)
    _fire(site, spec)


def triggered(site: str) -> bool:
    """Non-raising variant of :func:`check` for *corruption* sites.

    Advances the schedule and records the durable evidence counter
    exactly like :func:`check`, but returns ``True`` instead of raising
    so the call site can model a silent corruption (e.g. poisoning a
    cached artifact's validity basis at ``pipeline.stale_artifact``).
    """
    plan = _ACTIVE
    if plan is None:
        return False
    if not plan.should_trigger(site):
        return False
    col = _obs.ACTIVE
    if col is not None:
        col.add_durable(f"faults.injected.{site}")
        _FAULTS_INJECTED.labels(site=site).inc_durable()
    return True


def _fire(site: str, spec: FaultSpec) -> None:
    if site == "task.exception":
        raise InjectedFault(site)
    if site == "memory.pressure":
        raise MemoryError(f"injected fault at site {site!r}")
    if site == "numpy.import":
        raise ImportError(
            f"numpy is unavailable (injected fault at site {site!r})")
    if site in ("task.timeout", "server.request_timeout"):
        import time
        time.sleep(spec.seconds)
        return
    if site == "server.session_crash":
        raise InjectedFault(site)
    if site == "task.crash":
        if WORKER_PROCESS:
            os._exit(70)
        raise InjectedFault(site)
    if site == "pool.broken":
        from concurrent.futures.process import BrokenProcessPool
        raise BrokenProcessPool(
            f"injected fault at site {site!r}")
    if site == "shm.attach":
        from repro.exceptions import ShmAttachError
        raise ShmAttachError(f"injected fault at site {site!r}")
    if site == "shm.stale":
        from repro.exceptions import ShmStaleError
        raise ShmStaleError(f"injected fault at site {site!r}")
    if site == "io.parse_error":
        from repro.exceptions import FormatError
        raise FormatError(f"injected fault at site {site!r}")
    # Corruption sites (pipeline.stale_artifact, server.queue_overflow)
    # are normally consulted via :func:`triggered`; a plain check()
    # still fails loudly.
    raise InjectedFault(site)
