"""Parametric random design generator.

Produces structurally valid sequential designs: a clock tree of a chosen
depth, flip-flops hanging off its leaves, and a random combinational
cloud between Q pins / primary inputs and D pins / primary outputs.

Two structural modes:

* **free-form** (``layers == 0``) — gates chain off a growing driver pool.
  Cheap, irregular, good for randomized correctness testing.
* **layered** (``layers > 0``) — gates form ``layers`` pipeline stages
  split into ``channels`` mostly-independent columns, the way synthesized
  datapaths look after timing optimization.  Every register-to-register
  path crosses all stages, so path delays — and therefore slacks — are
  tightly clustered ("slack wall").  This is the regime the paper's
  industrial benchmarks live in, and the regime where slack-threshold
  pruning heuristics stop working; the benchmark suite uses this mode.

Knobs that matter for reproducing the paper's observations:

* ``clock_depth`` — sets ``D``; the engine's work is ``O(nD)`` while the
  pair-enumeration baselines pay ``O(n * #FF)``, so the ``#FFs / D`` ratio
  is the speedup lever (Table III's fifth column).
* ``channels`` (layered) / ``global_mix`` (free-form) — controls how many
  capturing flip-flops each launching flip-flop reaches ("FF
  connectivity", Table III's last column): few channels or high mixing
  means wide cones.
* ``delay_jitter`` — relative spread of random delays; small values
  compress the slack distribution further.

Generation is deterministic per (spec, seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.circuit.netlist import Netlist

__all__ = ["RandomDesignSpec", "random_design"]


@dataclass(frozen=True, slots=True)
class RandomDesignSpec:
    """Parameters for :func:`random_design`; see module docstring."""

    name: str = "random"
    seed: int = 0
    num_ffs: int = 50
    num_gates: int = 200
    num_pis: int = 4
    num_pos: int = 4
    clock_depth: int = 5
    max_gate_inputs: int = 3
    global_mix: float = 0.1
    recent_window: int = 48
    layers: int = 0
    channels: int = 1
    delay_mean: float = 1.0
    delay_jitter: float = 1.0
    late_spread: float = 0.5
    tree_delay_mean: float = 1.0
    tree_delay_jitter: float = 1.0
    tree_late_spread: float = 0.25
    t_setup_max: float = 0.5
    t_hold_max: float = 0.2
    depth_jitter: float = 0.1
    source_latency: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.num_ffs < 1:
            raise ValueError("num_ffs must be at least 1")
        if self.clock_depth < 1:
            raise ValueError("clock_depth must be at least 1")
        if not 0.0 <= self.global_mix <= 1.0:
            raise ValueError("global_mix must be in [0, 1]")
        if self.recent_window < 1:
            raise ValueError("recent_window must be at least 1")
        if self.max_gate_inputs < 1:
            raise ValueError("max_gate_inputs must be at least 1")
        if self.layers < 0:
            raise ValueError("layers must be non-negative")
        if self.channels < 1:
            raise ValueError("channels must be at least 1")
        if not 0.0 <= self.delay_jitter <= 1.0:
            raise ValueError("delay_jitter must be in [0, 1]")
        if not 0.0 <= self.tree_delay_jitter <= 1.0:
            raise ValueError("tree_delay_jitter must be in [0, 1]")
        if self.layers > 0 and self.num_gates < self.layers * self.channels:
            raise ValueError(
                "layered mode needs at least layers * channels gates")


def _edge_delay(rng: random.Random, mean: float, spread: float,
                jitter: float = 1.0) -> tuple[float, float]:
    """A random (early, late) delay pair with late >= early > 0.

    ``jitter`` scales the width of the early-delay distribution around
    ``mean``; ``jitter=1`` spans 0.2x-1.8x, smaller values tighten it.
    """
    width = 0.8 * jitter
    early = rng.uniform((1.0 - width) * mean, (1.0 + width) * mean)
    late = early * (1.0 + rng.uniform(0.0, spread))
    return early, late


def _build_clock_tree(netlist: Netlist, spec: RandomDesignSpec,
                      rng: random.Random, ff_names: list[str]) -> None:
    """Attach all flip-flop clock pins below a tree of ~``clock_depth``.

    The tree is built by recursively splitting the leaf set among child
    buffers; ``depth_jitter`` occasionally attaches a group one level
    early so leaf depths vary, as they do in real clock networks.
    """
    netlist.set_clock_root("clk", source_at=spec.source_latency)
    branching = max(2, round(len(ff_names) ** (1.0 / spec.clock_depth)))
    buffer_counter = [0]

    def place(parent: str, depth_remaining: int, leaves: list[str]) -> None:
        if not leaves:
            return
        # Jitter may attach *small* groups (at most two levels' worth of
        # leaves) early so leaf depths vary; large groups always keep
        # descending, so the tree reaches its target depth.
        attach_now = (depth_remaining <= 1 or len(leaves) == 1
                      or (len(leaves) <= branching * branching
                          and rng.random() < spec.depth_jitter))
        if attach_now:
            for ff_name in leaves:
                early, late = _edge_delay(rng, spec.tree_delay_mean,
                                          spec.tree_late_spread,
                                          spec.tree_delay_jitter)
                netlist.connect_clock(ff_name, parent, early, late)
            return
        num_children = min(branching, len(leaves))
        chunks: list[list[str]] = [[] for _ in range(num_children)]
        for i, ff_name in enumerate(leaves):
            chunks[i % num_children].append(ff_name)
        for chunk in chunks:
            buffer_counter[0] += 1
            buffer_name = f"cbuf{buffer_counter[0]}"
            early, late = _edge_delay(rng, spec.tree_delay_mean,
                                      spec.tree_late_spread,
                                      spec.tree_delay_jitter)
            netlist.add_clock_buffer(buffer_name, parent, early, late)
            place(buffer_name, depth_remaining - 1, chunk)

    shuffled = list(ff_names)
    rng.shuffle(shuffled)
    place("clk", spec.clock_depth, shuffled)


def _generate_freeform(netlist: Netlist, spec: RandomDesignSpec,
                       rng: random.Random, pi_names: list[str],
                       ff_names: list[str]) -> None:
    """Pool-based irregular logic (the original test-oriented mode)."""
    # Driver pool grows as gates are created.  Each input either follows
    # the recent window (local, chain-forming) or jumps uniformly into the
    # whole pool (global mixing -> high FF connectivity).
    pool: list[str] = list(pi_names) + [f"{name}/Q" for name in ff_names]
    rng.shuffle(pool)

    def sample_drivers(count: int) -> list[str]:
        drivers: list[str] = []
        attempts = 0
        while len(drivers) < count and attempts < 8 * count:
            attempts += 1
            if rng.random() < spec.global_mix:
                choice = pool[rng.randrange(len(pool))]
            else:
                start = max(0, len(pool) - spec.recent_window)
                choice = pool[rng.randrange(start, len(pool))]
            if choice not in drivers:  # no parallel edges into one gate
                drivers.append(choice)
        if not drivers:  # pathological dedup failure on tiny pools
            drivers.append(pool[-1])
        return drivers

    def sample_sink_driver() -> str:
        # Flip-flop D pins and primary outputs tap *deep* logic (the last
        # half of the pool) so endpoint cones reflect the design's mixing
        # rather than an accidental shallow pick.
        start = len(pool) // 2
        return pool[rng.randrange(start, len(pool))]

    for i in range(spec.num_gates):
        num_inputs = rng.randint(1, spec.max_gate_inputs)
        drivers = sample_drivers(num_inputs)
        num_inputs = len(drivers)
        arcs = [_edge_delay(rng, spec.delay_mean, spec.late_spread,
                            spec.delay_jitter)
                for _ in range(num_inputs)]
        gate = netlist.add_gate(f"g{i}", num_inputs=num_inputs,
                                arc_delays=arcs)
        for input_index, driver in enumerate(drivers):
            early, late = _edge_delay(rng, 0.2 * spec.delay_mean,
                                      spec.late_spread, spec.delay_jitter)
            netlist.connect(driver, gate.input_pin(input_index),
                            early, late)
        pool.append(gate.output_pin)

    for name in ff_names:
        driver = sample_sink_driver()
        early, late = _edge_delay(rng, 0.2 * spec.delay_mean,
                                  spec.late_spread, spec.delay_jitter)
        netlist.connect(driver, f"{name}/D", early, late)

    for i in range(spec.num_pos):
        # Required times wide enough that output tests exist but rarely
        # dominate; the engine's OUTPUT family is an extension anyway.
        rat = spec.delay_mean * (spec.num_gates ** 0.5) * 4.0
        po = netlist.add_primary_output(f"out{i}", rat_early=0.0,
                                        rat_late=rat)
        driver = sample_sink_driver()
        early, late = _edge_delay(rng, 0.2 * spec.delay_mean,
                                  spec.late_spread, spec.delay_jitter)
        netlist.connect(driver, po, early, late)


def _generate_layered(netlist: Netlist, spec: RandomDesignSpec,
                      rng: random.Random, pi_names: list[str],
                      ff_names: list[str]) -> None:
    """Pipeline-stage logic with per-channel columns (suite mode).

    Gates sit in ``layers`` stages x ``channels`` columns.  A gate's
    inputs come from the previous stage of its own column, except that
    with probability ``global_mix`` an input jumps to the previous stage
    of a random *other* column (cross-channel mixing -> FF connectivity).
    Every flip-flop D pin taps the final stage of its own column, so all
    register-to-register paths cross all stages and path delays cluster.
    """
    channels = min(spec.channels, max(1, spec.num_ffs))
    layers = spec.layers

    # Stage-0 sources per channel: Q pins round-robin, PIs appended.
    sources: list[list[str]] = [[] for _ in range(channels)]
    for i, name in enumerate(ff_names):
        sources[i % channels].append(f"{name}/Q")
    for i, name in enumerate(pi_names):
        sources[i % channels].append(name)

    previous: list[list[str]] = sources
    gate_index = 0
    per_stage = max(1, spec.num_gates // (layers * channels))
    for layer in range(layers):
        current: list[list[str]] = [[] for _ in range(channels)]
        for channel in range(channels):
            for _ in range(per_stage):
                # At least two inputs: realistic logic depth and enough
                # reconvergence that stage arrival maxima concentrate
                # (the post-optimization "slack wall").
                num_inputs = rng.randint(min(2, spec.max_gate_inputs),
                                         spec.max_gate_inputs)
                drivers: list[str] = []
                own = previous[channel]
                for input_index in range(num_inputs):
                    if channels > 1 and rng.random() < spec.global_mix:
                        other = rng.randrange(channels)
                        bank = previous[other] or own
                    else:
                        bank = own
                    choice = bank[rng.randrange(len(bank))]
                    if choice not in drivers:
                        drivers.append(choice)
                arcs = [_edge_delay(rng, spec.delay_mean, spec.late_spread,
                                    spec.delay_jitter)
                        for _ in range(len(drivers))]
                gate = netlist.add_gate(f"g{gate_index}",
                                        num_inputs=len(drivers),
                                        arc_delays=arcs)
                gate_index += 1
                for input_index, driver in enumerate(drivers):
                    early, late = _edge_delay(rng, 0.2 * spec.delay_mean,
                                              spec.late_spread,
                                              spec.delay_jitter)
                    netlist.connect(driver, gate.input_pin(input_index),
                                    early, late)
                current[channel].append(gate.output_pin)
        previous = current

    for i, name in enumerate(ff_names):
        bank = previous[i % channels]
        driver = bank[rng.randrange(len(bank))]
        early, late = _edge_delay(rng, 0.2 * spec.delay_mean,
                                  spec.late_spread, spec.delay_jitter)
        netlist.connect(driver, f"{name}/D", early, late)

    for i in range(spec.num_pos):
        # Generous bound: output ports are not the critical tests here
        # (the paper's problem statement only times FF captures).
        rat = spec.delay_mean * (layers + 4) * 3.0
        po = netlist.add_primary_output(f"out{i}", rat_early=0.0,
                                        rat_late=rat)
        bank = previous[i % channels]
        driver = bank[rng.randrange(len(bank))]
        early, late = _edge_delay(rng, 0.2 * spec.delay_mean,
                                  spec.late_spread, spec.delay_jitter)
        netlist.connect(driver, po, early, late)


def random_design(spec: RandomDesignSpec) -> TimingGraph:
    """Generate and elaborate one random design."""
    rng = random.Random(spec.seed)
    netlist = Netlist(spec.name)

    pi_names = [netlist.add_primary_input(
        f"in{i}", 0.0, rng.uniform(0.0, spec.delay_mean))
        for i in range(spec.num_pis)]

    ff_names = []
    for i in range(spec.num_ffs):
        c2q_early, c2q_late = _edge_delay(rng, 0.3 * spec.delay_mean,
                                          spec.late_spread,
                                          spec.delay_jitter)
        netlist.add_flipflop(
            f"ff{i}",
            t_setup=rng.uniform(0.0, spec.t_setup_max),
            t_hold=rng.uniform(0.0, spec.t_hold_max),
            clk_to_q=(c2q_early, c2q_late))
        ff_names.append(f"ff{i}")

    _build_clock_tree(netlist, spec, rng, ff_names)

    if spec.layers > 0:
        _generate_layered(netlist, spec, rng, pi_names, ff_names)
    else:
        _generate_freeform(netlist, spec, rng, pi_names, ff_names)

    return netlist.elaborate()
