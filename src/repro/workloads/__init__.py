"""Workload generation: synthetic designs with controlled statistics.

The paper evaluates on TAU contest industrial designs that are not
redistributable; this package synthesizes designs whose *shape* matches
the paper's Table III — clock-tree depth ``D``, flip-flop count, the
#FFs/D gap the speedup rests on, and the launch/capture "FF connectivity"
that separates the pruning baselines — at laptop-friendly scale.

* :mod:`~repro.workloads.random_circuit` — the parametric generator.
* :mod:`~repro.workloads.suite` — the eight named, scaled benchmark
  designs mirroring Table III.
* :mod:`~repro.workloads.stats` — design statistics (Table III columns).
"""

from repro.workloads.random_circuit import RandomDesignSpec, random_design
from repro.workloads.stats import DesignStats, design_statistics
from repro.workloads.suite import (SUITE_SPECS, build_design, design_names,
                                   suggest_clock_period)

__all__ = [
    "DesignStats",
    "RandomDesignSpec",
    "SUITE_SPECS",
    "build_design",
    "design_names",
    "design_statistics",
    "random_design",
    "suggest_clock_period",
]
