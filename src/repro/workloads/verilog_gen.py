"""Random gate-level Verilog designs (with matching SDC constraints).

Generates a :class:`~repro.io.verilog.VerilogModule` built from a
standard-cell library: a clock buffer chain, registers, and layered
combinational logic — the file-based twin of
:mod:`repro.transitions.random_rf`.  Used to exercise the full
``.v + .sdc -> analysis`` flow end-to-end in tests and examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.io.verilog import VerilogInstance, VerilogModule
from repro.library.cells import StandardCellLibrary
from repro.library.standard import default_library

__all__ = ["RandomVerilogSpec", "random_verilog_design"]


@dataclass(frozen=True, slots=True)
class RandomVerilogSpec:
    """Parameters for :func:`random_verilog_design`."""

    name: str = "vgen"
    seed: int = 0
    num_ffs: int = 6
    num_pis: int = 2
    num_pos: int = 1
    layers: int = 3
    gates_per_layer: int = 4
    clock_buffers: int = 2
    clock_period: float = 20.0
    input_delay: float = 0.3
    output_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.num_ffs < 1 or self.layers < 1 or self.gates_per_layer < 1:
            raise ValueError("num_ffs, layers, gates_per_layer must be "
                             "positive")
        if self.clock_buffers < 0:
            raise ValueError("clock_buffers must be non-negative")


def random_verilog_design(spec: RandomVerilogSpec,
                          library: StandardCellLibrary | None = None
                          ) -> tuple[VerilogModule, str]:
    """Generate a module and its SDC text; deterministic per spec."""
    rng = random.Random(spec.seed)
    library = library or default_library()
    comb_cells = [name for name in library
                  if not library.is_flip_flop(name)]
    buf_cells = [name for name in comb_cells if name.startswith("BUF")]
    ff_cells = [name for name in library if library.is_flip_flop(name)]

    module = VerilogModule(name=spec.name)
    module.inputs.append("clk")
    wires: list[str] = []

    def wire(name: str) -> str:
        wires.append(name)
        return name

    # Clock buffer chain clk -> ck0 -> ck1 -> ...
    clock_net = "clk"
    for i in range(spec.clock_buffers):
        out = wire(f"ck{i}")
        module.instances.append(VerilogInstance(
            cell=rng.choice(buf_cells), name=f"cbuf{i}",
            connections={"A0": clock_net, "Y": out}))
        clock_net = out

    pis = []
    for i in range(spec.num_pis):
        name = f"in{i}"
        module.inputs.append(name)
        pis.append(name)

    q_nets = []
    for i in range(spec.num_ffs):
        q_nets.append(wire(f"q{i}"))

    previous = q_nets + pis
    gate_index = 0
    for layer in range(spec.layers):
        current = []
        for _ in range(spec.gates_per_layer):
            cell_name = rng.choice(comb_cells)
            cell = library.cell(cell_name)
            out = wire(f"n{layer}_{gate_index}")
            connections = {"Y": out}
            for input_index in range(cell.num_inputs):
                connections[f"A{input_index}"] = rng.choice(previous)
            module.instances.append(VerilogInstance(
                cell=cell_name, name=f"u{gate_index}",
                connections=connections))
            gate_index += 1
            current.append(out)
        previous = current

    for i in range(spec.num_ffs):
        module.instances.append(VerilogInstance(
            cell=rng.choice(ff_cells), name=f"r{i}",
            connections={"CK": clock_net, "D": rng.choice(previous),
                         "Q": q_nets[i]}))

    outputs = []
    for i in range(spec.num_pos):
        name = f"out{i}"
        module.outputs.append(name)
        outputs.append(name)
        module.instances.append(VerilogInstance(
            cell=rng.choice(buf_cells), name=f"ob{i}",
            connections={"A0": rng.choice(previous), "Y": name}))

    module.wires = wires
    module.ports = module.inputs + module.outputs

    sdc_lines = [f"create_clock -period {spec.clock_period} "
                 f"-name core [get_ports clk]"]
    for name in pis:
        sdc_lines.append(f"set_input_delay {spec.input_delay} "
                         f"-clock core [get_ports {name}]")
    for name in outputs:
        sdc_lines.append(f"set_output_delay {spec.output_delay} "
                         f"-clock core [get_ports {name}]")
    return module, "\n".join(sdc_lines) + "\n"
