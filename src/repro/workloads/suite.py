"""The scaled benchmark suite mirroring the paper's Table III.

Eight deterministic synthetic designs, one per industrial benchmark in
the paper, scaled to pure-Python-friendly sizes while preserving each
design's *shape*:

* the clock-tree depth ``D`` stays in the paper's 8-12 band relative to
  flip-flop counts in the hundreds (so the #FFs/D gap the speedup rests
  on remains one to two orders of magnitude),
* the relative size ordering across designs matches Table III, and
* ``netcard``/``leon2``/``leon3mp`` get high ``global_mix`` (dense global
  mixing) to reproduce their extreme "FF connectivity", which is what
  defeats the pruning baselines in the paper.

``build_design(name, scale=...)`` lets benchmarks grow or shrink the
whole suite uniformly.
"""

from __future__ import annotations

from repro.circuit.graph import TimingGraph
from repro.sta.arrival import propagate_arrivals
from repro.sta.constraints import TimingConstraints
from repro.workloads.random_circuit import RandomDesignSpec, random_design

__all__ = ["SUITE_SPECS", "build_design", "design_names",
           "suggest_clock_period"]

# name -> (num_ffs, num_gates, clock_depth, layers, channels, global_mix,
#          delay_jitter, seed).  All suite designs use the layered
# (slack-wall) generator; channels/global_mix set the FF connectivity.
SUITE_SPECS: dict[str, tuple[int, int, int, int, int, float, float, int]] = {
    "vga_lcdv2": (140, 800, 8, 10, 10, 0.03, 0.15, 1001),
    "combo4v2": (150, 1300, 10, 12, 8, 0.04, 0.15, 1002),
    "combo5v2": (200, 3000, 11, 14, 12, 0.03, 0.15, 1003),
    "combo6v2": (300, 5000, 12, 14, 10, 0.04, 0.15, 1004),
    "combo7v2": (260, 4200, 11, 14, 10, 0.03, 0.15, 1005),
    "netcard": (420, 5500, 9, 12, 2, 0.25, 0.15, 1006),
    "leon2": (600, 6000, 10, 12, 2, 0.35, 0.15, 1007),
    "leon3mp": (480, 4800, 9, 12, 2, 0.30, 0.15, 1008),
}


def design_names() -> list[str]:
    """Suite design names in Table III order."""
    return list(SUITE_SPECS)


def suggest_clock_period(graph: TimingGraph,
                         utilization: float = 0.95) -> float:
    """A clock period that makes the design realistically critical.

    The period is set to ``utilization`` times the smallest period that
    would satisfy every setup test pre-CPPR, so the worst endpoints sit
    slightly negative — the regime where CPPR results actually matter.
    """
    if not 0.0 < utilization:
        raise ValueError("utilization must be positive")
    arrivals = propagate_arrivals(graph)
    tree = graph.clock_tree
    required = 0.0
    for ff in graph.ffs:
        if not arrivals.is_reachable(ff.d_pin):
            continue
        needed = (arrivals.late[ff.d_pin] + ff.t_setup
                  - tree.at_early(ff.tree_node))
        required = max(required, needed)
    if required <= 0.0:
        return 1.0
    return utilization * required


def build_design(name: str, scale: float = 1.0,
                 utilization: float = 0.98
                 ) -> tuple[TimingGraph, TimingConstraints]:
    """Build one suite design (deterministic for a given name and scale).

    ``scale`` multiplies flip-flop, gate, and port counts; the clock
    depth is kept, so scaling changes the #FFs/D ratio the way larger
    instances of the same design family would.
    """
    if name not in SUITE_SPECS:
        raise KeyError(
            f"unknown design {name!r}; available: {design_names()}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    (num_ffs, num_gates, depth, layers, channels, global_mix,
     delay_jitter, seed) = SUITE_SPECS[name]
    num_gates = max(8, round(num_gates * scale))
    spec = RandomDesignSpec(
        name=name,
        seed=seed,
        num_ffs=max(4, round(num_ffs * scale)),
        num_gates=max(num_gates, layers * channels),
        num_pis=max(2, round(8 * scale)),
        num_pos=max(2, round(8 * scale)),
        clock_depth=depth,
        layers=layers,
        channels=channels,
        global_mix=global_mix,
        delay_jitter=delay_jitter,
        max_gate_inputs=4,
        # Balanced clock tree (tiny early-delay skew) with a large
        # early/late spread: big CPPR credits, which is the regime the
        # paper motivates.
        tree_delay_jitter=0.05,
        tree_late_spread=1.0,
        late_spread=0.2,
        t_setup_max=0.2,
        # Uniform leaf depth: balanced trees put every flip-flop the same
        # number of buffers from the source, which together with the
        # layered datapath produces the industrial "slack wall" that
        # defeats endpoint-slack pruning heuristics.
        depth_jitter=0.0,
    )
    graph = random_design(spec)
    constraints = TimingConstraints(
        suggest_clock_period(graph, utilization))
    return graph, constraints
