"""Design statistics — the columns of the paper's Table III.

``FF connectivity`` is the paper's pruning-relevance metric: the average
number of capturing flip-flops reachable from each launching flip-flop.
It is computed exactly with a bitset reachability propagation (one Python
big-int per pin, one bit per launching FF), which is ``O(n * #FF / 64)``
word operations — fast enough to run on every generated design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph

__all__ = ["DesignStats", "design_statistics", "total_connected_pairs"]


@dataclass(frozen=True, slots=True)
class DesignStats:
    """One row of Table III."""

    name: str
    num_edges: int
    num_ffs: int
    num_levels: int
    ffs_per_level: float
    ff_connectivity: float

    def row(self) -> str:
        """Format as a Table III-style row."""
        return (f"{self.name:<16} {self.num_edges:>9} {self.num_ffs:>7} "
                f"{self.num_levels:>4} {self.ffs_per_level:>9.2f} "
                f"{self.ff_connectivity:>9.2f}")

    @staticmethod
    def header() -> str:
        return (f"{'Benchmark':<16} {'#Edges':>9} {'#FFs':>7} {'D':>4} "
                f"{'#FFs/D':>9} {'FFconn':>9}")


def total_connected_pairs(graph: TimingGraph) -> int:
    """Number of (launching FF, capturing FF) pairs connected by a path.

    Self-loops count: a launching FF that reaches its own D pin forms a
    testable pair with itself.
    """
    reach = [0] * graph.num_pins
    for ff in graph.ffs:
        reach[ff.q_pin] |= 1 << ff.index
    for u in graph.topo_order:
        mask = reach[u]
        if not mask:
            continue
        for v, _early, _late in graph.fanout[u]:
            reach[v] |= mask
    return sum(reach[ff.d_pin].bit_count() for ff in graph.ffs)


def design_statistics(graph: TimingGraph) -> DesignStats:
    """Compute the Table III statistics for ``graph``.

    ``num_edges`` counts data edges plus clock-tree edges, matching the
    paper's whole-circuit edge counts.
    """
    num_levels = graph.clock_tree.num_levels
    num_ffs = graph.num_ffs
    num_edges = graph.num_edges + max(0, len(graph.clock_tree) - 1)
    pairs = total_connected_pairs(graph)
    return DesignStats(
        name=graph.name,
        num_edges=num_edges,
        num_ffs=num_ffs,
        num_levels=num_levels,
        ffs_per_level=(num_ffs / num_levels) if num_levels else 0.0,
        ff_connectivity=(pairs / num_ffs) if num_ffs else 0.0)
