"""Design file I/O: the unified frontend registry plus serializers.

Designs enter through one entry point, :func:`load_design`
(:mod:`repro.io.frontend`), which dispatches on the registered format:

* ``tau`` (:mod:`~repro.io.tau_format`) — line-oriented text in the
  spirit of the TAU contest inputs (``.cppr``), human-diffable.
* ``json`` (:mod:`~repro.io.json_format`) — the neutral
  :class:`DesignDescription` as JSON.
* ``verilog`` (:mod:`~repro.io.verilog` + :mod:`~repro.io.flow`) —
  structural netlist + SDC constraints.
* ``yosys`` (:mod:`~repro.io.yosys_json`) — Yosys ``write_json``
  output, mapped onto the generic library.

Netlist formats take an optional SDF side file
(:mod:`~repro.io.sdf`) for early/late delay annotation and min/typ/max
corner extraction.  New formats plug in via :func:`register_format`.
Writing still goes through the per-format ``save_*`` functions.  See
``docs/FORMATS.md``.
"""

from repro.io.design_io import DesignDescription, describe_design, \
    reconstruct_design
from repro.io.eco import EcoUpdates, load_eco_updates, save_eco_updates
from repro.io.frontend import (FormatSpec, ImportedDesign, detect_format,
                               formats, load_design, register_format)
from repro.io.json_format import load_design_json, save_design_json
from repro.io.tau_format import save_design

__all__ = [
    "DesignDescription",
    "EcoUpdates",
    "FormatSpec",
    "ImportedDesign",
    "describe_design",
    "detect_format",
    "formats",
    "load_design",
    "load_design_json",
    "load_eco_updates",
    "reconstruct_design",
    "register_format",
    "save_design",
    "save_design_json",
    "save_eco_updates",
]
