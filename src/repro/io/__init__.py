"""Design file I/O.

Designs round-trip through a neutral :class:`DesignDescription` (a
nested-dict snapshot of the netlist) with two concrete formats:

* :mod:`~repro.io.tau_format` — a line-oriented text format in the spirit
  of the TAU contest inputs (``.cppr`` files), human-diffable.
* :mod:`~repro.io.json_format` — the same description as JSON.
"""

from repro.io.design_io import DesignDescription, describe_design, \
    reconstruct_design
from repro.io.eco import EcoUpdates, load_eco_updates, save_eco_updates
from repro.io.json_format import load_design_json, save_design_json
from repro.io.tau_format import load_design, save_design

__all__ = [
    "DesignDescription",
    "EcoUpdates",
    "describe_design",
    "load_design",
    "load_design_json",
    "load_eco_updates",
    "reconstruct_design",
    "save_design",
    "save_design_json",
    "save_eco_updates",
]
