"""SDC constraint parser (the subset timing flows actually exchange).

Supported commands::

    create_clock -period 5.0 -name core_clk [get_ports clk]
    set_input_delay  0.5 -clock core_clk [get_ports a]
    set_input_delay  0.2 -min -clock core_clk [get_ports a]
    set_output_delay 1.0 -clock core_clk [get_ports y]
    set_output_delay 0.1 -min -clock core_clk [get_ports y]

Semantics follow the usual convention:

* ``set_input_delay D`` (max): the data arrives at the port ``D`` after
  the clock edge — late arrival ``D`` (and early arrival ``D`` unless a
  separate ``-min`` value is given).
* ``set_output_delay D`` (max): downstream logic needs the data ``D``
  before the *next* clock edge — ``rat_late = period - D``.
  ``-min D`` sets the hold requirement ``rat_early = -D``.

Unsupported commands raise :class:`~repro.exceptions.FormatError` rather
than being silently ignored — a constraint file that does not mean what
the timer thinks it means is worse than a parse error.
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field

from repro.exceptions import FormatError

__all__ = ["SdcConstraints", "parse_sdc", "read_sdc"]

_GET_PORTS_RE = re.compile(r"\[\s*get_ports\s+([A-Za-z0-9_$]+)\s*\]")


@dataclass(slots=True)
class _PortDelay:
    max_value: float | None = None
    min_value: float | None = None


@dataclass(slots=True)
class SdcConstraints:
    """Parsed constraint set."""

    clock_port: str | None = None
    clock_name: str | None = None
    clock_period: float | None = None
    input_delays: dict[str, _PortDelay] = field(default_factory=dict)
    output_delays: dict[str, _PortDelay] = field(default_factory=dict)

    def input_arrival(self, port: str) -> tuple[float, float]:
        """(early, late) arrival for an input port (0, 0 if unset)."""
        delay = self.input_delays.get(port)
        if delay is None:
            return 0.0, 0.0
        late = delay.max_value if delay.max_value is not None else 0.0
        early = delay.min_value if delay.min_value is not None else late
        return min(early, late), late

    def output_required(self, port: str
                        ) -> tuple[float | None, float | None]:
        """(rat_early, rat_late) for an output port, ``None`` = unset."""
        delay = self.output_delays.get(port)
        if delay is None:
            return None, None
        rat_late = None
        rat_early = None
        if delay.max_value is not None:
            if self.clock_period is None:
                raise FormatError(
                    f"set_output_delay on {port!r} needs create_clock "
                    f"first")
            rat_late = self.clock_period - delay.max_value
        if delay.min_value is not None:
            rat_early = -delay.min_value
        return rat_early, rat_late


def _extract_port(line: str, line_no: int, path: str | None) -> str:
    match = _GET_PORTS_RE.search(line)
    if not match:
        raise FormatError("expected [get_ports NAME]",
                          line=line_no, path=path)
    return match.group(1)


def _parse_delay_command(line: str, line_no: int,
                         path: str | None) -> tuple[str, float, bool]:
    """Returns (port, value, is_min) for set_input/output_delay."""
    port = _extract_port(line, line_no, path)
    stripped = _GET_PORTS_RE.sub("", line)
    tokens = shlex.split(stripped)
    value: float | None = None
    is_min = False
    i = 1
    while i < len(tokens):
        token = tokens[i]
        if token == "-min":
            is_min = True
        elif token == "-max":
            is_min = False
        elif token == "-clock":
            i += 1  # clock name (single clock designs: informational)
            if i >= len(tokens):
                raise FormatError("-clock needs a name",
                                  line=line_no, path=path)
        elif token.startswith("-"):
            raise FormatError(f"unsupported option {token!r}",
                              line=line_no, path=path)
        else:
            try:
                value = float(token)
            except ValueError:
                raise FormatError(f"expected a delay value, got "
                                  f"{token!r}", line=line_no,
                                  path=path) from None
        i += 1
    if value is None:
        raise FormatError("missing delay value", line=line_no, path=path)
    return port, value, is_min


def parse_sdc(text: str, path: str | None = None) -> SdcConstraints:
    """Parse SDC commands from ``text``."""
    constraints = SdcConstraints()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        command = line.split()[0]

        if command == "create_clock":
            if constraints.clock_period is not None:
                raise FormatError("multiple create_clock commands "
                                  "(single-clock designs only)",
                                  line=line_no, path=path)
            constraints.clock_port = _extract_port(line, line_no, path)
            tokens = shlex.split(_GET_PORTS_RE.sub("", line))
            i = 1
            while i < len(tokens):
                if tokens[i] == "-period":
                    i += 1
                    try:
                        constraints.clock_period = float(tokens[i])
                    except (IndexError, ValueError):
                        raise FormatError("-period needs a number",
                                          line=line_no,
                                          path=path) from None
                elif tokens[i] == "-name":
                    i += 1
                    try:
                        constraints.clock_name = tokens[i]
                    except IndexError:
                        raise FormatError("-name needs a value",
                                          line=line_no,
                                          path=path) from None
                else:
                    raise FormatError(
                        f"unsupported option {tokens[i]!r}",
                        line=line_no, path=path)
                i += 1
            if constraints.clock_period is None:
                raise FormatError("create_clock needs -period",
                                  line=line_no, path=path)
            if constraints.clock_period <= 0:
                raise FormatError("clock period must be positive",
                                  line=line_no, path=path)
        elif command in ("set_input_delay", "set_output_delay"):
            port, value, is_min = _parse_delay_command(line, line_no,
                                                       path)
            table = (constraints.input_delays
                     if command == "set_input_delay"
                     else constraints.output_delays)
            entry = table.setdefault(port, _PortDelay())
            if is_min:
                entry.min_value = value
            else:
                entry.max_value = value
        else:
            raise FormatError(f"unsupported SDC command {command!r}",
                              line=line_no, path=path)
    return constraints


def read_sdc(path: str) -> SdcConstraints:
    """Parse the SDC file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_sdc(handle.read(), path=str(path))
