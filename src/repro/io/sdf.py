"""SDF delay annotation: IOPATH/INTERCONNECT triples onto a netlist.

Parses the Standard Delay Format subset that post-synthesis flows
exchange — ``DELAYFILE`` header, per-instance ``CELL`` entries with
``DELAY (ABSOLUTE ...)`` sections holding ``IOPATH`` (cell arc) and
``INTERCONNECT`` (wire) delays as ``(min:typ:max)`` triples::

    (DELAYFILE
      (SDFVERSION "3.0") (DESIGN "counter") (TIMESCALE 1ns)
      (CELL (CELLTYPE "NAND2_X1") (INSTANCE u1)
        (DELAY (ABSOLUTE
          (IOPATH A0 Y (0.10:0.12:0.16) (0.09:0.11:0.15)))))
      (CELL (CELLTYPE "counter") (INSTANCE)
        (DELAY (ABSOLUTE
          (INTERCONNECT u0/Y u1/A0 (0.01:0.02:0.03))))))

Annotation replaces library arc delays with the file's values through
the :func:`repro.io.flow.elaborate_design` override hooks: each
annotated instance gets a cell clone (``dataclasses.replace``) carrying
its IOPATH delays, and every INTERCONNECT becomes a wire delay on the
sink pin's net.  The base design takes ``(early, late) = (min, max)``
— the file's full on-chip-variation envelope — and
:func:`extract_corners` turns the *min/typ/max* axis into an MCMM
:class:`~repro.corners.CornerSet` (one pure corner per triple member,
expressed as graph deltas from the base) so one SDF feeds the fused
multi-corner sweep.  Unsupported constructs raise
:class:`~repro.exceptions.FormatError` with ``path:line:col``
diagnostics rather than being silently ignored.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field, replace

from repro.exceptions import (FormatError, SourceLocation,
                              TimingConstraintError)

__all__ = ["SdfCell", "SdfDelayFile", "SdfInterconnect", "SdfIoPath",
           "SdfTriple", "TRIPLE_MEMBERS", "build_overrides",
           "extract_corners", "parse_sdf", "read_sdf"]

#: The members of an SDF ``(min:typ:max)`` triple, in axis order.
TRIPLE_MEMBERS = ("min", "typ", "max")

#: Header keywords whose (metadata) payload is consumed and ignored.
_HEADER_SKIP = ("SDFVERSION", "DATE", "VENDOR", "PROGRAM", "VERSION",
                "VOLTAGE", "PROCESS", "TEMPERATURE")

_UNIT_SCALE = {"s": 1e9, "ms": 1e6, "us": 1e3, "ns": 1.0, "ps": 1e-3,
               "fs": 1e-6}

_TOKEN_RE = re.compile(r"\(|\)|\"[^\"]*\"|[^\s()\"]+")


@dataclass(frozen=True, slots=True)
class SdfTriple:
    """One ``(min:typ:max)`` delay value, normalized to design units."""

    min: float
    typ: float
    max: float

    def pick(self, member: str) -> float:
        """The named member (``"min"``, ``"typ"``, or ``"max"``)."""
        try:
            return {"min": self.min, "typ": self.typ,
                    "max": self.max}[member]
        except KeyError:
            raise ValueError(
                f"unknown triple member {member!r}; expected one of "
                f"{TRIPLE_MEMBERS}") from None

    def bounds(self, early: str = "min",
               late: str = "max") -> tuple[float, float]:
        """The (early, late) pair for one corner selection."""
        return self.pick(early), self.pick(late)


@dataclass(frozen=True, slots=True)
class SdfIoPath:
    """One cell arc: input port -> output port with rise/fall triples."""

    from_port: str
    to_port: str
    rise: SdfTriple
    fall: SdfTriple
    loc: SourceLocation


@dataclass(frozen=True, slots=True)
class SdfInterconnect:
    """One wire: driver pin -> sink pin with rise/fall triples."""

    driver: str
    sink: str
    rise: SdfTriple
    fall: SdfTriple
    loc: SourceLocation

    def bounds(self, early: str = "min",
               late: str = "max") -> tuple[float, float]:
        """(early, late) across both transitions (worst envelope)."""
        return (min(self.rise.pick(early), self.fall.pick(early)),
                max(self.rise.pick(late), self.fall.pick(late)))


@dataclass(slots=True)
class SdfCell:
    """One ``(CELL ...)`` entry: an instance and its delay records."""

    celltype: str | None
    instance: str | None
    iopaths: list[SdfIoPath] = field(default_factory=list)
    interconnects: list[SdfInterconnect] = field(default_factory=list)


@dataclass(slots=True)
class SdfDelayFile:
    """A parsed SDF file."""

    path: str | None
    design: str | None
    timescale: float  # multiplier applied to every value (already done)
    divider: str
    cells: list[SdfCell] = field(default_factory=list)

    def iopaths_by_instance(self) -> dict[str, list[SdfIoPath]]:
        """Instance name -> its IOPATH records (cells merged)."""
        table: dict[str, list[SdfIoPath]] = {}
        for cell in self.cells:
            if cell.instance and cell.iopaths:
                table.setdefault(cell.instance, []).extend(cell.iopaths)
        return table

    def interconnects(self) -> list[SdfInterconnect]:
        """Every wire record, scope prefixes already applied."""
        return [wire for cell in self.cells
                for wire in cell.interconnects]


class _Tokens:
    """SDF token stream with ``path:line:col`` tracking."""

    def __init__(self, text: str, path: str | None) -> None:
        self.path = path
        self._items: list[tuple[str, int, int]] = []
        for line_no, line in enumerate(text.splitlines(), start=1):
            for match in _TOKEN_RE.finditer(line):
                self._items.append((match.group(), line_no,
                                    match.start() + 1))
        self._pos = 0
        self._last: tuple[int, int] = (1, 1)

    def loc(self) -> SourceLocation:
        """Location of the *next* token (end of file: the last one)."""
        if self._pos < len(self._items):
            _, line, col = self._items[self._pos]
        elif self._items:
            _, line, col = self._items[-1]
        else:
            line, col = 1, 1
        return SourceLocation(self.path, line, col)

    def last_loc(self) -> SourceLocation:
        """Location of the most recently consumed token."""
        return SourceLocation(self.path, *self._last)

    def peek(self) -> str | None:
        if self._pos < len(self._items):
            return self._items[self._pos][0]
        return None

    def next(self, expected: str | None = None) -> str:
        if self._pos >= len(self._items):
            raise self.loc().error("unexpected end of file")
        token, line, col = self._items[self._pos]
        self._pos += 1
        self._last = (line, col)
        if expected is not None and token != expected:
            raise self.last_loc().error(
                f"expected {expected!r}, got {token!r}")
        return token


def _skip_form(tokens: _Tokens) -> None:
    """Consume the rest of an already-opened ``( ...`` form."""
    depth = 1
    while depth:
        token = tokens.next()
        if token == "(":
            depth += 1
        elif token == ")":
            depth -= 1


def _unquote(token: str) -> str:
    if len(token) >= 2 and token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    return token


def _parse_triple(tokens: _Tokens, scale: float) -> SdfTriple:
    """Parse ``(min:typ:max)`` (or ``(value)``); empty members backfill."""
    tokens.next("(")
    loc = tokens.loc()
    token = tokens.next()
    if token in ("(", ")"):
        raise loc.error(f"expected a delay triple, got {token!r}")
    parts = token.split(":")
    if len(parts) not in (1, 3):
        raise loc.error(
            f"expected VALUE or MIN:TYP:MAX, got {token!r}")
    values: list[float | None] = []
    for part in parts:
        if not part:
            values.append(None)
            continue
        try:
            values.append(float(part) * scale)
        except ValueError:
            raise loc.error(
                f"expected a number, got {part!r}") from None
    if len(values) == 1:
        values = values * 3
    known = [v for v in values if v is not None]
    if not known:
        raise loc.error("a delay triple needs at least one value")
    # Empty members inherit the nearest given one (SDF convention).
    filled = [v if v is not None else known[0] for v in values]
    if values[1] is None and values[0] is not None:
        filled[1] = values[0]
    if values[2] is None:
        filled[2] = filled[1]
    if values[0] is None:
        filled[0] = filled[1]
    tokens.next(")")
    return SdfTriple(*filled)


def _parse_port(tokens: _Tokens) -> str:
    """A port spec: ``NAME`` or ``(posedge NAME)`` / ``(negedge NAME)``."""
    token = tokens.next()
    if token != "(":
        return token
    edge = tokens.next()
    if edge not in ("posedge", "negedge"):
        raise tokens.last_loc().error(
            f"expected posedge/negedge, got {edge!r}")
    port = tokens.next()
    tokens.next(")")
    return port


def _parse_timescale(tokens: _Tokens) -> float:
    loc = tokens.loc()
    parts: list[str] = []
    while tokens.peek() != ")":
        parts.append(tokens.next())
    tokens.next(")")
    spec = "".join(parts)
    match = re.fullmatch(r"([0-9.]+)\s*([a-z]+)", spec)
    if not match or match.group(2) not in _UNIT_SCALE:
        raise loc.error(
            f"bad TIMESCALE {spec!r}; expected NUMBER UNIT "
            f"(units: {', '.join(_UNIT_SCALE)})")
    try:
        number = float(match.group(1))
    except ValueError:
        raise loc.error(f"bad TIMESCALE number {match.group(1)!r}") \
            from None
    if number not in (1.0, 10.0, 100.0):
        raise loc.error(
            f"TIMESCALE number must be 1, 10, or 100, got {number}")
    return number * _UNIT_SCALE[match.group(2)]


def _parse_delay_section(tokens: _Tokens, cell: SdfCell,
                         scale: float, divider: str) -> None:
    """Parse ``(DELAY (ABSOLUTE ...))`` into the cell's records."""
    tokens.next("(")
    keyword = tokens.next()
    if keyword != "ABSOLUTE":
        raise tokens.last_loc().error(
            f"unsupported DELAY section {keyword!r}; only ABSOLUTE "
            f"is supported")
    while tokens.peek() == "(":
        tokens.next("(")
        entry = tokens.next()
        loc = tokens.last_loc()
        if entry == "IOPATH":
            from_port = _parse_port(tokens)
            to_port = _parse_port(tokens)
            rise = _parse_triple(tokens, scale)
            fall = rise
            if tokens.peek() == "(":
                fall = _parse_triple(tokens, scale)
            tokens.next(")")
            cell.iopaths.append(SdfIoPath(from_port, to_port, rise,
                                          fall, loc))
        elif entry == "INTERCONNECT":
            driver = _scoped_pin(tokens.next(), cell.instance, divider)
            sink = _scoped_pin(tokens.next(), cell.instance, divider)
            rise = _parse_triple(tokens, scale)
            fall = rise
            if tokens.peek() == "(":
                fall = _parse_triple(tokens, scale)
            tokens.next(")")
            cell.interconnects.append(
                SdfInterconnect(driver, sink, rise, fall, loc))
        else:
            raise loc.error(
                f"unsupported delay entry {entry!r}; expected IOPATH "
                f"or INTERCONNECT")
    tokens.next(")")  # close ABSOLUTE
    tokens.next(")")  # close DELAY


def _scoped_pin(path: str, instance: str | None, divider: str) -> str:
    """Normalize a pin path to the flat ``inst/PORT`` form."""
    if instance:
        path = f"{instance}{divider}{path}"
    return path.replace(divider, "/")


def _parse_cell(tokens: _Tokens, scale: float,
                divider: str) -> SdfCell:
    cell = SdfCell(celltype=None, instance=None)
    while tokens.peek() == "(":
        tokens.next("(")
        keyword = tokens.next()
        if keyword == "CELLTYPE":
            cell.celltype = _unquote(tokens.next())
            tokens.next(")")
        elif keyword == "INSTANCE":
            if tokens.peek() != ")":
                cell.instance = tokens.next().replace(divider, "/")
            tokens.next(")")
        elif keyword == "DELAY":
            _parse_delay_section(tokens, cell, scale, divider)
        else:
            raise tokens.last_loc().error(
                f"unsupported CELL entry {keyword!r}; expected "
                f"CELLTYPE, INSTANCE, or DELAY")
    tokens.next(")")
    return cell


def parse_sdf(text: str, path: str | None = None) -> SdfDelayFile:
    """Parse SDF ``text``; inverse direction of a ``write_sdf`` flow."""
    tokens = _Tokens(text, path)
    tokens.next("(")
    tokens.next("DELAYFILE")
    sdf = SdfDelayFile(path=path, design=None, timescale=1.0,
                       divider="/")
    while tokens.peek() == "(":
        tokens.next("(")
        keyword = tokens.next()
        if keyword == "CELL":
            sdf.cells.append(_parse_cell(tokens, sdf.timescale,
                                         sdf.divider))
        elif keyword == "DESIGN":
            sdf.design = _unquote(tokens.next())
            tokens.next(")")
        elif keyword == "TIMESCALE":
            sdf.timescale = _parse_timescale(tokens)
        elif keyword == "DIVIDER":
            divider = tokens.next()
            if divider not in ("/", "."):
                raise tokens.last_loc().error(
                    f"unsupported DIVIDER {divider!r}; expected / or .")
            sdf.divider = divider
            tokens.next(")")
        elif keyword in _HEADER_SKIP:
            _skip_form(tokens)
        else:
            raise tokens.last_loc().error(
                f"unsupported SDF construct {keyword!r}")
    tokens.next(")")
    if tokens.peek() is not None:
        raise tokens.loc().error(
            f"unexpected trailing content {tokens.peek()!r}")
    return sdf


def read_sdf(path: str | os.PathLike) -> SdfDelayFile:
    """Parse the SDF file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_sdf(handle.read(), path=str(path))


# ----------------------------------------------------------------------
# Annotation: SDF records -> elaborate_design() override hooks
# ----------------------------------------------------------------------
_INPUT_PORT_RE = re.compile(r"A(\d+)$")


def _annotate_flipflop(base, iopaths: list[SdfIoPath], early: str,
                       late: str):
    c2q_rise = base.clk_to_q_rise
    c2q_fall = base.clk_to_q_fall
    for arc in iopaths:
        if arc.from_port != "CK" or arc.to_port != "Q":
            raise arc.loc.error(
                f"flip-flop IOPATH must be CK -> Q, got "
                f"{arc.from_port} -> {arc.to_port}")
        c2q_rise = arc.rise.bounds(early, late)
        c2q_fall = arc.fall.bounds(early, late)
    return replace(base, clk_to_q_rise=c2q_rise, clk_to_q_fall=c2q_fall)


def _annotate_gate(base, iopaths: list[SdfIoPath], early: str,
                   late: str):
    rise = list(base.rise_delays)
    fall = list(base.fall_delays)
    for arc in iopaths:
        match = _INPUT_PORT_RE.fullmatch(arc.from_port)
        if not match or arc.to_port != "Y":
            raise arc.loc.error(
                f"gate IOPATH must be A<i> -> Y, got "
                f"{arc.from_port} -> {arc.to_port}")
        index = int(match.group(1))
        if index >= base.num_inputs:
            raise arc.loc.error(
                f"IOPATH input {arc.from_port} out of range for "
                f"{base.name} ({base.num_inputs} inputs)")
        rise[index] = arc.rise.bounds(early, late)
        fall[index] = arc.fall.bounds(early, late)
    return replace(base, rise_delays=tuple(rise),
                   fall_delays=tuple(fall))


def build_overrides(sdf: SdfDelayFile, module, library, *,
                    early: str = "min", late: str = "max",
                    annotate_flipflops: bool = True
                    ) -> tuple[dict, dict]:
    """The :func:`~repro.io.flow.elaborate_design` hook dicts for one
    corner selection.

    Returns ``(cell_overrides, net_delays)``: per-instance cell clones
    carrying the IOPATH delays at the chosen (early, late) triple
    members, and per-sink wire delays from the INTERCONNECT records.
    ``annotate_flipflops=False`` leaves sequential cells at their base
    values — used by :func:`extract_corners`, whose delta vocabulary
    carries gate/net/clock-tree delays only.
    """
    instances = {inst.name: inst for inst in module.instances}
    cell_overrides: dict = {}
    for name, iopaths in sdf.iopaths_by_instance().items():
        instance = instances.get(name)
        if instance is None:
            raise iopaths[0].loc.error(
                f"SDF instance {name!r} is not in the netlist")
        if instance.cell not in library:
            raise iopaths[0].loc.error(
                f"SDF instance {name!r} uses unknown cell "
                f"{instance.cell!r}")
        try:
            if library.is_flip_flop(instance.cell):
                if not annotate_flipflops:
                    continue
                cell_overrides[name] = _annotate_flipflop(
                    library.flip_flop(instance.cell), iopaths, early,
                    late)
            else:
                cell_overrides[name] = _annotate_gate(
                    library.cell(instance.cell), iopaths, early, late)
        except TimingConstraintError as exc:
            raise iopaths[0].loc.error(
                f"inconsistent SDF delays for {name!r}: {exc}") from exc

    net_delays: dict = {}
    for wire in sdf.interconnects():
        wire_early, wire_late = wire.bounds(early, late)
        if wire_early > wire_late:
            raise wire.loc.error(
                f"INTERCONNECT {wire.driver} -> {wire.sink}: early "
                f"delay {wire_early} exceeds late delay {wire_late}")
        net_delays[wire.sink] = (wire_early, wire_late)
    return cell_overrides, net_delays


# ----------------------------------------------------------------------
# Corners: the min/typ/max axis as an MCMM CornerSet
# ----------------------------------------------------------------------
def _diff_designs(base_graph, variant_graph, name: str):
    """Graph deltas (data edges + clock tree) of variant vs base."""
    from repro.sta.incremental import DelayUpdate

    if base_graph.num_pins != variant_graph.num_pins:
        raise FormatError(
            f"corner {name!r} changed the design topology; SDF corner "
            f"extraction requires delay-only variation")
    delays = []
    for u in range(base_graph.num_pins):
        base_row = base_graph.fanout[u]
        variant_row = variant_graph.fanout[u]
        for (v, b_early, b_late), (v2, early, late) in zip(
                base_row, variant_row):
            if v != v2:
                raise FormatError(
                    f"corner {name!r} changed the design topology; SDF "
                    f"corner extraction requires delay-only variation")
            if (b_early, b_late) != (early, late):
                delays.append(DelayUpdate(
                    base_graph.pin_name(u), base_graph.pin_name(v),
                    early, late))
    base_tree = base_graph.clock_tree
    variant_tree = variant_graph.clock_tree
    clock = {}
    for node in range(1, len(base_tree.names)):
        pair = (variant_tree.delays_early[node],
                variant_tree.delays_late[node])
        if pair != (base_tree.delays_early[node],
                    base_tree.delays_late[node]):
            clock[base_tree.names[node]] = pair
    return delays, clock


def extract_corners(sdf: SdfDelayFile, module, sdc, library,
                    base_graph,
                    members: tuple[str, ...] = TRIPLE_MEMBERS):
    """The SDF min/typ/max axis as a :class:`~repro.corners.CornerSet`.

    Each member becomes one *pure* corner — a design where every
    annotated delay sits at that triple member (``early == late``) —
    expressed as a delta from ``base_graph`` (the ``(min, max)``
    envelope design built by the importer).  Flip-flop intrinsic arcs
    are held at the base values: corner deltas speak the
    :class:`~repro.corners.Corner` vocabulary of data-edge and
    clock-tree delay updates.
    """
    from repro.corners import Corner, CornerSet
    from repro.io.flow import elaborate_design

    corners = []
    for member in members:
        if member not in TRIPLE_MEMBERS:
            raise FormatError(
                f"unknown SDF corner {member!r}; expected one of "
                f"{TRIPLE_MEMBERS}")
        cell_overrides, net_delays = build_overrides(
            sdf, module, library, early=member, late=member,
            annotate_flipflops=False)
        # Gate cells validate early <= late; a pure corner is degenerate
        # (early == late) so the envelope check cannot fire.
        variant, _ = elaborate_design(module, sdc, library,
                                      cell_overrides=cell_overrides,
                                      net_delays=net_delays)
        delays, clock = _diff_designs(base_graph, variant.graph, member)
        corners.append(Corner(member, delays=delays, clock=clock))
    return CornerSet(corners)
