"""JSON design format: the neutral description, serialized verbatim.

Registered as the ``json`` frontend in :mod:`repro.io.frontend`; load
through :func:`repro.io.load_design`.  The direct
:func:`load_design_json` entry point is deprecated.
"""

from __future__ import annotations

import json
import os
import warnings

from repro.circuit.graph import TimingGraph
from repro.exceptions import CircuitStructureError, FormatError
from repro.io.design_io import (describe_design, description_from_dict,
                                description_to_dict, reconstruct_design)
from repro.sta.constraints import TimingConstraints

__all__ = ["load_design_json", "save_design_json"]

_FORMAT_VERSION = 1


def save_design_json(graph: TimingGraph, constraints: TimingConstraints,
                     path: str | os.PathLike) -> None:
    """Write a design as JSON."""
    payload = {
        "format": "repro-cppr-design",
        "version": _FORMAT_VERSION,
        "design": description_to_dict(describe_design(graph, constraints)),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_design_json(path: str | os.PathLike
                     ) -> tuple[TimingGraph, TimingConstraints]:
    """Read a design written by :func:`save_design_json`.

    .. deprecated::
        Use ``repro.io.load_design(path, format="json")``.
    """
    warnings.warn(
        "load_design_json is deprecated; use "
        "repro.io.load_design(path, format='json')",
        DeprecationWarning, stacklevel=2)
    return _load_design_json(path)


def _load_design_json(path: str | os.PathLike
                      ) -> tuple[TimingGraph, TimingConstraints]:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise FormatError(f"invalid JSON: {exc.msg}", path=str(path),
                              line=exc.lineno, col=exc.colno) from exc
    if (not isinstance(payload, dict)
            or payload.get("format") != "repro-cppr-design"):
        raise FormatError("not a repro CPPR design file", path=str(path))
    if payload.get("version") != _FORMAT_VERSION:
        raise FormatError(
            f"unsupported format version {payload.get('version')!r}",
            path=str(path))
    try:
        return reconstruct_design(description_from_dict(payload["design"]))
    except CircuitStructureError as exc:
        raise FormatError(f"invalid design: {exc}",
                          path=str(path)) from exc
