"""Machine-readable path reports (JSON).

The text reports in :mod:`repro.cppr.report` are for humans; harnesses
and downstream tools want structured data.  :func:`paths_to_dicts`
flattens :class:`~repro.cppr.types.TimingPath` objects into plain
dictionaries with pin *names* (stable across runs, unlike ids), and
:func:`save_paths_json` / :func:`load_paths_json` move them through
files.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from repro.cppr.types import TimingPath
from repro.exceptions import FormatError
from repro.sta.timing import TimingAnalyzer

__all__ = ["load_paths_json", "paths_to_dicts", "save_paths_json"]

_FORMAT = "repro-cppr-paths"
_VERSION = 1


def paths_to_dicts(analyzer: TimingAnalyzer,
                   paths: Iterable[TimingPath]) -> list[dict[str, Any]]:
    """Flatten paths to JSON-ready dictionaries."""
    graph = analyzer.graph
    result = []
    for rank, path in enumerate(paths, start=1):
        result.append({
            "rank": rank,
            "mode": path.mode.value,
            "family": path.family.value,
            "slack": path.slack,
            "credit": path.credit,
            "pre_cppr_slack": path.pre_cppr_slack,
            "pins": [graph.pin_name(p) for p in path.pins],
            "launch_ff": (graph.ffs[path.launch_ff].name
                          if path.launch_ff is not None else None),
            "capture_ff": (graph.ffs[path.capture_ff].name
                           if path.capture_ff is not None else None),
            "level": path.level,
        })
    return result


def save_paths_json(analyzer: TimingAnalyzer,
                    paths: Iterable[TimingPath],
                    path: str | os.PathLike) -> None:
    """Write a path report as JSON."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "design": analyzer.graph.name,
        "clock_period": analyzer.constraints.clock_period,
        "paths": paths_to_dicts(analyzer, paths),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_paths_json(path: str | os.PathLike) -> dict[str, Any]:
    """Read a report written by :func:`save_paths_json`.

    Returns the payload dictionary (reports reference a design by name,
    not by content, so they load as plain data rather than
    :class:`TimingPath` objects).
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise FormatError(f"invalid JSON: {exc}",
                              path=str(path)) from exc
    if (not isinstance(payload, dict)
            or payload.get("format") != _FORMAT):
        raise FormatError("not a repro CPPR path report", path=str(path))
    if payload.get("version") != _VERSION:
        raise FormatError(
            f"unsupported report version {payload.get('version')!r}",
            path=str(path))
    return payload
