"""The unified design frontend: one registry, many formats.

Every way a design can enter the engine — the TAU-style ``.cppr`` text
format, its JSON twin, structural Verilog + SDC, Yosys ``write_json``
netlists — is a registered :class:`FormatSpec`.  Callers use one entry
point::

    from repro.io import load_design
    imported = load_design("counter.json", format="auto",
                           sdf="counter.sdf")
    analyzer = TimingAnalyzer(imported.graph, imported.constraints)

and get back an :class:`ImportedDesign`: the timing graph, the
constraints, optional SDF-derived min/typ/max corners, and provenance
metadata — the same shape regardless of format.  ``format="auto"``
resolves by file extension, with registered sniffers disambiguating
shared extensions (a ``.json`` file is a Yosys netlist if it carries a
``modules`` object, a native design dump if it carries the
``repro-cppr-design`` tag).

Netlist formats (``verilog``, ``yosys``) accept an SDF side file whose
DELAY annotations replace the library's fixed arc delays
(:func:`repro.io.sdf.build_overrides`), and can additionally realize
the SDF min/typ/max triples as a :class:`~repro.corners.CornerSet` for
MCMM analysis (``sdf_corners=True``).

Third-party importers plug in with :func:`register_format`; every
parse failure, whatever the format, surfaces as a
:class:`~repro.exceptions.FormatError` with a ``path:line:col``
prefix — never a partially-built design.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.exceptions import FormatError
from repro.faults import check as _fault_check
from repro.sta.constraints import TimingConstraints

__all__ = [
    "FormatSpec",
    "ImportedDesign",
    "detect_format",
    "formats",
    "load_design",
    "register_format",
]

#: How much of the file the ``format="auto"`` sniffers get to see.
_SNIFF_BYTES = 4096


@dataclass
class ImportedDesign:
    """What every frontend returns: a design plus its provenance.

    Iterating yields ``(graph, constraints)`` so existing call sites
    written against the legacy two-tuple loaders keep working::

        graph, constraints = load_design(path)
    """

    graph: object
    constraints: TimingConstraints
    format: str
    path: str
    #: The rise/fall-expanded design (netlist formats only) — carries
    #: pretty-printing helpers; ``None`` for graph-native formats.
    design: object | None = None
    #: SDF-derived min/typ/max corners (``sdf_corners=True`` only).
    corners: object | None = None
    sdf_path: str | None = None
    #: Format-specific provenance (tool creator, module list, ...).
    meta: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator:
        yield self.graph
        yield self.constraints


@dataclass(frozen=True)
class FormatSpec:
    """A registered design format.

    ``loader(path, options) -> ImportedDesign`` receives the validated
    keyword options of :func:`load_design`.  ``sniff(head)`` (optional)
    sees the first few KiB of the file as text and votes when several
    formats share an extension: ``True`` claims the file, ``False``
    refuses it, ``None`` abstains.
    """

    name: str
    description: str
    extensions: tuple[str, ...]
    loader: Callable[[str, dict], ImportedDesign]
    sniff: Callable[[str], bool | None] | None = None


_REGISTRY: dict[str, FormatSpec] = {}


def register_format(spec: FormatSpec) -> FormatSpec:
    """Register (or replace) a frontend under ``spec.name``."""
    if not spec.name or any(c in spec.name for c in " \t\n,"):
        raise ValueError(f"invalid format name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def formats() -> tuple[FormatSpec, ...]:
    """The registered formats, in registration order."""
    return tuple(_REGISTRY.values())


def _sniff_head(path: str) -> str:
    try:
        with open(path, "rb") as handle:
            return handle.read(_SNIFF_BYTES).decode("utf-8", "replace")
    except OSError as exc:
        raise FormatError(f"cannot read design file: {exc.strerror}",
                          path=path) from exc


def detect_format(path: str | os.PathLike) -> str:
    """The registered format name for ``path`` (``format="auto"``).

    Resolution is by extension; when several formats claim the same
    extension their sniffers inspect the file head to break the tie.
    """
    path = str(path)
    _, ext = os.path.splitext(path)
    ext = ext.lower()
    candidates = [spec for spec in _REGISTRY.values()
                  if ext in spec.extensions]
    if not candidates:
        known = sorted({e for s in _REGISTRY.values()
                        for e in s.extensions})
        raise FormatError(
            f"unrecognized design extension {ext!r} (known: "
            f"{', '.join(known)}); pass format= explicitly", path=path)
    if len(candidates) == 1:
        return candidates[0].name
    head = _sniff_head(path)
    for spec in candidates:
        if spec.sniff is not None and spec.sniff(head) is True:
            return spec.name
    names = ", ".join(spec.name for spec in candidates)
    raise FormatError(
        f"ambiguous {ext!r} file: no registered sniffer claims it "
        f"(candidates: {names}); pass format= explicitly", path=path)


_KNOWN_OPTIONS = ("sdc", "sdf", "library", "clock_period",
                  "sdf_corners", "sdf_members")


def load_design(path: str | os.PathLike, format: str = "auto",
                **options) -> ImportedDesign:
    """Load a design through the frontend registry.

    Options (validity depends on the format):

    ``sdc``
        SDC file path (or parsed ``SdcConstraints``) — required for
        ``verilog``, optional for ``yosys`` (synthesized when absent).
    ``sdf``
        SDF file path (or parsed ``SdfDelayFile``) annotating the
        netlist's early/late delays; netlist formats only.
    ``library``
        :class:`~repro.library.cells.StandardCellLibrary`
        (default: :func:`repro.library.standard.default_library`).
    ``clock_period``
        Clock period for a synthesized ``yosys`` clock (default: a
        realistically-critical period via
        :func:`repro.workloads.suite.suggest_clock_period`).
    ``sdf_corners``
        Realize the SDF min/typ/max triples as a
        :class:`~repro.corners.CornerSet` on the result (default off).
    ``sdf_members``
        Which triple members become corners
        (default ``("min", "typ", "max")``).
    """
    path = str(path)
    unknown = sorted(set(options) - set(_KNOWN_OPTIONS))
    if unknown:
        raise TypeError(
            f"unknown load_design option(s): {', '.join(unknown)}")
    _fault_check("io.parse_error")
    name = detect_format(path) if format == "auto" else format
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(sorted(_REGISTRY))
        raise FormatError(f"unknown design format {name!r} "
                          f"(registered: {known})", path=path)
    return spec.loader(path, options)


# --------------------------------------------------------------------------
# Built-in frontends.  Loaders import their implementation modules lazily
# so that ``import repro.io`` stays cheap and cycle-free.
# --------------------------------------------------------------------------

def _reject_netlist_options(path: str, options: dict, fmt: str) -> None:
    for key in ("sdc", "sdf", "sdf_corners"):
        if options.get(key):
            raise FormatError(
                f"option {key!r} needs a netlist frontend "
                f"(verilog/yosys); {fmt!r} files already carry their "
                f"delays", path=path)


def _load_tau(path: str, options: dict) -> ImportedDesign:
    _reject_netlist_options(path, options, "tau")
    from repro.io import tau_format
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    graph, constraints = tau_format.loads_design(text, path=path)
    return ImportedDesign(graph=graph, constraints=constraints,
                          format="tau", path=path)


def _load_json(path: str, options: dict) -> ImportedDesign:
    _reject_netlist_options(path, options, "json")
    from repro.io import json_format
    graph, constraints = json_format._load_design_json(path)
    return ImportedDesign(graph=graph, constraints=constraints,
                          format="json", path=path)


def _resolve_sdc(sdc, path: str):
    from repro.io.sdc import SdcConstraints, read_sdc
    if isinstance(sdc, SdcConstraints):
        return sdc
    if not os.path.exists(str(sdc)):
        raise FormatError("SDC file does not exist", path=str(sdc))
    return read_sdc(str(sdc))


def _resolve_sdf(sdf):
    from repro.io.sdf import SdfDelayFile, read_sdf
    if isinstance(sdf, SdfDelayFile):
        return sdf
    return read_sdf(str(sdf))


def _elaborate_netlist(module, sdc, library, options, *,
                       format: str, path: str, meta: dict
                       ) -> ImportedDesign:
    """Shared netlist back half: SDF annotation + corners + assembly."""
    from repro.io.flow import elaborate_design
    sdf = options.get("sdf")
    sdf_file = _resolve_sdf(sdf) if sdf is not None else None
    overrides: dict = {}
    if sdf_file is not None:
        from repro.io.sdf import build_overrides
        cell_overrides, net_delays = build_overrides(sdf_file, module,
                                                     library)
        overrides = {"cell_overrides": cell_overrides,
                     "net_delays": net_delays}
    design, constraints = elaborate_design(module, sdc, library,
                                           **overrides)
    corners = None
    if options.get("sdf_corners"):
        if sdf_file is None:
            raise FormatError("sdf_corners requires an SDF file",
                              path=path)
        from repro.io.sdf import TRIPLE_MEMBERS, extract_corners
        corners = extract_corners(
            sdf_file, module, sdc, library, design.graph,
            members=options.get("sdf_members") or TRIPLE_MEMBERS)
    return ImportedDesign(
        graph=design.graph, constraints=constraints, format=format,
        path=path, design=design, corners=corners,
        sdf_path=None if sdf_file is None else sdf_file.path, meta=meta)


def _default_library(options):
    if options.get("library") is not None:
        return options["library"]
    from repro.library.standard import default_library
    return default_library()


def _load_verilog(path: str, options: dict) -> ImportedDesign:
    from repro.io.verilog import read_verilog
    sdc = options.get("sdc")
    if sdc is None:
        raise FormatError(
            "Verilog input needs constraints: pass sdc=FILE "
            "(--sdc on the command line)", path=path)
    module = read_verilog(path)
    library = _default_library(options)
    return _elaborate_netlist(
        module, _resolve_sdc(sdc, path), library, options,
        format="verilog", path=path, meta={"module": module.name})


def _load_yosys(path: str, options: dict) -> ImportedDesign:
    from repro.io.sdc import SdcConstraints
    from repro.io.yosys_json import infer_clock_port, read_yosys_module
    module, meta = read_yosys_module(path)
    library = _default_library(options)
    sdc = options.get("sdc")
    if sdc is not None:
        sdc = _resolve_sdc(sdc, path)
    else:
        # Yosys JSON carries no constraints: synthesize a single-clock
        # SDC from the traced clock root.
        clock_port = infer_clock_port(module, library, path=path)
        sdc = SdcConstraints(clock_port=clock_port, clock_name="clk",
                             clock_period=options.get("clock_period")
                             or 1.0)
    imported = _elaborate_netlist(module, sdc, library, options,
                                  format="yosys", path=path, meta=meta)
    if options.get("sdc") is None and options.get("clock_period") is None:
        # Placeholder period: tighten to a realistically-critical one
        # now that the graph (and its annotated delays) exists.
        from repro.workloads.suite import suggest_clock_period
        imported.constraints = TimingConstraints(
            suggest_clock_period(imported.graph))
    imported.meta["clock_port"] = sdc.clock_port
    return imported


register_format(FormatSpec(
    name="tau",
    description="TAU-contest-style line-oriented text (.cppr)",
    extensions=(".cppr", ".tau"),
    loader=_load_tau,
))
register_format(FormatSpec(
    name="json",
    description="native design description as JSON",
    extensions=(".json",),
    loader=_load_json,
    sniff=lambda head: True if '"repro-cppr-design"' in head else
    (False if '"modules"' in head else None),
))
register_format(FormatSpec(
    name="verilog",
    description="structural Verilog netlist + SDC constraints",
    extensions=(".v",),
    loader=_load_verilog,
))
register_format(FormatSpec(
    name="yosys",
    description="Yosys write_json netlist (optional SDC/SDF)",
    extensions=(".json",),
    loader=_load_yosys,
    sniff=lambda head: True if '"modules"' in head else
    (False if '"repro-cppr-design"' in head else None),
))
