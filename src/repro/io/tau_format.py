"""Line-oriented text format in the spirit of the TAU contest inputs.

Grammar (one statement per line, ``#`` starts a comment)::

    design  <name>
    clock   <period> <root> [<at_early> <at_late>]
    buffer  <name> <parent> <early> <late>
    ff      <name> <parent> <early> <late> <t_setup> <t_hold>
            <c2q_early> <c2q_late>
    input   <name> <at_early> <at_late>
    output  <name> <rat_early|-> <rat_late|->
    gate    <name> <early0> <late0> [<early1> <late1> ...]
    net     <driver> <sink> <early> <late>

Clock-tree statements must declare parents before children (the writer
always does).  Unknown keywords, malformed fields, and structural errors
all raise :class:`~repro.exceptions.FormatError` with the offending line
number.
"""

from __future__ import annotations

import os
import warnings

from repro.circuit.graph import TimingGraph
from repro.exceptions import CircuitStructureError, FormatError
from repro.io.design_io import (DesignDescription, describe_design,
                                reconstruct_design)
from repro.sta.constraints import TimingConstraints

__all__ = ["load_design", "save_design", "dumps_design", "loads_design"]


def _fmt(value: float) -> str:
    return repr(float(value))


def dumps_design(graph: TimingGraph,
                 constraints: TimingConstraints) -> str:
    """Serialize a design to the text format."""
    desc = describe_design(graph, constraints)
    lines = [f"# repro CPPR design file", f"design {desc.name}"]
    if desc.clock_root is not None:
        lines.append(
            f"clock {_fmt(desc.clock_period)} {desc.clock_root} "
            f"{_fmt(desc.clock_source_at[0])} "
            f"{_fmt(desc.clock_source_at[1])}")
    else:
        lines.append(f"clock {_fmt(desc.clock_period)} -")
    for name, parent, early, late in desc.buffers:
        lines.append(f"buffer {name} {parent} {_fmt(early)} {_fmt(late)}")
    for (name, parent, early, late, t_setup, t_hold, c2q_early,
         c2q_late) in desc.flipflops:
        lines.append(
            f"ff {name} {parent} {_fmt(early)} {_fmt(late)} "
            f"{_fmt(t_setup)} {_fmt(t_hold)} {_fmt(c2q_early)} "
            f"{_fmt(c2q_late)}")
    for name, at_early, at_late in desc.inputs:
        lines.append(f"input {name} {_fmt(at_early)} {_fmt(at_late)}")
    for name, rat_early, rat_late in desc.outputs:
        early_str = "-" if rat_early is None else _fmt(rat_early)
        late_str = "-" if rat_late is None else _fmt(rat_late)
        lines.append(f"output {name} {early_str} {late_str}")
    for name, arcs in desc.gates:
        arc_str = " ".join(f"{_fmt(e)} {_fmt(l)}" for e, l in arcs)
        lines.append(f"gate {name} {arc_str}")
    for driver, sink, early, late in desc.nets:
        lines.append(f"net {driver} {sink} {_fmt(early)} {_fmt(late)}")
    return "\n".join(lines) + "\n"


def save_design(graph: TimingGraph, constraints: TimingConstraints,
                path: str | os.PathLike) -> None:
    """Write a design to ``path`` in the text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_design(graph, constraints))


def _parse_float(token: str, line_no: int, path: str | None) -> float:
    try:
        return float(token)
    except ValueError:
        raise FormatError(f"expected a number, got {token!r}",
                          line=line_no, path=path) from None


def loads_design(text: str, path: str | None = None
                 ) -> tuple[TimingGraph, TimingConstraints]:
    """Parse the text format; inverse of :func:`dumps_design`."""
    desc = DesignDescription()
    saw_clock = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword, args = tokens[0], tokens[1:]

        def need(count: int, *also_ok: int) -> None:
            if len(args) != count and len(args) not in also_ok:
                raise FormatError(
                    f"'{keyword}' expects {count} fields, got {len(args)}",
                    line=line_no, path=path)

        if keyword == "design":
            need(1)
            desc.name = args[0]
        elif keyword == "clock":
            need(2, 4)
            saw_clock = True
            desc.clock_period = _parse_float(args[0], line_no, path)
            desc.clock_root = None if args[1] == "-" else args[1]
            if len(args) == 4:
                desc.clock_source_at = (
                    _parse_float(args[2], line_no, path),
                    _parse_float(args[3], line_no, path))
        elif keyword == "buffer":
            need(4)
            desc.buffers.append(
                (args[0], args[1], _parse_float(args[2], line_no, path),
                 _parse_float(args[3], line_no, path)))
        elif keyword == "ff":
            need(8)
            values = [_parse_float(a, line_no, path) for a in args[2:]]
            desc.flipflops.append((args[0], args[1], *values))
        elif keyword == "input":
            need(3)
            desc.inputs.append(
                (args[0], _parse_float(args[1], line_no, path),
                 _parse_float(args[2], line_no, path)))
        elif keyword == "output":
            need(3)
            rat_early = (None if args[1] == "-"
                         else _parse_float(args[1], line_no, path))
            rat_late = (None if args[2] == "-"
                        else _parse_float(args[2], line_no, path))
            desc.outputs.append((args[0], rat_early, rat_late))
        elif keyword == "gate":
            if len(args) < 3 or len(args) % 2 == 0:
                raise FormatError(
                    "'gate' expects a name followed by (early, late) "
                    "pairs", line=line_no, path=path)
            arcs = [( _parse_float(args[i], line_no, path),
                      _parse_float(args[i + 1], line_no, path))
                    for i in range(1, len(args), 2)]
            desc.gates.append((args[0], arcs))
        elif keyword == "net":
            need(4)
            desc.nets.append(
                (args[0], args[1], _parse_float(args[2], line_no, path),
                 _parse_float(args[3], line_no, path)))
        else:
            raise FormatError(f"unknown keyword {keyword!r}",
                              line=line_no, path=path)

    if not saw_clock:
        raise FormatError("missing 'clock' statement", path=path)
    try:
        return reconstruct_design(desc)
    except CircuitStructureError as exc:
        raise FormatError(f"invalid design: {exc}", path=path) from exc


def load_design(path: str | os.PathLike
                ) -> tuple[TimingGraph, TimingConstraints]:
    """Read a design from ``path``.

    .. deprecated::
        Use ``repro.io.load_design(path, format="tau")``.
    """
    warnings.warn(
        "repro.io.tau_format.load_design is deprecated; use "
        "repro.io.load_design(path, format='tau')",
        DeprecationWarning, stacklevel=2)
    with open(path, "r", encoding="utf-8") as handle:
        return loads_design(handle.read(), path=str(path))
