"""Structural Verilog parser (gate-level subset).

Supports the post-synthesis structural subset EDA flows exchange::

    // comments and /* block comments */
    module top (a, b, clk, y);
      input a, b, clk;
      output y;
      wire w1, w2;
      NAND2_X1 u1 (.A0(a), .A1(b), .Y(w1));
      DFF_X1   r1 (.CK(clk), .D(w1), .Q(w2));
      BUF_X1   u2 (.A0(w2), .Y(y));
    endmodule

One module per file, named port connections only (positional connections
are ambiguous without a full cell model and are rejected with a clear
message).  The parser produces a neutral :class:`VerilogModule`; design
construction against a cell library happens in :mod:`repro.io.flow`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.exceptions import FormatError, SourceLocation

__all__ = ["VerilogInstance", "VerilogModule", "parse_verilog",
           "read_verilog", "save_verilog", "write_verilog"]

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*|[().,;]")
_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


@dataclass(slots=True)
class VerilogInstance:
    """One cell instantiation with named port connections."""

    cell: str
    name: str
    connections: dict[str, str]  # port -> net


@dataclass(slots=True)
class VerilogModule:
    """A parsed structural module."""

    name: str
    ports: list[str] = field(default_factory=list)
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    wires: list[str] = field(default_factory=list)
    instances: list[VerilogInstance] = field(default_factory=list)

    def nets(self) -> set[str]:
        """Every declared net name (ports and wires)."""
        return set(self.inputs) | set(self.outputs) | set(self.wires)


class _Tokens:
    """Token stream with line *and column* tracking for diagnostics.

    :meth:`loc` is the position of the token about to be consumed (the
    one an "unexpected X here" complaint is about); :meth:`last_loc` is
    the position of the token just consumed (the one a "X is invalid"
    complaint is about).  Errors pinned to the wrong one point a line
    too far whenever the offending token ends a line.
    """

    def __init__(self, text: str, path: str | None) -> None:
        self.path = path
        self._items: list[tuple[str, int, int]] = []
        clean = _COMMENT_RE.sub(
            lambda match: "\n" * match.group().count("\n"), text)
        for line_no, line in enumerate(clean.splitlines(), start=1):
            covered = bytearray(len(line))
            for match in _TOKEN_RE.finditer(line):
                self._items.append((match.group(), line_no,
                                    match.start() + 1))
                for i in range(*match.span()):
                    covered[i] = 1
            leftover = _TOKEN_RE.sub("", line).strip()
            if leftover:
                col = next((i + 1 for i, ch in enumerate(line)
                            if not covered[i] and not ch.isspace()),
                           None)
                raise FormatError(
                    f"unexpected characters {leftover!r}",
                    line=line_no, col=col, path=path)
        self._pos = 0
        self._last: tuple[str, int, int] | None = None

    def peek(self) -> str | None:
        if self._pos < len(self._items):
            return self._items[self._pos][0]
        return None

    def loc(self) -> SourceLocation:
        """Position of the next (unconsumed) token."""
        if not self._items:
            return SourceLocation(self.path)
        index = min(self._pos, len(self._items) - 1)
        _, line, col = self._items[index]
        return SourceLocation(self.path, line, col)

    def last_loc(self) -> SourceLocation:
        """Position of the most recently consumed token."""
        if self._last is None:
            return SourceLocation(self.path)
        _, line, col = self._last
        return SourceLocation(self.path, line, col)

    def next(self, expected: str | None = None) -> str:
        if self._pos >= len(self._items):
            raise self.loc().error("unexpected end of file")
        item = self._items[self._pos]
        self._pos += 1
        self._last = item
        token, line, col = item
        if expected is not None and token != expected:
            raise SourceLocation(self.path, line, col).error(
                f"expected {expected!r}, got {token!r}")
        return token

    def next_identifier(self, what: str) -> str:
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", token):
            raise self.last_loc().error(
                f"expected {what}, got {token!r}")
        return token


def _parse_name_list(tokens: _Tokens, what: str) -> list[str]:
    names = [tokens.next_identifier(what)]
    while tokens.peek() == ",":
        tokens.next(",")
        names.append(tokens.next_identifier(what))
    tokens.next(";")
    return names


def _parse_instance(tokens: _Tokens, cell: str) -> VerilogInstance:
    name = tokens.next_identifier("instance name")
    tokens.next("(")
    connections: dict[str, str] = {}
    if tokens.peek() != ")":
        while True:
            if tokens.peek() != ".":
                raise tokens.loc().error(
                    f"instance {name!r}: only named port connections "
                    f"(.PORT(net)) are supported")
            tokens.next(".")
            port = tokens.next_identifier("port name")
            # Pin diagnostics to the port token itself: the old
            # next-token position pointed one line too far whenever the
            # duplicate connection ended a line.
            port_loc = tokens.last_loc()
            tokens.next("(")
            net = tokens.next_identifier("net name")
            tokens.next(")")
            if port in connections:
                raise port_loc.error(
                    f"instance {name!r}: port {port!r} connected twice")
            connections[port] = net
            if tokens.peek() == ",":
                tokens.next(",")
                continue
            break
    tokens.next(")")
    tokens.next(";")
    return VerilogInstance(cell=cell, name=name, connections=connections)


def parse_verilog(text: str, path: str | None = None) -> VerilogModule:
    """Parse one structural module from ``text``."""
    tokens = _Tokens(text, path)
    tokens.next("module")
    module = VerilogModule(name=tokens.next_identifier("module name"))
    tokens.next("(")
    if tokens.peek() != ")":
        module.ports.append(tokens.next_identifier("port name"))
        while tokens.peek() == ",":
            tokens.next(",")
            module.ports.append(tokens.next_identifier("port name"))
    tokens.next(")")
    tokens.next(";")

    seen: set[str] = set()
    while True:
        keyword = tokens.peek()
        if keyword is None:
            raise tokens.loc().error("missing 'endmodule'")
        if keyword == "endmodule":
            tokens.next()
            break
        tokens.next()
        if keyword == "input":
            module.inputs.extend(_parse_name_list(tokens, "input name"))
        elif keyword == "output":
            module.outputs.extend(_parse_name_list(tokens, "output name"))
        elif keyword == "wire":
            module.wires.extend(_parse_name_list(tokens, "wire name"))
        else:
            module.instances.append(_parse_instance(tokens, keyword))

    for instance in module.instances:
        if instance.name in seen:
            raise FormatError(
                f"duplicate instance name {instance.name!r}", path=path)
        seen.add(instance.name)

    declared = module.nets()
    for port in module.ports:
        if port not in set(module.inputs) | set(module.outputs):
            raise FormatError(
                f"port {port!r} has no direction declaration", path=path)
    for instance in module.instances:
        for port, net in instance.connections.items():
            if net not in declared:
                raise FormatError(
                    f"instance {instance.name!r} port {port!r} uses "
                    f"undeclared net {net!r}", path=path)
    return module


def read_verilog(path: str) -> VerilogModule:
    """Parse the structural module in file ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), path=str(path))


def write_verilog(module: VerilogModule) -> str:
    """Emit a :class:`VerilogModule` back as structural Verilog text.

    The inverse of :func:`parse_verilog` up to whitespace; round-trips
    exactly through the parser.
    """
    lines = [f"module {module.name} ({', '.join(module.ports)});"]
    if module.inputs:
        lines.append(f"  input {', '.join(module.inputs)};")
    if module.outputs:
        lines.append(f"  output {', '.join(module.outputs)};")
    if module.wires:
        lines.append(f"  wire {', '.join(module.wires)};")
    for instance in module.instances:
        pins = ", ".join(f".{port}({net})"
                         for port, net in instance.connections.items())
        lines.append(f"  {instance.cell} {instance.name} ({pins});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(module: VerilogModule, path: str) -> None:
    """Write :func:`write_verilog` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(module))
