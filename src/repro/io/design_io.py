"""Format-neutral design snapshots.

:func:`describe_design` turns an elaborated graph (one produced by this
library's :class:`~repro.circuit.netlist.Netlist`, whose pin-naming
conventions it relies on) plus constraints into a plain-data
:class:`DesignDescription`; :func:`reconstruct_design` rebuilds an
equivalent graph by replaying the description through a fresh netlist.
Both file formats serialize this description, so round-trip fidelity is
tested once, here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.circuit.graph import TimingGraph
from repro.circuit.netlist import Netlist
from repro.circuit.pins import PinKind
from repro.exceptions import FormatError
from repro.sta.constraints import TimingConstraints

__all__ = ["DesignDescription", "describe_design", "reconstruct_design"]


@dataclass(slots=True)
class DesignDescription:
    """Plain-data snapshot of a design; every field JSON-serializable."""

    name: str = "design"
    clock_period: float = 1.0
    clock_root: str | None = None
    clock_source_at: tuple[float, float] = (0.0, 0.0)
    # (name, parent, early, late)
    buffers: list[tuple[str, str, float, float]] = field(default_factory=list)
    # (name, parent, early, late, t_setup, t_hold, c2q_early, c2q_late)
    flipflops: list[tuple] = field(default_factory=list)
    # (name, at_early, at_late)
    inputs: list[tuple[str, float, float]] = field(default_factory=list)
    # (name, rat_early | None, rat_late | None)
    outputs: list[tuple[str, float | None, float | None]] = field(
        default_factory=list)
    # (name, [(early, late), ...])  -- one arc per input pin
    gates: list[tuple[str, list[tuple[float, float]]]] = field(
        default_factory=list)
    # (driver, sink, early, late)
    nets: list[tuple[str, str, float, float]] = field(default_factory=list)


def describe_design(graph: TimingGraph,
                    constraints: TimingConstraints) -> DesignDescription:
    """Snapshot an elaborated design into plain data."""
    desc = DesignDescription(name=graph.name,
                             clock_period=constraints.clock_period)

    tree = graph.clock_tree
    if tree.names[0] != "__virtual_clock__":
        desc.clock_root = tree.names[0]
        desc.clock_source_at = tuple(tree.source_at)
        for node in range(1, len(tree)):
            if tree.ff_of_node[node] >= 0:
                continue
            desc.buffers.append((tree.names[node],
                                 tree.names[tree.parent(node)],
                                 tree.delays_early[node],
                                 tree.delays_late[node]))

    for ff in graph.ffs:
        node = ff.tree_node
        desc.flipflops.append((ff.name, tree.names[tree.parent(node)],
                               tree.delays_early[node],
                               tree.delays_late[node], ff.t_setup,
                               ff.t_hold, ff.clk_to_q_early,
                               ff.clk_to_q_late))

    for pi in graph.primary_inputs:
        desc.inputs.append((pi.name, pi.at_early, pi.at_late))
    for po in graph.primary_outputs:
        desc.outputs.append((po.name, po.rat_early, po.rat_late))

    # Recover gates from pin naming: inputs "<cell>/A<i>", output
    # "<cell>/Y"; each input pin's single edge to the output is the arc.
    gate_inputs: dict[str, list[tuple[int, int]]] = {}
    for pin in graph.pins:
        if pin.kind is PinKind.GATE_INPUT:
            try:
                index = int(pin.name.rsplit("/A", 1)[1])
            except (IndexError, ValueError):
                raise FormatError(
                    f"gate input pin {pin.name!r} does not follow the "
                    f"'<cell>/A<i>' naming convention") from None
            gate_inputs.setdefault(pin.cell, []).append((index, pin.index))
    for cell, inputs in gate_inputs.items():
        inputs.sort()
        arcs = []
        for _index, pin_id in inputs:
            targets = graph.fanout[pin_id]
            if len(targets) != 1:
                raise FormatError(
                    f"gate input {graph.pin_name(pin_id)!r} must drive "
                    f"exactly its gate output, found {len(targets)} edges")
            _target, early, late = targets[0]
            arcs.append((early, late))
        desc.gates.append((cell, arcs))
    desc.gates.sort()

    net_sources = (PinKind.PRIMARY_INPUT, PinKind.GATE_OUTPUT, PinKind.FF_Q)
    for u in range(graph.num_pins):
        if graph.pins[u].kind not in net_sources:
            continue
        for v, early, late in graph.fanout[u]:
            desc.nets.append((graph.pin_name(u), graph.pin_name(v),
                              early, late))
    desc.nets.sort()
    return desc


def reconstruct_design(desc: DesignDescription
                       ) -> tuple[TimingGraph, TimingConstraints]:
    """Rebuild an elaborated design from a snapshot.

    Raises :class:`FormatError` (wrapping the netlist's structural errors
    when appropriate) for inconsistent descriptions.
    """
    netlist = Netlist(desc.name)
    if desc.clock_root is not None:
        netlist.set_clock_root(desc.clock_root,
                               tuple(desc.clock_source_at))
    for name, parent, early, late in desc.buffers:
        netlist.add_clock_buffer(name, parent, early, late)
    for name, at_early, at_late in desc.inputs:
        netlist.add_primary_input(name, at_early, at_late)
    for name, rat_early, rat_late in desc.outputs:
        netlist.add_primary_output(name, rat_early, rat_late)
    for (name, parent, early, late, t_setup, t_hold, c2q_early,
         c2q_late) in desc.flipflops:
        netlist.add_flipflop(name, t_setup, t_hold, (c2q_early, c2q_late))
        netlist.connect_clock(name, parent, early, late)
    for name, arcs in desc.gates:
        netlist.add_gate(name, num_inputs=max(1, len(arcs)),
                         arc_delays=list(arcs) or [(0.0, 0.0)])
    for driver, sink, early, late in desc.nets:
        netlist.connect(driver, sink, early, late)
    graph = netlist.elaborate()
    return graph, TimingConstraints(desc.clock_period)


def description_to_dict(desc: DesignDescription) -> dict[str, Any]:
    """Plain-dict form (used by the JSON format)."""
    return {
        "name": desc.name,
        "clock_period": desc.clock_period,
        "clock_root": desc.clock_root,
        "clock_source_at": list(desc.clock_source_at),
        "buffers": [list(b) for b in desc.buffers],
        "flipflops": [list(f) for f in desc.flipflops],
        "inputs": [list(i) for i in desc.inputs],
        "outputs": [list(o) for o in desc.outputs],
        "gates": [[name, [list(a) for a in arcs]]
                  for name, arcs in desc.gates],
        "nets": [list(n) for n in desc.nets],
    }


def description_from_dict(data: dict[str, Any]) -> DesignDescription:
    """Inverse of :func:`description_to_dict`."""
    try:
        return DesignDescription(
            name=data["name"],
            clock_period=data["clock_period"],
            clock_root=data["clock_root"],
            clock_source_at=tuple(data["clock_source_at"]),
            buffers=[tuple(b) for b in data["buffers"]],
            flipflops=[tuple(f) for f in data["flipflops"]],
            inputs=[tuple(i) for i in data["inputs"]],
            outputs=[tuple(o) for o in data["outputs"]],
            gates=[(name, [tuple(a) for a in arcs])
                   for name, arcs in data["gates"]],
            nets=[tuple(n) for n in data["nets"]],
        )
    except (KeyError, TypeError) as exc:
        raise FormatError(f"malformed design description: {exc}") from exc
