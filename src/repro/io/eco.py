"""ECO update files: delay/clock edits as JSON.

An update file drives the incremental pipeline from the command line
(``python -m repro eco``, ``report --eco``) and gives what-if scripts a
durable format::

    {
      "delays": [
        {"driver": "u3/Y", "sink": "u7/A0", "early": 0.12, "late": 0.31}
      ],
      "clock": {
        "b2": [0.50, 0.85]
      }
    }

``delays`` entries name a data edge by driver/sink pin and give its new
``(early, late)`` delay pair (the fields of
:class:`~repro.sta.incremental.DelayUpdate`).  ``clock`` maps a
clock-tree node name to the new delay pair of the edge from its parent
(the contract of :func:`~repro.sta.incremental.apply_clock_updates`).
Either section may be omitted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import FormatError
from repro.sta.incremental import DelayUpdate

__all__ = ["EcoUpdates", "eco_to_dict", "load_eco_updates",
           "parse_eco_updates", "save_eco_updates"]


@dataclass(frozen=True, slots=True)
class EcoUpdates:
    """One parsed update file: delay edits plus clock-tree edits."""

    delays: tuple[DelayUpdate, ...] = ()
    clock: dict[str, tuple[float, float]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.delays or self.clock)

    def describe(self) -> str:
        return (f"{len(self.delays)} delay edit(s), "
                f"{len(self.clock)} clock edit(s)")


def _number(value, where: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FormatError(f"{where}: expected a number, got {value!r}")
    return float(value)


def load_eco_updates(path: str) -> EcoUpdates:
    """Parse ``path`` as an ECO update file.

    Raises :class:`~repro.exceptions.FormatError` for malformed JSON,
    unknown keys, or bad entry shapes — edits are double-checked again
    at apply time against the actual design (unknown pins/nodes raise
    :class:`~repro.exceptions.AnalysisError` there).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except json.JSONDecodeError as exc:
        raise FormatError(f"{path}: not valid JSON: {exc}") from None
    return parse_eco_updates(raw, where=str(path))


def parse_eco_updates(raw, where: str = "<eco>") -> EcoUpdates:
    """Validate an already-decoded ECO-update JSON object.

    The validation (and :class:`~repro.exceptions.FormatError`
    diagnostics) of :func:`load_eco_updates`, for payloads that never
    touched a file — the timing server's update endpoint and the
    session-journal checkpoint format both speak this shape.  ``where``
    prefixes every diagnostic the way a file path would.
    """
    if not isinstance(raw, dict):
        raise FormatError(f"{where}: expected a JSON object at top level")
    unknown = set(raw) - {"delays", "clock"}
    if unknown:
        raise FormatError(
            f"{where}: unknown section(s) {sorted(unknown)}; expected "
            f"'delays' and/or 'clock'")

    if not isinstance(raw.get("delays", []), list):
        raise FormatError(f"{where}: 'delays' must be a list")
    delays = []
    for index, entry in enumerate(raw.get("delays", [])):
        here = f"{where}: delays[{index}]"
        if not isinstance(entry, dict):
            raise FormatError(f"{here}: expected an object")
        missing = {"driver", "sink", "early", "late"} - set(entry)
        if missing:
            raise FormatError(f"{here}: missing {sorted(missing)}")
        driver, sink = entry["driver"], entry["sink"]
        if not isinstance(driver, (str, int)) or isinstance(driver, bool):
            raise FormatError(f"{here}: driver must be a pin name or id")
        if not isinstance(sink, (str, int)) or isinstance(sink, bool):
            raise FormatError(f"{here}: sink must be a pin name or id")
        delays.append(DelayUpdate(driver, sink,
                                  _number(entry["early"], here),
                                  _number(entry["late"], here)))

    clock_raw = raw.get("clock", {})
    if not isinstance(clock_raw, dict):
        raise FormatError(f"{where}: 'clock' must map node names to "
                          f"[early, late] pairs")
    clock: dict[str, tuple[float, float]] = {}
    for name, pair in clock_raw.items():
        here = f"{where}: clock[{name!r}]"
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2):
            raise FormatError(f"{here}: expected [early, late]")
        early = _number(pair[0], here)
        late = _number(pair[1], here)
        if early > late:
            raise FormatError(f"{here}: early {early} exceeds late {late}")
        clock[name] = (early, late)

    return EcoUpdates(delays=tuple(delays), clock=clock)


def eco_to_dict(updates: EcoUpdates) -> dict:
    """The JSON-ready object form :func:`parse_eco_updates` reads."""
    payload: dict = {}
    if updates.delays:
        payload["delays"] = [
            {"driver": u.driver, "sink": u.sink,
             "early": u.early, "late": u.late}
            for u in updates.delays]
    if updates.clock:
        payload["clock"] = {name: [early, late]
                            for name, (early, late)
                            in updates.clock.items()}
    return payload


def save_eco_updates(updates: EcoUpdates, path: str) -> None:
    """Write ``updates`` in the format :func:`load_eco_updates` reads."""
    payload = eco_to_dict(updates)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
