"""Yosys ``write_json`` netlist importer.

Walks the JSON document Yosys emits (``yosys -p 'write_json out.json'``)
— top module, ``ports`` (direction + bit ids), ``cells`` (type +
connections as bit ids), ``netnames`` — and rebuilds the neutral
:class:`~repro.io.verilog.VerilogModule` our elaboration pipeline
(:func:`repro.io.flow.elaborate_design`) consumes.  Yosys internal gate
types (``$_NAND_``, ``$_DFF_P_``, …) are mapped onto
:mod:`repro.library.standard` cells; netlists already mapped to the
generic library (``NAND2_X1``…) pass through by name.

Every bit id becomes a scalar net named after the port or net that
carries it (multi-bit signals expand to ``name[i]``); constant bits
(``"0"``/``"1"``/``"x"``) have no timing arcs and are rejected with a
:class:`~repro.exceptions.FormatError`, as are buses wider than one bit
on a cell pin.  JSON syntax errors surface with ``path:line:col``
diagnostics.
"""

from __future__ import annotations

import json
import os

from repro.exceptions import FormatError, SourceLocation
from repro.io.verilog import VerilogInstance, VerilogModule
from repro.library.cells import StandardCellLibrary

__all__ = ["infer_clock_port", "parse_yosys_json", "read_yosys_module"]

#: Yosys internal gate type -> (generic library cell, port renames).
_YOSYS_CELLS: dict[str, tuple[str, dict[str, str]]] = {
    "$_BUF_": ("BUF_X1", {"A": "A0", "Y": "Y"}),
    "$_NOT_": ("INV_X1", {"A": "A0", "Y": "Y"}),
    "$_AND_": ("AND2_X1", {"A": "A0", "B": "A1", "Y": "Y"}),
    "$_NAND_": ("NAND2_X1", {"A": "A0", "B": "A1", "Y": "Y"}),
    "$_OR_": ("OR2_X1", {"A": "A0", "B": "A1", "Y": "Y"}),
    "$_NOR_": ("NOR2_X1", {"A": "A0", "B": "A1", "Y": "Y"}),
    "$_XOR_": ("XOR2_X1", {"A": "A0", "B": "A1", "Y": "Y"}),
    "$_XNOR_": ("XNOR2_X1", {"A": "A0", "B": "A1", "Y": "Y"}),
    "$_DFF_P_": ("DFF_X1", {"C": "CK", "D": "D", "Q": "Q"}),
}


def _sanitize(name: str) -> str:
    """Flatten separators that collide with our ``inst/PIN`` refs."""
    return name.replace("/", "_").replace("\\", "")


def _is_top(attributes: dict) -> bool:
    value = attributes.get("top")
    if value is None:
        return False
    if isinstance(value, int):
        return value != 0
    text = str(value).strip()
    return bool(text) and set(text) <= set("01") and "1" in text


def _pick_module(payload: dict, path: str | None) -> tuple[str, dict]:
    modules = payload.get("modules")
    if not isinstance(modules, dict) or not modules:
        raise FormatError("no 'modules' object; not a Yosys "
                          "write_json netlist", path=path)
    tops = [(name, mod) for name, mod in modules.items()
            if isinstance(mod, dict)
            and _is_top(mod.get("attributes") or {})]
    if len(tops) == 1:
        return tops[0]
    if not tops and len(modules) == 1:
        name, mod = next(iter(modules.items()))
        if isinstance(mod, dict):
            return name, mod
    raise FormatError(
        f"cannot pick a top module among {sorted(modules)}; mark one "
        f"with the 'top' attribute (yosys: hierarchy -top NAME)",
        path=path)


def _bit_names(module: dict) -> dict[int, str]:
    """Bit id -> scalar net name (ports first, then visible netnames)."""
    names: dict[int, str] = {}

    def claim(bits: list, base: str, force: bool) -> None:
        wide = len(bits) > 1
        for index, bit in enumerate(bits):
            if not isinstance(bit, int):
                continue  # constants are handled at the use site
            if force or bit not in names:
                label = f"{base}[{index}]" if wide else base
                names[bit] = _sanitize(label)

    for name, port in (module.get("ports") or {}).items():
        claim(port.get("bits") or [], name, force=True)
    visible, hidden = [], []
    for name, net in (module.get("netnames") or {}).items():
        (hidden if net.get("hide_name") else visible).append((name, net))
    for name, net in visible + hidden:
        claim(net.get("bits") or [], name, force=False)
    return names


def _net_of_bit(bit, names: dict[int, str], where: str,
                path: str | None) -> str:
    if not isinstance(bit, int):
        raise FormatError(
            f"{where} is tied to constant {bit!r}; constant drivers "
            f"carry no timing arcs and are not supported", path=path)
    return names.setdefault(bit, f"$net{bit}")


def parse_yosys_json(text: str, path: str | None = None
                     ) -> tuple[VerilogModule, dict]:
    """Parse Yosys ``write_json`` text into a (module, metadata) pair."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SourceLocation(path, exc.lineno, exc.colno).error(
            f"invalid JSON: {exc.msg}") from exc
    if not isinstance(payload, dict):
        raise FormatError("top-level JSON value must be an object",
                          path=path)
    top_name, top = _pick_module(payload, path)
    names = _bit_names(top)
    module = VerilogModule(name=_sanitize(top_name))
    meta = {"creator": payload.get("creator"),
            "modules": sorted(payload.get("modules") or {}),
            "top": top_name}

    for name, port in (top.get("ports") or {}).items():
        direction = port.get("direction")
        bits = port.get("bits") or []
        if direction not in ("input", "output"):
            raise FormatError(
                f"port {name!r} has unsupported direction "
                f"{direction!r} (inout is not supported)", path=path)
        wide = len(bits) > 1
        for index, bit in enumerate(bits):
            label = _sanitize(f"{name}[{index}]" if wide else name)
            if not isinstance(bit, int):
                raise FormatError(
                    f"port {label!r} is tied to constant {bit!r}; "
                    f"constant drivers carry no timing arcs and are "
                    f"not supported", path=path)
            module.ports.append(label)
            (module.inputs if direction == "input"
             else module.outputs).append(label)

    port_names = set(module.ports)
    for raw_name, cell in (top.get("cells") or {}).items():
        cell_type = cell.get("type")
        mapped_type, renames = _YOSYS_CELLS.get(
            cell_type, (cell_type, None))
        connections = {}
        for port, bits in (cell.get("connections") or {}).items():
            if not isinstance(bits, list) or len(bits) != 1:
                raise FormatError(
                    f"cell {raw_name!r} pin {port!r} connects "
                    f"{len(bits) if isinstance(bits, list) else '?'} "
                    f"bits; library cell pins are single-bit", path=path)
            pin = renames.get(port) if renames is not None else port
            if pin is None:
                raise FormatError(
                    f"cell {raw_name!r} ({cell_type}) has unexpected "
                    f"pin {port!r}", path=path)
            net = _net_of_bit(bits[0], names,
                              f"cell {raw_name!r} pin {port!r}", path)
            connections[pin] = net
        module.instances.append(VerilogInstance(
            cell=mapped_type, name=_sanitize(raw_name),
            connections=connections))

    declared = set(module.ports)
    for instance in module.instances:
        for net in instance.connections.values():
            if net not in declared and net not in port_names:
                module.wires.append(net)
                declared.add(net)
    return module, meta


def read_yosys_module(path: str | os.PathLike
                      ) -> tuple[VerilogModule, dict]:
    """Parse the Yosys JSON netlist at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_yosys_json(handle.read(), path=str(path))


def infer_clock_port(module: VerilogModule,
                     library: StandardCellLibrary,
                     path: str | None = None) -> str:
    """The input port that (transitively) clocks every flip-flop.

    Follows each flip-flop's CK net backwards through single-input
    cells until an input port is reached; all flip-flops must agree.
    Used to synthesize the ``create_clock`` an imported netlist does
    not carry (pass an explicit SDC to override).
    """
    drivers: dict[str, tuple] = {}
    for instance in module.instances:
        if instance.cell not in library:
            raise FormatError(
                f"instance {instance.name!r} uses unknown cell "
                f"{instance.cell!r}", path=path)
        output = "Q" if library.is_flip_flop(instance.cell) else "Y"
        net = instance.connections.get(output)
        if net is not None:
            drivers[net] = (instance.name, instance.cell)

    inputs = set(module.inputs)
    roots = set()
    for instance in module.instances:
        if not library.is_flip_flop(instance.cell):
            continue
        net = instance.connections.get("CK")
        if net is None:
            raise FormatError(
                f"flip-flop {instance.name!r} has no CK connection",
                path=path)
        seen = set()
        while net not in inputs:
            if net in seen:
                raise FormatError(
                    f"clock net {net!r} is part of a cycle", path=path)
            seen.add(net)
            driver = drivers.get(net)
            if driver is None:
                raise FormatError(
                    f"clock net {net!r} has no driver", path=path)
            name, cell_name = driver
            cell = library.cell(cell_name) \
                if not library.is_flip_flop(cell_name) else None
            if cell is None or cell.num_inputs != 1:
                raise FormatError(
                    f"cannot trace the clock of flip-flop "
                    f"{instance.name!r} past {name!r} ({cell_name}); "
                    f"only buffer/inverter chains from an input port "
                    f"are recognized", path=path)
            instance_obj = next(i for i in module.instances
                                if i.name == name)
            net = instance_obj.connections.get("A0")
            if net is None:
                raise FormatError(
                    f"clock cell {name!r} has no A0 connection",
                    path=path)
        roots.add(net)
    if not roots:
        raise FormatError(
            "no flip-flops: cannot infer a clock port (pass an SDC "
            "with create_clock)", path=path)
    if len(roots) > 1:
        raise FormatError(
            f"flip-flops are clocked from multiple ports "
            f"{sorted(roots)}; single-clock designs only", path=path)
    return roots.pop()
