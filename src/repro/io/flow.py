"""The file-based front-end: Verilog + SDC + library -> analyzable design.

``read_design(verilog, sdc, library)`` wires everything together:

1. parse the structural netlist and the constraints;
2. recover the clock network: starting from the SDC clock port, follow
   non-inverting single-input cells (BUF/INV-class; inverting clock
   cells are rejected) whose fan-out stays inside the clock network;
   these become clock-tree buffers carrying their library delays;
3. everything else becomes rise/fall-expanded data logic
   (:class:`repro.transitions.RiseFallNetlist`), ports get their SDC
   arrivals/requirements, and the SDC period becomes the
   :class:`~repro.sta.constraints.TimingConstraints`.

Verilog wires are ideal (zero delay); all timing comes from library arcs
and SDC annotations, as in a pre-layout flow.
"""

from __future__ import annotations

import os

from repro.exceptions import FormatError
from repro.io.sdc import SdcConstraints, read_sdc
from repro.io.verilog import VerilogModule, read_verilog
from repro.library.cells import StandardCellLibrary
from repro.sta.constraints import TimingConstraints
from repro.transitions.netlist import RiseFallDesign, RiseFallNetlist

__all__ = ["elaborate_design", "read_design"]

_FF_REQUIRED_PORTS = ("CK", "D")


def _net_drivers(module: VerilogModule,
                 library: StandardCellLibrary) -> dict[str, tuple]:
    """net -> ("port", name) | ("cell", instance, port)."""
    drivers: dict[str, tuple] = {}

    def claim(net: str, driver: tuple) -> None:
        if net in drivers:
            raise FormatError(
                f"net {net!r} has multiple drivers: {drivers[net]} and "
                f"{driver}")
        drivers[net] = driver

    for port in module.inputs:
        claim(port, ("port", port))
    for instance in module.instances:
        if instance.cell not in library:
            raise FormatError(
                f"instance {instance.name!r} uses unknown cell "
                f"{instance.cell!r}")
        output_port = "Q" if library.is_flip_flop(instance.cell) else "Y"
        net = instance.connections.get(output_port)
        if net is not None:
            claim(net, ("cell", instance.name, output_port))
    return drivers


def _trace_clock_network(module: VerilogModule,
                         library: StandardCellLibrary,
                         clock_port: str) -> tuple[set[str], list]:
    """Clock nets and the clock-cell instances in root-first order."""
    if clock_port not in module.inputs:
        raise FormatError(
            f"SDC clock port {clock_port!r} is not a module input")

    # net -> instances consuming it on which ports
    consumers: dict[str, list[tuple]] = {}
    for instance in module.instances:
        output_port = "Q" if library.is_flip_flop(instance.cell) else "Y"
        for port, net in instance.connections.items():
            if port != output_port:
                consumers.setdefault(net, []).append((instance, port))

    clock_nets = {clock_port}
    clock_cells = []
    frontier = [clock_port]
    while frontier:
        net = frontier.pop(0)
        for instance, port in consumers.get(net, []):
            if library.is_flip_flop(instance.cell):
                if port != "CK":
                    raise FormatError(
                        f"clock net {net!r} drives data pin "
                        f"{instance.name}/{port}; mixed clock/data "
                        f"networks are not supported")
                continue
            cell = library.cell(instance.cell)
            if cell.num_inputs != 1:
                raise FormatError(
                    f"clock net {net!r} drives multi-input cell "
                    f"{instance.name!r} ({cell.name}); only buffer "
                    f"chains are supported in the clock network")
            from repro.library.cells import Unateness
            if cell.unateness is not Unateness.POSITIVE:
                raise FormatError(
                    f"clock cell {instance.name!r} ({cell.name}) "
                    f"inverts; inverting clock networks are not "
                    f"supported")
            clock_cells.append(instance)
            out_net = instance.connections.get("Y")
            if out_net is None:
                raise FormatError(
                    f"clock buffer {instance.name!r} has no output "
                    f"connection")
            if out_net not in clock_nets:
                clock_nets.add(out_net)
                frontier.append(out_net)
    return clock_nets, clock_cells


def elaborate_design(module: VerilogModule, sdc: SdcConstraints,
                     library: StandardCellLibrary,
                     *,
                     cell_overrides: dict | None = None,
                     net_delays: dict | None = None
                     ) -> tuple[RiseFallDesign, TimingConstraints]:
    """Build an analyzable design from parsed inputs.

    The two hooks let delay annotators reshape the design without
    duplicating the elaboration pipeline:

    ``cell_overrides``
        instance name -> cell template (a
        :class:`~repro.library.cells.LibraryCell` or
        :class:`~repro.library.cells.FlipFlopCell` clone carrying
        per-instance delays).  Used by the delay calculator
        (:mod:`repro.delaycalc.timed_flow`) and the SDF annotator
        (:mod:`repro.io.sdf`).  Clock buffers take their tree-edge
        delay from the override's input-0 rise arc.
    ``net_delays``
        sink pin reference (``"inst/A0"``, ``"inst/D"``, ``"inst/CK"``,
        or an output port name) -> (early, late) wire delay for the net
        into that pin.  Unannotated nets stay ideal.  A wire delay into
        a clock buffer's ``A0`` is folded into that buffer's tree edge.
    """
    if sdc.clock_port is None or sdc.clock_period is None:
        raise FormatError("SDC must contain create_clock")
    cell_overrides = cell_overrides or {}
    net_delays = net_delays or {}
    drivers = _net_drivers(module, library)
    clock_nets, clock_cells = _trace_clock_network(module, library,
                                                   sdc.clock_port)
    clock_cell_names = {instance.name for instance in clock_cells}

    netlist = RiseFallNetlist(module.name, library)
    netlist.set_clock_root(sdc.clock_port)

    # Clock buffers, root-first (the trace order guarantees parents come
    # first).  Tree node of a clock net = the cell driving it.
    node_of_net = {sdc.clock_port: sdc.clock_port}
    for instance in clock_cells:
        cell = cell_overrides.get(instance.name) \
            or library.cell(instance.cell)
        parent = node_of_net[instance.connections["A0"]]
        early, late = cell.rise_delays[0]
        wire_early, wire_late = net_delays.get(
            f"{instance.name}/A0", (0.0, 0.0))
        netlist.add_clock_buffer(instance.name, parent,
                                 early + wire_early, late + wire_late)
        node_of_net[instance.connections["Y"]] = instance.name

    # Ports.
    for port in module.inputs:
        if port == sdc.clock_port:
            continue
        if port in clock_nets:
            raise FormatError(
                f"input {port!r} is part of the clock network but is "
                f"not the SDC clock port")
        early, late = sdc.input_arrival(port)
        netlist.add_primary_input(port, rise_at=(early, late),
                                  fall_at=(early, late))
    for port in module.outputs:
        rat_early, rat_late = sdc.output_required(port)
        netlist.add_primary_output(port, rat_early, rat_late)

    # Instances.
    for instance in module.instances:
        if instance.name in clock_cell_names:
            continue
        if library.is_flip_flop(instance.cell):
            for port in _FF_REQUIRED_PORTS:
                if port not in instance.connections:
                    raise FormatError(
                        f"flip-flop {instance.name!r} is missing its "
                        f"{port} connection")
            ck_net = instance.connections["CK"]
            if ck_net not in clock_nets:
                raise FormatError(
                    f"flip-flop {instance.name!r} clock pin is driven "
                    f"by {ck_net!r}, which is not part of the clock "
                    f"network")
            cell = cell_overrides.get(instance.name) \
                or library.flip_flop(instance.cell)
            netlist.add_flipflop_cell(instance.name, cell)
            netlist.connect_clock(instance.name, node_of_net[ck_net],
                                  *net_delays.get(f"{instance.name}/CK",
                                                  (0.0, 0.0)))
        else:
            cell = cell_overrides.get(instance.name) \
                or library.cell(instance.cell)
            netlist.add_gate_cell(instance.name, cell)
            for i in range(cell.num_inputs):
                if f"A{i}" not in instance.connections:
                    raise FormatError(
                        f"gate {instance.name!r} ({cell.name}) is "
                        f"missing input A{i}")

    def driver_ref(net: str) -> str:
        try:
            driver = drivers[net]
        except KeyError:
            raise FormatError(f"net {net!r} has no driver") from None
        if driver[0] == "port":
            return driver[1]
        _kind, instance_name, port = driver
        return f"{instance_name}/{port}"

    # Data connections.
    for instance in module.instances:
        if instance.name in clock_cell_names:
            continue
        for port, net in instance.connections.items():
            if port in ("Y", "Q", "CK"):
                continue
            sink = f"{instance.name}/{port}"
            netlist.connect(driver_ref(net), sink,
                            *net_delays.get(sink, (0.0, 0.0)))
    for port in module.outputs:
        netlist.connect(driver_ref(port), port,
                        *net_delays.get(port, (0.0, 0.0)))

    return netlist.elaborate(), TimingConstraints(sdc.clock_period)


def read_design(verilog_path: str | os.PathLike,
                sdc_path: str | os.PathLike,
                library: StandardCellLibrary
                ) -> tuple[RiseFallDesign, TimingConstraints]:
    """Parse, constrain, and expand a design from files.

    .. deprecated::
        Use ``repro.io.load_design(path, format="verilog", sdc=...,
        library=...)`` — the registry entry point also carries SDF
        annotation and corner extraction.
    """
    import warnings
    warnings.warn(
        "repro.io.flow.read_design is deprecated; use "
        "repro.io.load_design(path, format='verilog', sdc=..., "
        "library=...)", DeprecationWarning, stacklevel=2)
    module = read_verilog(str(verilog_path))
    sdc = read_sdc(str(sdc_path))
    return elaborate_design(module, sdc, library)
