"""Pre-CPPR slack computation (paper Definition 1).

Slacks here are the conventional, pessimistic ones: the launch and capture
clock paths are both worst-cased, which is exactly the pessimism CPPR
later removes.  Positive slack means the test passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.sta.arrival import ArrivalTimes
from repro.sta.constraints import TimingConstraints
from repro.sta.modes import AnalysisMode
from repro.sta.required import RequiredTimes

__all__ = ["EndpointSlack", "endpoint_slacks", "pin_slack", "worst_slack"]


@dataclass(frozen=True, slots=True)
class EndpointSlack:
    """Slack of one timing test.

    ``ff_index`` is the capturing flip-flop, or ``None`` for a primary
    output test.  ``slack`` is ``None`` when no arrival reaches the
    endpoint (an untested endpoint, not a violation).
    """

    pin: int
    name: str
    ff_index: int | None
    slack: float | None


def endpoint_slacks(graph: TimingGraph, constraints: TimingConstraints,
                    arrivals: ArrivalTimes,
                    mode: AnalysisMode) -> list[EndpointSlack]:
    """Pre-CPPR slack of every timing test in ``graph``.

    For a flip-flop with clock pin ``o2`` and data pin ``d2``
    (Equation (1)):

    * setup: ``at_early(o2) + T_clk - T_setup - at_late(d2)``
    * hold:  ``at_early(d2) - at_late(o2) - T_hold``

    Primary outputs use their annotated required times.
    """
    tree = graph.clock_tree
    results: list[EndpointSlack] = []
    for ff in graph.ffs:
        if not arrivals.is_reachable(ff.d_pin):
            results.append(EndpointSlack(ff.d_pin, ff.name, ff.index, None))
            continue
        if mode.is_setup:
            slack = (tree.at_early(ff.tree_node) + constraints.clock_period
                     - ff.t_setup - arrivals.late[ff.d_pin])
        else:
            slack = (arrivals.early[ff.d_pin]
                     - tree.at_late(ff.tree_node) - ff.t_hold)
        results.append(EndpointSlack(ff.d_pin, ff.name, ff.index, slack))

    for po in graph.primary_outputs:
        rat = po.rat_late if mode.is_setup else po.rat_early
        if rat is None or not arrivals.is_reachable(po.pin):
            results.append(EndpointSlack(po.pin, po.name, None, None))
            continue
        if mode.is_setup:
            slack = rat - arrivals.late[po.pin]
        else:
            slack = arrivals.early[po.pin] - rat
        results.append(EndpointSlack(po.pin, po.name, None, slack))
    return results


def pin_slack(arrivals: ArrivalTimes, required: RequiredTimes,
              mode: AnalysisMode, pin: int) -> float | None:
    """Per-pin slack: required minus arrival in the mode's direction.

    Returns ``None`` when the pin sees no arrival or no requirement.
    """
    if mode.is_setup:
        rat = required.late_at(pin)
        at = arrivals.late_at(pin)
        if rat is None or at is None:
            return None
        return rat - at
    rat = required.early_at(pin)
    at = arrivals.early_at(pin)
    if rat is None or at is None:
        return None
    return at - rat


def worst_slack(slacks: list[EndpointSlack]) -> EndpointSlack | None:
    """The most critical (smallest-slack) tested endpoint, if any."""
    tested = [s for s in slacks if s.slack is not None]
    if not tested:
        return None
    return min(tested, key=lambda s: s.slack)
