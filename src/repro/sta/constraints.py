"""Design-level timing constraints.

Per-cell constraints (setup/hold margins, clock-to-Q delays) live on the
flip-flop records; per-port constraints live on the primary I/O records.
What remains design-global — the clock period — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TimingConstraintError

__all__ = ["TimingConstraints"]


@dataclass(frozen=True, slots=True)
class TimingConstraints:
    """Global constraints for one analysis run.

    Attributes
    ----------
    clock_period:
        ``T_clk`` in the paper's Equation (1); the capture clock edge for a
        setup check arrives one period after the launch edge.
    """

    clock_period: float

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise TimingConstraintError(
                f"clock period must be positive, got {self.clock_period}")
