"""Vectorized (numpy) arrival propagation.

The paper's stated future work is a GPU port; the Python analogue of
that direction is replacing the per-edge interpreter loop with bulk
array operations.  This module rides the shared CSR substrate of
:mod:`repro.core.arrays` — the data graph is levelized and bucketed by
source level once per graph (cached on it, shared with the CPPR array
backend) — and relaxes each level with ``reduceat`` segment reductions
over the precomputed per-destination segments (within a level every
target pin is unique per segment, so the merge back into the running
columns is a plain element-wise min/max).

It computes exactly what :func:`repro.sta.arrival.propagate_arrivals`
computes — the test suite asserts bit-level equality is not required
(floating-point reduction order differs) but value equality within
1e-12 on randomized designs.  The CPPR passes use the same substrate
through :mod:`repro.core.propagate`, which adds the ``from``-pointer
and group bookkeeping this plain STA sweep does not need.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.graph import TimingGraph
from repro.core.arrays import get_core
from repro.sta.arrival import ArrivalTimes

__all__ = ["propagate_arrivals_vectorized"]


def propagate_arrivals_vectorized(graph: TimingGraph) -> ArrivalTimes:
    """Drop-in replacement for ``propagate_arrivals`` using numpy.

    Seeds are identical (primary inputs and flip-flop Q pins); the
    forward relaxation runs level by level with scatter reductions
    instead of a per-edge Python loop.
    """
    n = graph.num_pins
    early = np.full(n, np.inf, dtype=np.float64)
    late = np.full(n, -np.inf, dtype=np.float64)

    for pi in graph.primary_inputs:
        early[pi.pin] = min(early[pi.pin], pi.at_early)
        late[pi.pin] = max(late[pi.pin], pi.at_late)
    tree = graph.clock_tree
    for ff in graph.ffs:
        launch_early = tree.at_early(ff.tree_node) + ff.clk_to_q_early
        launch_late = tree.at_late(ff.tree_node) + ff.clk_to_q_late
        early[ff.q_pin] = min(early[ff.q_pin], launch_early)
        late[ff.q_pin] = max(late[ff.q_pin], launch_late)

    for b in get_core(graph).level_buckets:
        # Unreachable sources produce inf + x = inf (and -inf): the
        # reductions ignore them naturally.
        seg_early = np.minimum.reduceat(early[b.src] + b.early,
                                        b.estarts)
        seg_late = np.maximum.reduceat(late[b.src] + b.late, b.estarts)
        early[b.seg_dst] = np.minimum(early[b.seg_dst], seg_early)
        late[b.seg_dst] = np.maximum(late[b.seg_dst], seg_late)

    return ArrivalTimes(early.tolist(), late.tolist())
