"""Vectorized (numpy) arrival propagation.

The paper's stated future work is a GPU port; the Python analogue of
that direction is replacing the per-edge interpreter loop with bulk
array operations.  This module levelizes the data graph once (longest-
path levels, so every edge goes from a lower to a strictly higher
level), groups edges by source level, and relaxes each level with
``numpy`` scatter reductions (``minimum.at`` / ``maximum.at``).

It computes exactly what :func:`repro.sta.arrival.propagate_arrivals`
computes — the test suite asserts bit-level equality is not required
(floating-point reduction order differs) but value equality within
1e-12 on randomized designs.  The CPPR passes themselves still use the
scalar propagation because they need ``from``-pointer and group
bookkeeping per pin; this module accelerates the block-based STA that
the baselines and reports lean on, and documents the vectorization
seam a GPU port would widen.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.graph import TimingGraph
from repro.ds.topo import longest_path_levels
from repro.sta.arrival import ArrivalTimes

__all__ = ["propagate_arrivals_vectorized"]


class _LevelizedEdges:
    """Per-level edge arrays, built once per graph and cached on it."""

    def __init__(self, graph: TimingGraph) -> None:
        order = graph.topo_order
        levels = longest_path_levels(graph.num_pins,
                                     [[v for v, _e, _l in adj]
                                      for adj in graph.fanout], order)
        per_level: dict[int, list[tuple[int, int, float, float]]] = {}
        for u in range(graph.num_pins):
            for v, early, late in graph.fanout[u]:
                per_level.setdefault(levels[u], []).append(
                    (u, v, early, late))
        self.levels = []
        for level in sorted(per_level):
            edges = per_level[level]
            self.levels.append((
                np.fromiter((e[0] for e in edges), dtype=np.int64),
                np.fromiter((e[1] for e in edges), dtype=np.int64),
                np.fromiter((e[2] for e in edges), dtype=np.float64),
                np.fromiter((e[3] for e in edges), dtype=np.float64),
            ))


def _levelized(graph: TimingGraph) -> _LevelizedEdges:
    cached = getattr(graph, "_vectorized_edges", None)
    if cached is None:
        cached = _LevelizedEdges(graph)
        graph._vectorized_edges = cached
    return cached


def propagate_arrivals_vectorized(graph: TimingGraph) -> ArrivalTimes:
    """Drop-in replacement for ``propagate_arrivals`` using numpy.

    Seeds are identical (primary inputs and flip-flop Q pins); the
    forward relaxation runs level by level with scatter reductions
    instead of a per-edge Python loop.
    """
    n = graph.num_pins
    early = np.full(n, np.inf, dtype=np.float64)
    late = np.full(n, -np.inf, dtype=np.float64)

    for pi in graph.primary_inputs:
        early[pi.pin] = min(early[pi.pin], pi.at_early)
        late[pi.pin] = max(late[pi.pin], pi.at_late)
    tree = graph.clock_tree
    for ff in graph.ffs:
        launch_early = tree.at_early(ff.tree_node) + ff.clk_to_q_early
        launch_late = tree.at_late(ff.tree_node) + ff.clk_to_q_late
        early[ff.q_pin] = min(early[ff.q_pin], launch_early)
        late[ff.q_pin] = max(late[ff.q_pin], launch_late)

    for sources, targets, delay_early, delay_late in \
            _levelized(graph).levels:
        candidate_early = early[sources] + delay_early
        candidate_late = late[sources] + delay_late
        # Unreachable sources produce inf + x = inf (and -inf): the
        # reductions ignore them naturally.
        np.minimum.at(early, targets, candidate_early)
        np.maximum.at(late, targets, candidate_late)

    return ArrivalTimes(early.tolist(), late.tolist())
