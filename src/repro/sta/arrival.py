"""Early/late arrival-time propagation over the data graph.

This is the conventional block-based STA forward pass: primary inputs and
flip-flop Q pins seed arrivals, and every pin merges the most pessimistic
arrival from its fan-in in topological order.  The CPPR engine does *not*
use these values directly (it runs its own per-level passes with credit
offsets and dual tuples), but the baselines, the pre-CPPR reports, and the
correctness oracles all do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.obs import collector as _obs

__all__ = ["ArrivalTimes", "propagate_arrivals"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(slots=True)
class ArrivalTimes:
    """Early and late arrival per pin, with reachability queries.

    ``early[u]`` is ``+inf`` and ``late[u]`` is ``-inf`` for pins not
    reachable from any arrival source (the merge identities).
    """

    early: list[float]
    late: list[float]

    def is_reachable(self, pin: int) -> bool:
        """True when any timing source reaches ``pin``."""
        return self.late[pin] != _NEG_INF

    def early_at(self, pin: int) -> float | None:
        value = self.early[pin]
        return None if value == _POS_INF else value

    def late_at(self, pin: int) -> float | None:
        value = self.late[pin]
        return None if value == _NEG_INF else value


def propagate_arrivals(graph: TimingGraph) -> ArrivalTimes:
    """Compute early/late arrivals on every data pin of ``graph``.

    Seeds:

    * each primary input with its annotated (early, late) arrival, and
    * each flip-flop Q pin with the clock arrival at its clock pin plus the
      early/late clock-to-Q delay (the launch arc of Algorithm 2 lines 1-7,
      here without any credit offset).

    Complexity is ``O(n)`` in the number of data edges.
    """
    n = graph.num_pins
    early = [_POS_INF] * n
    late = [_NEG_INF] * n

    for pi in graph.primary_inputs:
        early[pi.pin] = min(early[pi.pin], pi.at_early)
        late[pi.pin] = max(late[pi.pin], pi.at_late)

    tree = graph.clock_tree
    for ff in graph.ffs:
        launch_early = tree.at_early(ff.tree_node) + ff.clk_to_q_early
        launch_late = tree.at_late(ff.tree_node) + ff.clk_to_q_late
        early[ff.q_pin] = min(early[ff.q_pin], launch_early)
        late[ff.q_pin] = max(late[ff.q_pin], launch_late)

    col = _obs.ACTIVE
    counting = col is not None
    pins_visited = 0

    for u in graph.topo_order:
        early_u = early[u]
        late_u = late[u]
        if late_u == _NEG_INF and early_u == _POS_INF:
            continue
        if counting:
            pins_visited += 1
        for v, delay_early, delay_late in graph.fanout[u]:
            candidate = early_u + delay_early
            if candidate < early[v]:
                early[v] = candidate
            candidate = late_u + delay_late
            if candidate > late[v]:
                late[v] = candidate

    if counting:
        col.add("sta.pins_visited", pins_visited)

    return ArrivalTimes(early, late)
