"""Pre-CPPR endpoint report formatting.

The CPPR path reports live in :mod:`repro.cppr.report`; this module
formats the conventional block-based STA view: one line per timing test
with its pre-CPPR slack, the classic "timing summary" designers read
first.
"""

from __future__ import annotations

from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["format_endpoint_report"]


def format_endpoint_report(analyzer: TimingAnalyzer,
                           mode: AnalysisMode | str,
                           limit: int | None = 20) -> str:
    """A pre-CPPR endpoint summary, most critical first.

    ``limit`` bounds the number of rows (``None`` for all).  Untested
    endpoints (no arrival or no requirement) are summarized in the
    footer rather than listed.
    """
    mode = AnalysisMode.coerce(mode)
    slacks = analyzer.endpoint_slacks(mode)
    tested = sorted((s for s in slacks if s.slack is not None),
                    key=lambda s: s.slack)
    untested = len(slacks) - len(tested)
    shown = tested if limit is None else tested[:limit]

    title = (f"Pre-CPPR {mode.value} endpoint summary — "
             f"{analyzer.graph.name}")
    lines = [title, "=" * len(title),
             f"{'endpoint':<24} {'kind':<8} {'slack':>10}"]
    for endpoint in shown:
        kind = "FF" if endpoint.ff_index is not None else "PO"
        status = "  VIOLATED" if endpoint.slack < 0 else ""
        lines.append(f"{endpoint.name:<24} {kind:<8} "
                     f"{endpoint.slack:>+10.4f}{status}")
    violated = sum(1 for s in tested if s.slack < 0)
    lines.append("")
    lines.append(f"{len(tested)} tested endpoints ({violated} violated), "
                 f"{untested} untested; showing {len(shown)}")
    return "\n".join(lines)
