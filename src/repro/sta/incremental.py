"""Incremental delay updates (ECO-style what-if analysis).

The TAU 2015 contest framing the paper cites is *incremental* timing:
after an engineering change modifies a handful of net or arc delays, the
timer re-answers queries without a full rebuild.  This library's
analyzers are cheap to construct, so incrementality is expressed
functionally: :func:`apply_delay_updates` derives a new
:class:`~repro.circuit.graph.TimingGraph` that shares all untouched
structure (pin table, flip-flop records, clock tree) with the original,
rewriting only the adjacency rows whose delays changed.

Clock-tree edges are part of the :class:`ClockTree`;
:func:`apply_clock_updates` rebuilds that (small) object alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.clocktree import ClockTree
from repro.circuit.graph import TimingGraph
from repro.exceptions import AnalysisError

__all__ = ["DelayUpdate", "apply_clock_updates", "apply_delay_updates"]


@dataclass(frozen=True, slots=True)
class DelayUpdate:
    """New (early, late) delay for the data edge ``driver -> sink``.

    Pins are given by name (``"u3/Y"``) or integer id.
    """

    driver: str | int
    sink: str | int
    early: float
    late: float

    def __post_init__(self) -> None:
        if self.early > self.late:
            raise AnalysisError(
                f"delay update {self.driver!r} -> {self.sink!r}: early "
                f"{self.early} exceeds late {self.late}")


def _pin_id(graph: TimingGraph, pin: str | int) -> int:
    if isinstance(pin, int):
        if not 0 <= pin < graph.num_pins:
            raise AnalysisError(f"pin id {pin} out of range")
        return pin
    try:
        return graph.pin_index[pin]
    except KeyError:
        raise AnalysisError(f"unknown pin {pin!r}") from None


def apply_delay_updates(graph: TimingGraph,
                        updates: list[DelayUpdate]) -> TimingGraph:
    """A new graph with the given data-edge delays replaced.

    Untouched adjacency rows are shared with the original graph (which
    is never mutated).  Raises :class:`AnalysisError` when an update
    references a non-existent edge.
    """
    fanout = list(graph.fanout)
    touched: set[int] = set()
    for update in updates:
        u = _pin_id(graph, update.driver)
        v = _pin_id(graph, update.sink)
        if u not in touched:
            fanout[u] = list(fanout[u])
            touched.add(u)
        row = fanout[u]
        for index, (target, _early, _late) in enumerate(row):
            if target == v:
                row[index] = (v, update.early, update.late)
                break
        else:
            raise AnalysisError(
                f"no data edge {graph.pin_name(u)!r} -> "
                f"{graph.pin_name(v)!r} to update")
    return TimingGraph(graph.name, graph.pins, fanout, graph.ffs,
                       graph.primary_inputs, graph.primary_outputs,
                       graph.clock_tree)


def apply_clock_updates(graph: TimingGraph,
                        updates: dict[str, tuple[float, float]]
                        ) -> TimingGraph:
    """A new graph whose clock tree has the given edge delays replaced.

    ``updates`` maps a tree node *name* to the new (early, late) delay of
    the edge from its parent.  Arrival times and credits are recomputed
    by the new :class:`ClockTree`.
    """
    tree = graph.clock_tree
    name_to_node = {name: node for node, name in enumerate(tree.names)}
    delays_early = list(tree.delays_early)
    delays_late = list(tree.delays_late)
    for name, (early, late) in updates.items():
        node = name_to_node.get(name)
        if node is None:
            raise AnalysisError(f"unknown clock node {name!r}")
        if node == 0:
            raise AnalysisError(
                "the clock source has no incoming edge; update "
                "source_at via the netlist instead")
        delays_early[node] = early
        delays_late[node] = late
    new_tree = ClockTree(tree.names, tree.parents, delays_early,
                         delays_late, tree.pin_ids, tree.ff_of_node,
                         tree.source_at)
    return TimingGraph(graph.name, graph.pins, graph.fanout, graph.ffs,
                       graph.primary_inputs, graph.primary_outputs,
                       new_tree)
