"""Incremental delay updates (ECO-style what-if analysis).

The TAU 2015 contest framing the paper cites is *incremental* timing:
after an engineering change modifies a handful of net or arc delays, the
timer re-answers queries without a full rebuild.  Two layers implement
that here:

* this module's **functional graph derivation**:
  :func:`apply_delay_updates` / :func:`apply_clock_updates` produce a new
  :class:`~repro.circuit.graph.TimingGraph` sharing every
  topology-derived artifact with the original — pin table, records, name
  maps, ``topo_order``, and (for delay edits) the
  :class:`~repro.core.arrays.CoreStructure` half of the array core, so
  the derived graph pays a value-column copy instead of a CSR rebuild;
* the **stateful session**, :class:`repro.pipeline.session.CpprSession`
  (``engine.session()``), which additionally carries propagation state
  and family caches across edits and re-relaxes only dirty level
  segments.

.. deprecated::
    Calling these functions directly and rebuilding an analyzer/engine
    around the result is the *slow* documented path — it re-propagates
    and re-searches everything.  For repeated what-if queries use
    :meth:`repro.cppr.engine.CpprEngine.session` and its
    ``session.update(...)`` / ``session.top_paths(...)`` API instead;
    see ``docs/INCREMENTAL.md``.  These functions stay supported as the
    building blocks the session itself verifies against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.clocktree import ClockTree
from repro.circuit.graph import TimingGraph
from repro.exceptions import AnalysisError

__all__ = ["DelayUpdate", "apply_clock_updates", "apply_delay_updates",
           "resolve_delay_updates"]


@dataclass(frozen=True, slots=True)
class DelayUpdate:
    """New (early, late) delay for the data edge ``driver -> sink``.

    Pins are given by name (``"u3/Y"``) or integer id.
    """

    driver: str | int
    sink: str | int
    early: float
    late: float

    def __post_init__(self) -> None:
        if self.early > self.late:
            raise AnalysisError(
                f"delay update {self.driver!r} -> {self.sink!r}: early "
                f"{self.early} exceeds late {self.late}")


def _pin_id(graph: TimingGraph, pin: str | int) -> int:
    if isinstance(pin, int):
        if not 0 <= pin < graph.num_pins:
            raise AnalysisError(f"pin id {pin} out of range")
        return pin
    try:
        return graph.pin_index[pin]
    except KeyError:
        raise AnalysisError(f"unknown pin {pin!r}") from None


def resolve_delay_updates(graph: TimingGraph, updates: list[DelayUpdate]
                          ) -> list[tuple[int, int, float, float,
                                          float, float]]:
    """Resolve updates to ``(u, v, old_early, old_late, new_early,
    new_late)`` tuples against ``graph``'s *current* delays.

    The old pair identifies which entry of a parallel-edge run is being
    replaced (the first ``u -> v`` entry of the adjacency row, matching
    what :func:`apply_delay_updates` patches).  Raises
    :class:`AnalysisError` for a non-existent edge.  Does not mutate
    anything — callers apply the result to adjacency rows and the array
    core however suits them.
    """
    resolved = []
    for update in updates:
        u = _pin_id(graph, update.driver)
        v = _pin_id(graph, update.sink)
        for target, early, late in graph.fanout[u]:
            if target == v:
                resolved.append((u, v, early, late,
                                 update.early, update.late))
                break
        else:
            raise AnalysisError(
                f"no data edge {graph.pin_name(u)!r} -> "
                f"{graph.pin_name(v)!r} to update")
    return resolved


def _patch_rows(graph: TimingGraph,
                resolved: list[tuple[int, int, float, float, float, float]]
                ) -> tuple[list, list]:
    """Copy-on-touch ``(fanout, fanin)`` row lists with edits applied.

    Both tables are patched symmetrically: ``fanin`` is built by
    scanning drivers in ascending order, so the first ``u -> v`` entry
    of ``fanout[u]`` is exactly the first source-``u`` entry of
    ``fanin[v]`` — replacing both keeps the invariant a from-scratch
    ``TimingGraph.__init__`` would establish, without rebuilding the
    whole fanin table.
    """
    fanout = list(graph.fanout)
    fanin = list(graph.fanin)
    touched_out: set[int] = set()
    touched_in: set[int] = set()
    for u, v, old_e, old_l, new_e, new_l in resolved:
        if u not in touched_out:
            fanout[u] = list(fanout[u])
            touched_out.add(u)
        row = fanout[u]
        for index, (target, _early, _late) in enumerate(row):
            if target == v:
                row[index] = (v, new_e, new_l)
                break
        if v not in touched_in:
            fanin[v] = list(fanin[v])
            touched_in.add(v)
        row = fanin[v]
        for index, (source, _early, _late) in enumerate(row):
            if source == u:
                row[index] = (u, new_e, new_l)
                break
    return fanout, fanin


def apply_delay_updates(graph: TimingGraph,
                        updates: list[DelayUpdate]) -> TimingGraph:
    """A new graph with the given data-edge delays replaced.

    The derived graph shares everything topology-keyed with the original
    (which is never mutated): untouched adjacency rows, the pin table,
    ``topo_order``, and — when the original has a built array core — the
    immutable :class:`~repro.core.arrays.CoreStructure`, so only the
    delay value columns are copied and patched.  Raises
    :class:`AnalysisError` when an update references a non-existent
    edge.
    """
    resolved = resolve_delay_updates(graph, updates)
    fanout, fanin = _patch_rows(graph, resolved)
    derived = TimingGraph._derived(graph, fanout=fanout, fanin=fanin)
    core = getattr(graph, "_core_arrays", None)
    if core is not None:
        derived._core_arrays = core.updated_copy(derived, resolved)
    for attr in ("_batched_pads", "_batched_ff_columns"):
        value = getattr(graph, attr, None)
        if value is not None:
            setattr(derived, attr, value)
    return derived


def apply_clock_updates(graph: TimingGraph,
                        updates: dict[str, tuple[float, float]]
                        ) -> TimingGraph:
    """A new graph whose clock tree has the given edge delays replaced.

    ``updates`` maps a tree node *name* to the new (early, late) delay of
    the edge from its parent.  Arrival times and credits are recomputed
    by the new :class:`ClockTree` (which also gets fresh lifting and
    grouping caches); the data graph — adjacency rows and the whole
    array core, which holds no clock information — is shared untouched.
    """
    tree = graph.clock_tree
    name_to_node = {name: node for node, name in enumerate(tree.names)}
    delays_early = list(tree.delays_early)
    delays_late = list(tree.delays_late)
    for name, (early, late) in updates.items():
        node = name_to_node.get(name)
        if node is None:
            raise AnalysisError(f"unknown clock node {name!r}")
        if node == 0:
            raise AnalysisError(
                "the clock source has no incoming edge; update "
                "source_at via the netlist instead")
        delays_early[node] = early
        delays_late[node] = late
    new_tree = ClockTree(tree.names, tree.parents, delays_early,
                         delays_late, tree.pin_ids, tree.ff_of_node,
                         tree.source_at)
    derived = TimingGraph._derived(graph, clock_tree=new_tree)
    for attr in ("_core_arrays", "_batched_pads", "_batched_ff_columns"):
        value = getattr(graph, attr, None)
        if value is not None:
            setattr(derived, attr, value)
    return derived
