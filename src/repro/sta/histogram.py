"""Slack distribution summaries.

Timing sign-off thinks in histograms: how many endpoints are violating,
how many sit within a guard band of the worst, how long the tail is.
These helpers power the workload documentation (the "slack wall"
statistics in DESIGN.md) and give library users a quick design health
check without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["SlackHistogram", "slack_histogram"]


@dataclass(frozen=True, slots=True)
class SlackHistogram:
    """Binned endpoint slacks with summary statistics."""

    mode: AnalysisMode
    edges: tuple[float, ...]   # len == len(counts) + 1
    counts: tuple[int, ...]
    worst: float
    best: float
    num_violating: int
    num_tested: int

    def within(self, margin: float) -> int:
        """How many tested endpoints lie within ``margin`` of the worst.

        The paper's pruning-resistance metric: a large count means
        endpoint-slack thresholds cannot skip much work.
        """
        if margin < 0:
            raise ValueError("margin must be non-negative")
        limit = self.worst + margin
        total = 0
        for index, count in enumerate(self.counts):
            if self.edges[index] <= limit:
                total += count
        # Bin granularity over-counts; recompute exactly is impossible
        # from bins alone, so expose this as the bin-resolution answer.
        return total

    def format(self, width: int = 40) -> str:
        """A terminal-friendly ASCII rendering."""
        peak = max(self.counts) if self.counts else 1
        lines = [f"{self.mode.value} slack histogram "
                 f"({self.num_tested} endpoints, "
                 f"{self.num_violating} violating)"]
        for index, count in enumerate(self.counts):
            bar = "#" * max(1 if count else 0,
                            round(width * count / peak) if peak else 0)
            lines.append(f"[{self.edges[index]:+8.3f}, "
                         f"{self.edges[index + 1]:+8.3f}) "
                         f"{count:>5} {bar}")
        return "\n".join(lines)


def slack_histogram(analyzer: TimingAnalyzer, mode: AnalysisMode | str,
                    bins: int = 10) -> SlackHistogram:
    """Histogram the pre-CPPR endpoint slacks of a design.

    Raises ``ValueError`` when the design has no tested endpoints.
    """
    if bins < 1:
        raise ValueError(f"bins must be at least 1, got {bins}")
    mode = AnalysisMode.coerce(mode)
    values = sorted(s.slack for s in analyzer.endpoint_slacks(mode)
                    if s.slack is not None)
    if not values:
        raise ValueError("design has no tested endpoints")

    worst, best = values[0], values[-1]
    span = best - worst
    if span == 0.0:
        edges = tuple([worst] + [best + 1e-9] * bins)
        counts = [0] * bins
        counts[0] = len(values)
        return SlackHistogram(mode, edges, tuple(counts), worst, best,
                              sum(1 for v in values if v < 0),
                              len(values))

    width = span / bins
    edges = tuple(worst + i * width for i in range(bins + 1))
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - worst) / width))
        counts[index] += 1
    return SlackHistogram(mode, edges, tuple(counts), worst, best,
                          sum(1 for v in values if v < 0), len(values))
