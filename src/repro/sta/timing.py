"""The :class:`TimingAnalyzer` facade.

One object that owns a design's graph and constraints and lazily caches
everything downstream code asks for: clock-tree arrivals, data arrivals,
required times, endpoint slacks, and explicit path-slack evaluation
(Equation (1) and Equation (2) of the paper).  The CPPR engine and every
baseline timer take a ``TimingAnalyzer`` rather than raw graphs so that
shared quantities are computed exactly once.
"""

from __future__ import annotations

from functools import cached_property

from repro.circuit.graph import TimingGraph
from repro.exceptions import AnalysisError
from repro.sta.arrival import ArrivalTimes, propagate_arrivals
from repro.sta.constraints import TimingConstraints
from repro.sta.modes import AnalysisMode
from repro.sta.required import RequiredTimes, propagate_required
from repro.sta.slack import (EndpointSlack, endpoint_slacks, pin_slack,
                             worst_slack)

__all__ = ["TimingAnalyzer"]


class TimingAnalyzer:
    """Cached STA results for one (graph, constraints) pair."""

    def __init__(self, graph: TimingGraph,
                 constraints: TimingConstraints) -> None:
        self.graph = graph
        self.constraints = constraints
        self._edge_delay_cache: dict[tuple[int, int], tuple[float, float]] | None = None

    # ------------------------------------------------------------------
    # Cached propagation results
    # ------------------------------------------------------------------
    @cached_property
    def arrivals(self) -> ArrivalTimes:
        """Early/late data arrivals (forward pass, computed once)."""
        return propagate_arrivals(self.graph)

    @cached_property
    def required(self) -> RequiredTimes:
        """Required times (backward pass, computed once)."""
        return propagate_required(self.graph, self.constraints)

    # ------------------------------------------------------------------
    # Simple queries
    # ------------------------------------------------------------------
    @property
    def clock_tree(self):
        return self.graph.clock_tree

    def endpoint_slacks(self, mode: AnalysisMode | str) -> list[EndpointSlack]:
        """Pre-CPPR slack of every timing test (Definition 1)."""
        mode = AnalysisMode.coerce(mode)
        return endpoint_slacks(self.graph, self.constraints, self.arrivals,
                               mode)

    def worst_endpoint(self, mode: AnalysisMode | str) -> EndpointSlack | None:
        """The most critical tested endpoint pre-CPPR."""
        return worst_slack(self.endpoint_slacks(mode))

    def slack_at_pin(self, pin: int, mode: AnalysisMode | str) -> float | None:
        """Per-pin pre-CPPR slack (arrival vs required)."""
        mode = AnalysisMode.coerce(mode)
        return pin_slack(self.arrivals, self.required, mode, pin)

    # ------------------------------------------------------------------
    # Explicit path evaluation (the oracle used throughout the tests)
    # ------------------------------------------------------------------
    def _edge_delay(self, u: int, v: int) -> tuple[float, float]:
        if self._edge_delay_cache is None:
            cache: dict[tuple[int, int], tuple[float, float]] = {}
            for src in range(self.graph.num_pins):
                for dst, early, late in self.graph.fanout[src]:
                    key = (src, dst)
                    if key in cache:
                        prior_early, prior_late = cache[key]
                        cache[key] = (min(prior_early, early),
                                      max(prior_late, late))
                    else:
                        cache[key] = (early, late)
            self._edge_delay_cache = cache
        try:
            return self._edge_delay_cache[(u, v)]
        except KeyError:
            raise AnalysisError(
                f"no data edge {self.graph.pin_name(u)!r} -> "
                f"{self.graph.pin_name(v)!r}") from None

    def path_delay(self, pins: list[int], mode: AnalysisMode | str) -> float:
        """Sum of this mode's edge delays along an explicit pin sequence.

        The sequence starts at a flip-flop Q pin or a primary input and
        must follow existing data edges.  Launch clock-to-Q delay is *not*
        included here; :meth:`path_pre_cppr_slack` adds it.
        """
        mode = AnalysisMode.coerce(mode)
        total = 0.0
        for u, v in zip(pins, pins[1:]):
            early, late = self._edge_delay(u, v)
            total += mode.edge_delay(early, late)
        return total

    def path_pre_cppr_slack(self, pins: list[int],
                            mode: AnalysisMode | str) -> float:
        """Pre-CPPR slack of an explicit data path (Equation (1)).

        ``pins`` runs from the launch point (FF Q pin or primary input) to
        the capture point (FF D pin or constrained primary output).
        """
        mode = AnalysisMode.coerce(mode)
        graph = self.graph
        tree = graph.clock_tree
        delay = self.path_delay(pins, mode)

        first, last = pins[0], pins[-1]
        launch_ff = graph.ff_of_q_pin.get(first)
        if launch_ff is not None:
            ff = graph.ffs[launch_ff]
            if mode.is_setup:
                launch_at = (tree.at_late(ff.tree_node) + ff.clk_to_q_late)
            else:
                launch_at = (tree.at_early(ff.tree_node) + ff.clk_to_q_early)
        else:
            pi = next((p for p in graph.primary_inputs if p.pin == first),
                      None)
            if pi is None:
                raise AnalysisError(
                    f"path must start at a Q pin or primary input, got "
                    f"{graph.pin_name(first)!r}")
            launch_at = pi.at_late if mode.is_setup else pi.at_early

        arrival = launch_at + delay

        capture_ff = graph.ff_of_d_pin.get(last)
        if capture_ff is not None:
            ff = graph.ffs[capture_ff]
            if mode.is_setup:
                return (tree.at_early(ff.tree_node)
                        + self.constraints.clock_period - ff.t_setup
                        - arrival)
            return arrival - tree.at_late(ff.tree_node) - ff.t_hold

        po = next((p for p in graph.primary_outputs if p.pin == last), None)
        if po is None:
            raise AnalysisError(
                f"path must end at a D pin or primary output, got "
                f"{graph.pin_name(last)!r}")
        rat = po.rat_late if mode.is_setup else po.rat_early
        if rat is None:
            raise AnalysisError(
                f"primary output {po.name!r} has no "
                f"{'setup' if mode.is_setup else 'hold'} requirement")
        return rat - arrival if mode.is_setup else arrival - rat

    def path_credit(self, pins: list[int]) -> float:
        """CPPR credit of an explicit path (Definition 2).

        The credit is the LCA credit for FF-to-FF paths and zero for paths
        that launch from a primary input or capture at a primary output.
        """
        graph = self.graph
        launch_ff = graph.ff_of_q_pin.get(pins[0])
        capture_ff = graph.ff_of_d_pin.get(pins[-1])
        if launch_ff is None or capture_ff is None:
            return 0.0
        tree = graph.clock_tree
        return tree.pair_credit(graph.ffs[launch_ff].tree_node,
                                graph.ffs[capture_ff].tree_node)

    def path_post_cppr_slack(self, pins: list[int],
                             mode: AnalysisMode | str) -> float:
        """Post-CPPR slack of an explicit path (Equation (2))."""
        return (self.path_pre_cppr_slack(pins, mode)
                + self.path_credit(pins))
