"""Analysis modes: the setup/hold duality.

Every algorithm in the paper comes in a setup and a hold flavour that
differ only in which delay bound they propagate (late vs early), which
direction "more critical" points (larger vs smaller arrival), and the
slack formula at the capture pin.  :class:`AnalysisMode` centralizes those
choices so each algorithm is written once.
"""

from __future__ import annotations

import enum

__all__ = ["AnalysisMode"]


class AnalysisMode(enum.Enum):
    """Setup (max/late) or hold (min/early) analysis."""

    SETUP = "setup"
    HOLD = "hold"

    @property
    def is_setup(self) -> bool:
        return self is AnalysisMode.SETUP

    @property
    def empty_time(self) -> float:
        """Identity element for this mode's arrival merge.

        Setup propagates the *latest* arrival, so an absent arrival is
        ``-inf``; hold propagates the earliest, so absent is ``+inf``.
        """
        return float("-inf") if self.is_setup else float("inf")

    def prefer(self, candidate: float, incumbent: float) -> bool:
        """True when ``candidate`` is more pessimistic than ``incumbent``.

        The data-path propagation keeps the most pessimistic arrival:
        the largest for setup, the smallest for hold.
        """
        if self.is_setup:
            return candidate > incumbent
        return candidate < incumbent

    def edge_delay(self, early: float, late: float) -> float:
        """The delay bound this mode propagates along a data edge."""
        return late if self.is_setup else early

    @classmethod
    def coerce(cls, value: "AnalysisMode | str") -> "AnalysisMode":
        """Accept a mode or its string name (``"setup"``/``"hold"``)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value.lower())
        except (ValueError, AttributeError):
            raise ValueError(
                f"unknown analysis mode {value!r}; expected 'setup' or "
                f"'hold'") from None
