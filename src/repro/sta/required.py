"""Required-arrival-time propagation (backward pass).

Required times turn endpoint constraints into per-pin bounds: a setup test
requires the late arrival at the endpoint to be no later than
``at_early(capture clock) + T_clk - T_setup``; a hold test requires the
early arrival to be no earlier than ``at_late(capture clock) + T_hold``.
Propagating those limits backward yields per-pin pre-CPPR slacks, which
the reports and the block-based baseline's pruning use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.graph import TimingGraph
from repro.sta.constraints import TimingConstraints

__all__ = ["RequiredTimes", "propagate_required"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(slots=True)
class RequiredTimes:
    """Per-pin required times.

    ``late[u]`` bounds the latest acceptable late arrival (setup);
    ``early[u]`` bounds the earliest acceptable early arrival (hold).
    Pins that reach no constrained endpoint hold the identities ``+inf``
    and ``-inf`` respectively.
    """

    early: list[float]
    late: list[float]

    def late_at(self, pin: int) -> float | None:
        value = self.late[pin]
        return None if value == _POS_INF else value

    def early_at(self, pin: int) -> float | None:
        value = self.early[pin]
        return None if value == _NEG_INF else value


def propagate_required(graph: TimingGraph,
                       constraints: TimingConstraints) -> RequiredTimes:
    """Compute required times for every data pin of ``graph``.

    Endpoint seeds follow the paper's Equation (1); primary outputs use
    their annotated required times when present.  The backward pass takes
    the tightest requirement across fanout:
    ``rat_late(u) = min_v rat_late(v) - delay_late(u, v)`` and
    ``rat_early(u) = max_v rat_early(v) - delay_early(u, v)``.
    """
    n = graph.num_pins
    rat_early = [_NEG_INF] * n
    rat_late = [_POS_INF] * n

    tree = graph.clock_tree
    for ff in graph.ffs:
        capture_early = tree.at_early(ff.tree_node)
        capture_late = tree.at_late(ff.tree_node)
        rat_late[ff.d_pin] = min(
            rat_late[ff.d_pin],
            capture_early + constraints.clock_period - ff.t_setup)
        rat_early[ff.d_pin] = max(rat_early[ff.d_pin],
                                  capture_late + ff.t_hold)

    for po in graph.primary_outputs:
        if po.rat_late is not None:
            rat_late[po.pin] = min(rat_late[po.pin], po.rat_late)
        if po.rat_early is not None:
            rat_early[po.pin] = max(rat_early[po.pin], po.rat_early)

    for u in reversed(graph.topo_order):
        for v, delay_early, delay_late in graph.fanout[u]:
            if rat_late[v] != _POS_INF:
                candidate = rat_late[v] - delay_late
                if candidate < rat_late[u]:
                    rat_late[u] = candidate
            if rat_early[v] != _NEG_INF:
                candidate = rat_early[v] - delay_early
                if candidate > rat_early[u]:
                    rat_early[u] = candidate

    return RequiredTimes(rat_early, rat_late)
