"""Static timing analysis substrate.

This package implements the conventional early/late STA machinery the
paper builds on: arrival-time propagation, required times, pre-CPPR setup
and hold slacks (paper Definition 1), and a :class:`TimingAnalyzer` facade
that caches all of it per design.
"""

from repro.sta.arrival import ArrivalTimes, propagate_arrivals
from repro.sta.constraints import TimingConstraints
from repro.sta.modes import AnalysisMode
from repro.sta.required import RequiredTimes, propagate_required
from repro.sta.slack import EndpointSlack, endpoint_slacks, worst_slack
from repro.sta.timing import TimingAnalyzer

__all__ = [
    "AnalysisMode",
    "ArrivalTimes",
    "EndpointSlack",
    "RequiredTimes",
    "TimingAnalyzer",
    "TimingConstraints",
    "endpoint_slacks",
    "propagate_arrivals",
    "propagate_required",
    "worst_slack",
]
