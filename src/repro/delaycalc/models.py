"""Cell timing models: per-arc delay/slew tables, caps, and derates."""

from __future__ import annotations

from dataclasses import dataclass

from repro.delaycalc.lut import LookupTable2D
from repro.exceptions import TimingConstraintError
from repro.library.cells import StandardCellLibrary

__all__ = ["ArcTiming", "CellTiming", "Derates", "FlipFlopTiming",
           "TimingLibrary", "default_timing"]


@dataclass(frozen=True, slots=True)
class Derates:
    """On-chip-variation multipliers applied to every nominal delay.

    ``early < 1 < late`` models the uncertainty band; the early/late gap
    on shared clock segments is exactly the pessimism CPPR removes, so
    these two numbers set the size of every credit in a timed design.
    """

    early: float = 0.9
    late: float = 1.12

    def __post_init__(self) -> None:
        if not 0 < self.early <= 1.0 <= self.late:
            raise TimingConstraintError(
                f"derates must satisfy 0 < early <= 1 <= late, got "
                f"({self.early}, {self.late})")

    def bounds(self, nominal: float) -> tuple[float, float]:
        """(early, late) delay bounds of a nominal value."""
        return nominal * self.early, nominal * self.late


@dataclass(frozen=True, slots=True)
class ArcTiming:
    """One input-to-output arc: delay and output-slew tables."""

    delay: LookupTable2D
    output_slew: LookupTable2D


@dataclass(frozen=True, slots=True)
class CellTiming:
    """Timing of one combinational cell.

    ``rise[i]`` / ``fall[i]`` time the arc from input ``i`` to the
    output's rise / fall; ``input_caps[i]`` is the load input ``i``
    presents to its driving net.
    """

    rise: tuple[ArcTiming, ...]
    fall: tuple[ArcTiming, ...]
    input_caps: tuple[float, ...]

    def __post_init__(self) -> None:
        if not (len(self.rise) == len(self.fall)
                == len(self.input_caps)):
            raise TimingConstraintError(
                "cell timing arc/cap counts are inconsistent")


@dataclass(frozen=True, slots=True)
class FlipFlopTiming:
    """Timing of one sequential cell."""

    clk_to_q_rise: ArcTiming
    clk_to_q_fall: ArcTiming
    d_cap: float
    ck_cap: float


class TimingLibrary:
    """Per-cell-name timing models plus the global derates."""

    def __init__(self, name: str = "timing",
                 derates: Derates | None = None) -> None:
        self.name = name
        self.derates = derates or Derates()
        self._cells: dict[str, CellTiming] = {}
        self._ffs: dict[str, FlipFlopTiming] = {}

    def add_cell(self, cell_name: str, timing: CellTiming) -> None:
        self._cells[cell_name] = timing

    def add_flip_flop(self, cell_name: str,
                      timing: FlipFlopTiming) -> None:
        self._ffs[cell_name] = timing

    def cell(self, cell_name: str) -> CellTiming:
        try:
            return self._cells[cell_name]
        except KeyError:
            raise KeyError(
                f"timing library {self.name!r} has no model for "
                f"{cell_name!r}") from None

    def flip_flop(self, cell_name: str) -> FlipFlopTiming:
        try:
            return self._ffs[cell_name]
        except KeyError:
            raise KeyError(
                f"timing library {self.name!r} has no flip-flop model "
                f"for {cell_name!r}") from None


def default_timing(library: StandardCellLibrary,
                   derates: Derates | None = None) -> TimingLibrary:
    """Derive NLDM tables for every cell of a standard library.

    The generated surfaces are affine in (slew, load), anchored at each
    cell's fixed library delay: at the reference point (slew 0.05,
    load 1.0) the nominal delay equals the library's late value divided
    by the late derate, so the timed flow and the fixed-delay flow stay
    in the same delay regime while loads and slews modulate around it.
    """
    timing = TimingLibrary(f"{library.name}-nldm", derates)
    reference_slew, reference_load = 0.05, 1.0

    def arc(base_late: float) -> ArcTiming:
        nominal = base_late / timing.derates.late
        slew_factor = 0.35 * nominal
        load_factor = 0.18 * nominal
        anchored = (nominal - slew_factor * reference_slew
                    - load_factor * reference_load)
        return ArcTiming(
            delay=LookupTable2D.affine(anchored, slew_factor,
                                       load_factor),
            output_slew=LookupTable2D.affine(0.02 + 0.25 * nominal,
                                             0.30, 0.04 * nominal))

    for cell_name in library:
        if library.is_flip_flop(cell_name):
            ff = library.flip_flop(cell_name)
            timing.add_flip_flop(cell_name, FlipFlopTiming(
                clk_to_q_rise=arc(ff.clk_to_q_rise[1]),
                clk_to_q_fall=arc(ff.clk_to_q_fall[1]),
                d_cap=0.9, ck_cap=0.6))
            continue
        cell = library.cell(cell_name)
        timing.add_cell(cell_name, CellTiming(
            rise=tuple(arc(late) for _early, late in cell.rise_delays),
            fall=tuple(arc(late) for _early, late in cell.fall_delays),
            input_caps=tuple(0.8 + 0.1 * i
                             for i in range(cell.num_inputs))))
    return timing
