"""The delay calculator: slews and loads over a parsed Verilog module.

Walks instances in topological order (clock network first — it is
upstream of every launch), computing for every net a per-transition
(rise/fall) worst-case slew, and for every cell arc a nominal delay from
its NLDM table at (driving input slew, driven net load).  The global
:class:`~repro.delaycalc.models.Derates` turn nominal values into the
(early, late) bounds the analysis substrate consumes.

Slew semantics follow the worst-slew convention: a net's slew is the
maximum over the arcs that can drive the corresponding output
transition (pessimistic, simple, standard for a first-order
calculator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.delaycalc.models import TimingLibrary
from repro.delaycalc.wire import WireLoadModel
from repro.exceptions import FormatError
from repro.io.verilog import VerilogInstance, VerilogModule
from repro.library.cells import StandardCellLibrary

__all__ = ["CalculatedDesignTiming", "calculate_timing"]


@dataclass(slots=True)
class CalculatedDesignTiming:
    """Everything the timed flow needs to build the design.

    * ``arc_delays[(instance, input_index, transition)]`` — (early, late)
      delay of that cell arc, transition in ``{"r", "f"}`` = the *output*
      transition;
    * ``clk_to_q[(instance, transition)]`` — flip-flop launch arcs;
    * ``net_loads[net]`` — the load each driver saw (for reports/tests);
    * ``net_slews[(net, transition)]`` — computed worst slews.
    """

    arc_delays: dict[tuple[str, int, str], tuple[float, float]] = field(
        default_factory=dict)
    clk_to_q: dict[tuple[str, str], tuple[float, float]] = field(
        default_factory=dict)
    net_loads: dict[str, float] = field(default_factory=dict)
    net_slews: dict[tuple[str, str], float] = field(default_factory=dict)


def _instance_topo_order(module: VerilogModule,
                         library: StandardCellLibrary
                         ) -> list[VerilogInstance]:
    """Instances ordered so every driver precedes its combinational
    sinks; flip-flops cut the dependency (their Q is a source)."""
    by_output_net: dict[str, VerilogInstance] = {}
    for instance in module.instances:
        port = "Q" if library.is_flip_flop(instance.cell) else "Y"
        net = instance.connections.get(port)
        if net is not None:
            by_output_net[net] = instance

    order: list[VerilogInstance] = []
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def visit(instance: VerilogInstance) -> None:
        mark = state.get(instance.name)
        if mark == 1:
            return
        if mark == 0:
            raise FormatError(
                f"combinational loop through instance {instance.name!r}")
        state[instance.name] = 0
        if not library.is_flip_flop(instance.cell):
            for port, net in instance.connections.items():
                if port == "Y":
                    continue
                driver = by_output_net.get(net)
                if driver is not None and not \
                        library.is_flip_flop(driver.cell):
                    visit(driver)
        state[instance.name] = 1
        order.append(instance)

    for instance in module.instances:
        visit(instance)
    return order


def calculate_timing(module: VerilogModule,
                     library: StandardCellLibrary,
                     timing: TimingLibrary,
                     wire_model: WireLoadModel | None = None,
                     input_slew: float = 0.05,
                     output_port_cap: float = 1.0
                     ) -> CalculatedDesignTiming:
    """Compute per-arc (early, late) delays for every instance."""
    wire_model = wire_model or WireLoadModel()
    result = CalculatedDesignTiming()
    derates = timing.derates

    # ------------------------------------------------------------------
    # Net loads: wire estimate + pin caps of every sink.
    # ------------------------------------------------------------------
    sink_caps: dict[str, list[float]] = {}
    for instance in module.instances:
        is_ff = library.is_flip_flop(instance.cell)
        for port, net in instance.connections.items():
            if port in ("Y", "Q"):
                continue
            if is_ff:
                model = timing.flip_flop(instance.cell)
                cap = model.ck_cap if port == "CK" else model.d_cap
            else:
                try:
                    input_index = int(port[1:])
                except ValueError:
                    raise FormatError(
                        f"instance {instance.name!r}: unexpected port "
                        f"{port!r}") from None
                cap = timing.cell(instance.cell).input_caps[input_index]
            sink_caps.setdefault(net, []).append(cap)
    for port in module.outputs:
        sink_caps.setdefault(port, []).append(output_port_cap)

    def load_of(net: str) -> float:
        load = wire_model.net_load(sink_caps.get(net, []))
        result.net_loads[net] = load
        return load

    # ------------------------------------------------------------------
    # Slew propagation + arc delays, in instance topological order.
    # ------------------------------------------------------------------
    slews = result.net_slews
    for port in module.inputs:
        slews[(port, "r")] = input_slew
        slews[(port, "f")] = input_slew

    def slew_at(net: str, transition: str) -> float:
        return slews.get((net, transition), input_slew)

    for instance in _instance_topo_order(module, library):
        if library.is_flip_flop(instance.cell):
            model = timing.flip_flop(instance.cell)
            q_net = instance.connections.get("Q")
            ck_net = instance.connections["CK"]
            load = load_of(q_net) if q_net is not None else 0.0
            ck_slew = slew_at(ck_net, "r")  # rising-edge triggered
            for transition, arc in (("r", model.clk_to_q_rise),
                                    ("f", model.clk_to_q_fall)):
                nominal = arc.delay.lookup(ck_slew, load)
                result.clk_to_q[(instance.name, transition)] = \
                    derates.bounds(nominal)
                if q_net is not None:
                    key = (q_net, transition)
                    slew = arc.output_slew.lookup(ck_slew, load)
                    slews[key] = max(slews.get(key, 0.0), slew)
            continue

        cell = library.cell(instance.cell)
        model = timing.cell(instance.cell)
        out_net = instance.connections.get("Y")
        load = load_of(out_net) if out_net is not None else 0.0
        for out_transition, arcs in (
                ("r", cell.arcs_to_output_rise()),
                ("f", cell.arcs_to_output_fall())):
            for input_index, input_transition, _fixed in arcs:
                in_net = instance.connections[f"A{input_index}"]
                in_slew = slew_at(in_net, input_transition)
                arc_model = (model.rise if out_transition == "r"
                             else model.fall)[input_index]
                nominal = arc_model.delay.lookup(in_slew, load)
                key = (instance.name, input_index, out_transition)
                bounds = derates.bounds(nominal)
                # Non-unate cells reach this arc twice (once per input
                # transition); keep the wider bound.
                if key in result.arc_delays:
                    prior = result.arc_delays[key]
                    bounds = (min(prior[0], bounds[0]),
                              max(prior[1], bounds[1]))
                result.arc_delays[key] = bounds
                if out_net is not None:
                    skey = (out_net, out_transition)
                    slew = arc_model.output_slew.lookup(in_slew, load)
                    slews[skey] = max(slews.get(skey, 0.0), slew)
    return result
