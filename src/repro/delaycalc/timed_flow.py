"""The timed front-end: Verilog + SDC + NLDM timing -> analyzable design.

Same pipeline as :mod:`repro.io.flow` (clock-network recovery, port
annotation, rise/fall expansion), except every arc delay — including the
clock buffers' — comes from the delay calculator instead of the
library's fixed values.  The early/late spread on each clock buffer, and
therefore every CPPR credit in the design, emerges from the OCV derates.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.delaycalc.calc import CalculatedDesignTiming, calculate_timing
from repro.delaycalc.models import TimingLibrary
from repro.delaycalc.wire import WireLoadModel
from repro.exceptions import FormatError
from repro.io.flow import _trace_clock_network, elaborate_design
from repro.io.sdc import SdcConstraints, read_sdc
from repro.io.verilog import VerilogModule, read_verilog
from repro.library.cells import StandardCellLibrary
from repro.sta.constraints import TimingConstraints
from repro.transitions.netlist import RiseFallDesign

__all__ = ["elaborate_timed_design", "read_timed_design"]


def elaborate_timed_design(module: VerilogModule, sdc: SdcConstraints,
                           library: StandardCellLibrary,
                           timing: TimingLibrary,
                           wire_model: WireLoadModel | None = None,
                           input_slew: float = 0.05
                           ) -> tuple[RiseFallDesign, TimingConstraints,
                                      CalculatedDesignTiming]:
    """Build a design whose delays come from the calculator.

    Returns the expanded design, the constraints, and the calculated
    timing (loads/slews/arc delays) for inspection.
    """
    if sdc.clock_port is None or sdc.clock_period is None:
        raise FormatError("SDC must contain create_clock")
    _, clock_cells = _trace_clock_network(module, library, sdc.clock_port)
    clock_cell_names = {instance.name for instance in clock_cells}
    calculated = calculate_timing(module, library, timing, wire_model,
                                  input_slew)

    # Every instance gets a cell clone carrying its calculated delays;
    # the shared elaboration pipeline does the rest.
    cell_overrides: dict = {}
    for instance in module.instances:
        name = instance.name
        if name in clock_cell_names or not library.is_flip_flop(
                instance.cell):
            base = library.cell(instance.cell)
            cell_overrides[name] = replace(
                base,
                rise_delays=tuple(
                    calculated.arc_delays[(name, i, "r")]
                    for i in range(base.num_inputs)),
                fall_delays=tuple(
                    calculated.arc_delays[(name, i, "f")]
                    for i in range(base.num_inputs)))
        else:
            base = library.flip_flop(instance.cell)
            cell_overrides[name] = replace(
                base,
                clk_to_q_rise=calculated.clk_to_q[(name, "r")],
                clk_to_q_fall=calculated.clk_to_q[(name, "f")])

    design, constraints = elaborate_design(
        module, sdc, library, cell_overrides=cell_overrides)
    return design, constraints, calculated


def read_timed_design(verilog_path: str | os.PathLike,
                      sdc_path: str | os.PathLike,
                      library: StandardCellLibrary,
                      timing: TimingLibrary,
                      wire_model: WireLoadModel | None = None
                      ) -> tuple[RiseFallDesign, TimingConstraints,
                                 CalculatedDesignTiming]:
    """File-based entry point for the timed flow."""
    module = read_verilog(str(verilog_path))
    sdc = read_sdc(str(sdc_path))
    return elaborate_timed_design(module, sdc, library, timing,
                                  wire_model)
