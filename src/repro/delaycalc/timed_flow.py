"""The timed front-end: Verilog + SDC + NLDM timing -> analyzable design.

Same pipeline as :mod:`repro.io.flow` (clock-network recovery, port
annotation, rise/fall expansion), except every arc delay — including the
clock buffers' — comes from the delay calculator instead of the
library's fixed values.  The early/late spread on each clock buffer, and
therefore every CPPR credit in the design, emerges from the OCV derates.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.delaycalc.calc import CalculatedDesignTiming, calculate_timing
from repro.delaycalc.models import TimingLibrary
from repro.delaycalc.wire import WireLoadModel
from repro.exceptions import FormatError
from repro.io.flow import _FF_REQUIRED_PORTS, _net_drivers, \
    _trace_clock_network
from repro.io.sdc import SdcConstraints, read_sdc
from repro.io.verilog import VerilogModule, read_verilog
from repro.library.cells import StandardCellLibrary
from repro.sta.constraints import TimingConstraints
from repro.transitions.netlist import RiseFallDesign, RiseFallNetlist

__all__ = ["elaborate_timed_design", "read_timed_design"]


def elaborate_timed_design(module: VerilogModule, sdc: SdcConstraints,
                           library: StandardCellLibrary,
                           timing: TimingLibrary,
                           wire_model: WireLoadModel | None = None,
                           input_slew: float = 0.05
                           ) -> tuple[RiseFallDesign, TimingConstraints,
                                      CalculatedDesignTiming]:
    """Build a design whose delays come from the calculator.

    Returns the expanded design, the constraints, and the calculated
    timing (loads/slews/arc delays) for inspection.
    """
    if sdc.clock_port is None or sdc.clock_period is None:
        raise FormatError("SDC must contain create_clock")
    drivers = _net_drivers(module, library)
    clock_nets, clock_cells = _trace_clock_network(module, library,
                                                   sdc.clock_port)
    clock_cell_names = {instance.name for instance in clock_cells}
    calculated = calculate_timing(module, library, timing, wire_model,
                                  input_slew)

    netlist = RiseFallNetlist(module.name, library)
    netlist.set_clock_root(sdc.clock_port)

    node_of_net = {sdc.clock_port: sdc.clock_port}
    for instance in clock_cells:
        parent = node_of_net[instance.connections["A0"]]
        # A rising-edge clock propagates through non-inverting buffers
        # as output-rise arcs.
        early, late = calculated.arc_delays[(instance.name, 0, "r")]
        netlist.add_clock_buffer(instance.name, parent, early, late)
        node_of_net[instance.connections["Y"]] = instance.name

    for port in module.inputs:
        if port == sdc.clock_port:
            continue
        if port in clock_nets:
            raise FormatError(
                f"input {port!r} is part of the clock network but is "
                f"not the SDC clock port")
        early, late = sdc.input_arrival(port)
        netlist.add_primary_input(port, rise_at=(early, late),
                                  fall_at=(early, late))
    for port in module.outputs:
        rat_early, rat_late = sdc.output_required(port)
        netlist.add_primary_output(port, rat_early, rat_late)

    for instance in module.instances:
        if instance.name in clock_cell_names:
            continue
        if library.is_flip_flop(instance.cell):
            for port in _FF_REQUIRED_PORTS:
                if port not in instance.connections:
                    raise FormatError(
                        f"flip-flop {instance.name!r} is missing its "
                        f"{port} connection")
            ck_net = instance.connections["CK"]
            if ck_net not in clock_nets:
                raise FormatError(
                    f"flip-flop {instance.name!r} clock pin is driven "
                    f"by {ck_net!r}, which is not part of the clock "
                    f"network")
            base = library.flip_flop(instance.cell)
            timed_cell = replace(
                base,
                clk_to_q_rise=calculated.clk_to_q[(instance.name, "r")],
                clk_to_q_fall=calculated.clk_to_q[(instance.name, "f")])
            netlist.add_flipflop_cell(instance.name, timed_cell)
            netlist.connect_clock(instance.name, node_of_net[ck_net],
                                  0.0, 0.0)
        else:
            base = library.cell(instance.cell)
            timed_cell = replace(
                base,
                rise_delays=tuple(
                    calculated.arc_delays[(instance.name, i, "r")]
                    for i in range(base.num_inputs)),
                fall_delays=tuple(
                    calculated.arc_delays[(instance.name, i, "f")]
                    for i in range(base.num_inputs)))
            netlist.add_gate_cell(instance.name, timed_cell)
            for i in range(base.num_inputs):
                if f"A{i}" not in instance.connections:
                    raise FormatError(
                        f"gate {instance.name!r} ({base.name}) is "
                        f"missing input A{i}")

    def driver_ref(net: str) -> str:
        try:
            driver = drivers[net]
        except KeyError:
            raise FormatError(f"net {net!r} has no driver") from None
        if driver[0] == "port":
            return driver[1]
        _kind, instance_name, port = driver
        return f"{instance_name}/{port}"

    for instance in module.instances:
        if instance.name in clock_cell_names:
            continue
        for port, net in instance.connections.items():
            if port in ("Y", "Q", "CK"):
                continue
            netlist.connect(driver_ref(net), f"{instance.name}/{port}")
    for port in module.outputs:
        netlist.connect(driver_ref(port), port)

    return (netlist.elaborate(), TimingConstraints(sdc.clock_period),
            calculated)


def read_timed_design(verilog_path: str | os.PathLike,
                      sdc_path: str | os.PathLike,
                      library: StandardCellLibrary,
                      timing: TimingLibrary,
                      wire_model: WireLoadModel | None = None
                      ) -> tuple[RiseFallDesign, TimingConstraints,
                                 CalculatedDesignTiming]:
    """File-based entry point for the timed flow."""
    module = read_verilog(str(verilog_path))
    sdc = read_sdc(str(sdc_path))
    return elaborate_timed_design(module, sdc, library, timing,
                                  wire_model)
