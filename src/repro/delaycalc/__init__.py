"""Delay calculation: slews, loads, lookup tables, OCV derates.

The paper's problem statement begins with "a circuit graph with updated
delay values" — some delay calculator produced those values first.  This
package is that substrate: a liberty-style non-linear delay model
(delay and output slew as 2-D lookup tables over input slew and output
load), a fanout-based wire load model, early/late on-chip-variation
derates, and a calculator that walks a parsed Verilog module in
topological order annotating every cell arc.

The output plugs straight into the rise/fall expansion: the *timed flow*
(:func:`~repro.delaycalc.timed_flow.read_timed_design`) is a drop-in
alternative to :func:`repro.io.flow.read_design` where arc delays come
from the NLDM tables instead of the library's fixed values — including
the clock buffers, whose early/late spread (and hence every CPPR credit)
then emerges from the derates rather than being hand-annotated.
"""

from repro.delaycalc.calc import CalculatedDesignTiming, calculate_timing
from repro.delaycalc.lut import LookupTable2D
from repro.delaycalc.models import (ArcTiming, CellTiming, Derates,
                                    FlipFlopTiming, TimingLibrary,
                                    default_timing)
from repro.delaycalc.timed_flow import elaborate_timed_design, \
    read_timed_design
from repro.delaycalc.wire import WireLoadModel

__all__ = [
    "ArcTiming",
    "CalculatedDesignTiming",
    "CellTiming",
    "Derates",
    "FlipFlopTiming",
    "LookupTable2D",
    "TimingLibrary",
    "WireLoadModel",
    "calculate_timing",
    "default_timing",
    "elaborate_timed_design",
    "read_timed_design",
]
