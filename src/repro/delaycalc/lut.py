"""2-D lookup tables with bilinear interpolation (NLDM-style).

Liberty's non-linear delay model tabulates delay and output slew over
(input slew, output load).  Queries inside the grid interpolate
bilinearly; queries outside clamp to the edge and extrapolate linearly
along the remaining axis — the conventional, monotonicity-preserving
choice for well-formed tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TimingConstraintError

__all__ = ["LookupTable2D"]


def _bracket(axis: tuple[float, ...], value: float) -> tuple[int, float]:
    """Segment index and interpolation fraction for ``value`` on ``axis``.

    Values outside the axis clamp to the first/last segment and produce
    fractions outside [0, 1] — linear extrapolation.
    """
    if len(axis) == 1:
        return 0, 0.0
    index = 0
    for i in range(len(axis) - 1):
        index = i
        if value < axis[i + 1]:
            break
    span = axis[index + 1] - axis[index]
    return index, (value - axis[index]) / span


@dataclass(frozen=True, slots=True)
class LookupTable2D:
    """``values[i][j]`` at ``(slew_axis[i], load_axis[j])``."""

    slew_axis: tuple[float, ...]
    load_axis: tuple[float, ...]
    values: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if not self.slew_axis or not self.load_axis:
            raise TimingConstraintError("lookup table axes must be "
                                        "non-empty")
        for axis in (self.slew_axis, self.load_axis):
            if any(b <= a for a, b in zip(axis, axis[1:])):
                raise TimingConstraintError(
                    f"lookup table axis must be strictly increasing, "
                    f"got {axis}")
        if len(self.values) != len(self.slew_axis):
            raise TimingConstraintError(
                f"table has {len(self.values)} rows for "
                f"{len(self.slew_axis)} slew points")
        for row in self.values:
            if len(row) != len(self.load_axis):
                raise TimingConstraintError(
                    f"table row has {len(row)} entries for "
                    f"{len(self.load_axis)} load points")

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation with clamped-edge extrapolation."""
        i, fi = _bracket(self.slew_axis, slew)
        j, fj = _bracket(self.load_axis, load)
        if len(self.slew_axis) == 1 and len(self.load_axis) == 1:
            return self.values[0][0]
        if len(self.slew_axis) == 1:
            v0, v1 = self.values[0][j], self.values[0][j + 1]
            return v0 + fj * (v1 - v0)
        if len(self.load_axis) == 1:
            v0, v1 = self.values[i][0], self.values[i + 1][0]
            return v0 + fi * (v1 - v0)
        v00 = self.values[i][j]
        v01 = self.values[i][j + 1]
        v10 = self.values[i + 1][j]
        v11 = self.values[i + 1][j + 1]
        top = v00 + fj * (v01 - v00)
        bottom = v10 + fj * (v11 - v10)
        return top + fi * (bottom - top)

    @classmethod
    def affine(cls, base: float, slew_factor: float, load_factor: float,
               slew_axis: tuple[float, ...] = (0.01, 0.1, 0.4),
               load_axis: tuple[float, ...] = (0.5, 2.0, 8.0)
               ) -> "LookupTable2D":
        """A table sampling ``base + slew_factor*s + load_factor*c``.

        Affine surfaces interpolate exactly, which makes generated
        libraries easy to hand-check in tests.
        """
        values = tuple(
            tuple(base + slew_factor * s + load_factor * c
                  for c in load_axis)
            for s in slew_axis)
        return cls(slew_axis, load_axis, values)
