"""Fanout-based wire load model (pre-layout estimation)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TimingConstraintError

__all__ = ["WireLoadModel"]


@dataclass(frozen=True, slots=True)
class WireLoadModel:
    """Estimated wire capacitance as a function of fanout.

    ``cap = base_cap + cap_per_fanout * fanout`` — the classic
    pre-layout wire load table collapsed to a line.  The net's total
    load is this wire cap plus the sum of sink pin caps.
    """

    base_cap: float = 0.2
    cap_per_fanout: float = 0.3

    def __post_init__(self) -> None:
        if self.base_cap < 0 or self.cap_per_fanout < 0:
            raise TimingConstraintError(
                "wire load coefficients must be non-negative")

    def wire_cap(self, fanout: int) -> float:
        """Estimated wire capacitance for a net with ``fanout`` sinks."""
        if fanout < 0:
            raise TimingConstraintError("fanout must be non-negative")
        return self.base_cap + self.cap_per_fanout * fanout

    def net_load(self, sink_caps: list[float]) -> float:
        """Total load a driver sees: wire estimate + pin caps."""
        return self.wire_cap(len(sink_caps)) + sum(sink_caps)
