"""repro — Common Path Pessimism Removal for static timing analysis.

A from-scratch Python implementation of *"A Provably Good and Practically
Efficient Algorithm for Common Path Pessimism Removal in Large Designs"*
(Guo, Huang, Lin — DAC 2021), together with the full substrate it needs:
a netlist/timing-graph model, a conventional STA engine, three baseline
CPPR timer architectures, synthetic workload generation, and file I/O.

Quickstart::

    from repro import (Netlist, TimingConstraints, TimingAnalyzer,
                       CpprEngine)

    netlist = Netlist("demo")
    netlist.set_clock_root("clk")
    ...                              # build the design
    graph = netlist.elaborate()
    analyzer = TimingAnalyzer(graph, TimingConstraints(clock_period=5.0))
    engine = CpprEngine(analyzer)
    for path in engine.top_paths(k=10, mode="setup"):
        print(path.slack, path.pins)
"""

from repro.baselines import (BlockBasedTimer, BranchBoundTimer,
                             ExhaustiveTimer, PairEnumTimer)
from repro.circuit import (ClockTree, Netlist, Pin, PinKind, TimingGraph,
                           validate_graph)
from repro.cppr import (CpprEngine, CpprOptions, PathFamily, TimingPath,
                        endpoint_paths, format_path, format_path_report,
                        pair_paths)
from repro.exceptions import (AnalysisError, CircuitStructureError,
                              DegradedResultWarning, ExecutionError,
                              FormatError, ReproError, SourceLocation,
                              TimingConstraintError)
from repro.io import (ImportedDesign, detect_format, load_design,
                      load_design_json, register_format, save_design,
                      save_design_json)
from repro.pipeline import CpprSession
from repro.sta import AnalysisMode, TimingAnalyzer, TimingConstraints
from repro.sta.incremental import DelayUpdate
from repro.workloads import (RandomDesignSpec, build_design, design_names,
                             design_statistics, random_design)

__version__ = "1.0.0"

__all__ = [
    "AnalysisMode",
    "AnalysisError",
    "BlockBasedTimer",
    "BranchBoundTimer",
    "CircuitStructureError",
    "ClockTree",
    "CpprEngine",
    "CpprOptions",
    "CpprSession",
    "DegradedResultWarning",
    "DelayUpdate",
    "ExecutionError",
    "ExhaustiveTimer",
    "FormatError",
    "ImportedDesign",
    "Netlist",
    "PairEnumTimer",
    "PathFamily",
    "Pin",
    "PinKind",
    "RandomDesignSpec",
    "ReproError",
    "SourceLocation",
    "TimingAnalyzer",
    "TimingConstraintError",
    "TimingConstraints",
    "TimingGraph",
    "TimingPath",
    "__version__",
    "build_design",
    "design_names",
    "design_statistics",
    "detect_format",
    "endpoint_paths",
    "format_path",
    "format_path_report",
    "load_design",
    "load_design_json",
    "pair_paths",
    "random_design",
    "register_format",
    "save_design",
    "save_design_json",
    "validate_graph",
]
