"""Wall-clock and peak-memory measurement.

Peak memory uses :mod:`tracemalloc`, the interpreter-level analogue of
the RSS numbers in the paper's Table IV.  Tracing slows allocation-heavy
code severalfold, so runtime and memory are measured by *separate* runs:
``measure_runtime`` never enables tracing, ``measure_memory`` always
does, and ``measure_full`` combines the two for harnesses that want both
(at the cost of running the workload twice).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Measurement", "measure_full", "measure_memory",
           "measure_runtime"]


@dataclass(frozen=True, slots=True)
class Measurement:
    """Result of measuring one callable.

    ``seconds`` and/or ``peak_mib`` are ``None`` when that dimension was
    not measured; ``value`` is the callable's return value (from the
    runtime run when both were taken).
    """

    value: Any
    seconds: float | None = None
    peak_mib: float | None = None


def measure_runtime(fn: Callable[[], Any],
                    repeat: int = 1) -> Measurement:
    """Run ``fn`` ``repeat`` times, reporting the fastest wall time."""
    if repeat < 1:
        raise ValueError(f"repeat must be at least 1, got {repeat}")
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return Measurement(value=value, seconds=best)


def measure_memory(fn: Callable[[], Any]) -> Measurement:
    """Run ``fn`` once under tracemalloc, reporting peak heap in MiB.

    If tracing was already active (e.g. nested measurement), the peak is
    measured relative to the current traced size, and the global peak is
    reset again on exit.  tracemalloc keeps a *single* global peak, so
    each measurement window owns its own peak reading: an enclosing
    window's later reading starts from the traced size at the point the
    nested measurement finished — it does not inherit (double-count) the
    nested call's transient peak, nor does it retain any peak recorded
    before the nested call.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    baseline, _prior_peak = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    try:
        value = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
        else:
            # Restore a fresh peak window for the enclosing measurement:
            # without this, the parent's next reading would report this
            # nested call's transient peak as its own.
            tracemalloc.reset_peak()
    return Measurement(value=value,
                       peak_mib=max(0.0, (peak - baseline)) / (1024 * 1024))


def measure_full(fn: Callable[[], Any], repeat: int = 1) -> Measurement:
    """Measure runtime and peak memory with two independent runs."""
    runtime = measure_runtime(fn, repeat=repeat)
    memory = measure_memory(fn)
    return Measurement(value=runtime.value, seconds=runtime.seconds,
                       peak_mib=memory.peak_mib)
