"""Measurement and logging utilities used by benchmarks and examples."""

from repro.utils.measure import (Measurement, measure_memory,
                                 measure_runtime, measure_full)

__all__ = ["Measurement", "measure_full", "measure_memory",
           "measure_runtime"]
