"""Typed, labeled metrics riding the collector's counter substrate.

The PR 1 collector gives us exactly one process-safe, executor-aware
aggregation primitive: integer counters merged in task order.  Rather
than bolt a second aggregation pipeline next to it, labeled metrics are
*encoded into counter names*::

    cache.lookup{cache=pipeline.family,outcome=hit}
    replay.dirty_pins{bucket=le64,corner=-}

Label keys are sorted inside the braces, so an encoded name is a
canonical key: the same metric sample encodes identically on every
thread, process and run.  Because samples are plain counters they ride
:meth:`Collector.absorb_state` / :meth:`Collector.absorb` unchanged and
inherit the determinism the obs tests pin (identical totals under the
serial/thread/process executors).

Three instrument types:

* :class:`Counter` — monotonically increasing integer totals.
* :class:`Histogram` — fixed, declared-up-front buckets; an observation
  increments the single ``bucket=le<bound>`` (or ``bucket=inf``) sample
  it falls into.  Fixed buckets keep histograms mergeable by addition.
* :class:`Gauge` — last-write-wins floats.  Gauges are *not* additive,
  so they live in the registry (process-local) rather than in collector
  counters; they appear in snapshots but never in ``Profile.counters``.

Hot-path cost: :meth:`Counter.labels` returns a bound instrument whose
encoded name was computed once, so recording is the same two dict
operations as a plain ``col.add(name)`` — and when no collector is
installed it is the usual single ``ACTIVE``-is-``None`` test.

:class:`MetricsRegistry.snapshot` inverts the encoding: it decodes the
labeled counters of a :class:`Profile` back into per-metric sample
tables and merges in gauge values, producing a deterministic
point-in-time JSON document (schema ``repro.obs/metrics@1``).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Iterable, Mapping

from repro.obs import collector as _obs
from repro.obs.profile import Profile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
           "SCHEMA", "encode_metric", "parse_metric"]

#: Schema tag embedded in every metrics snapshot.
SCHEMA = "repro.obs/metrics@1"

#: Characters that would break the ``name{k=v,...}`` encoding.
_RESERVED = set("{}=,\n")


def _check_token(token: str, what: str) -> str:
    if not token or _RESERVED.intersection(token):
        raise ValueError(f"invalid {what} {token!r}: must be non-empty "
                         f"and free of '{{', '}}', '=', ',' and newlines")
    return token


def encode_metric(name: str, labels: Mapping[str, Any] = ()) -> str:
    """The canonical encoded form ``name{k1=v1,k2=v2}`` (keys sorted)."""
    if not labels:
        return name
    body = ",".join(f"{key}={_check_token(str(labels[key]), 'label value')}"
                    for key in sorted(labels))
    return f"{name}{{{body}}}"


def parse_metric(encoded: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`encode_metric`; plain names parse to empty labels."""
    if not encoded.endswith("}") or "{" not in encoded:
        return encoded, {}
    name, _, body = encoded.partition("{")
    labels: dict[str, str] = {}
    for item in body[:-1].split(","):
        key, _, value = item.partition("=")
        labels[key] = value
    return name, labels


def format_bucket(bound: float) -> str:
    """The ``bucket`` label value for an upper bound (``inf`` for +inf)."""
    if bound == float("inf"):
        return "inf"
    return f"le{bound:g}"


class _Bound:
    """An instrument with its label values resolved and name pre-encoded."""

    __slots__ = ("_encoded",)

    def __init__(self, encoded: str) -> None:
        self._encoded = encoded

    @property
    def encoded_name(self) -> str:
        return self._encoded


class BoundCounter(_Bound):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        col = _obs.ACTIVE
        if col is not None:
            col.add(self._encoded, amount)

    def inc_durable(self, amount: int = 1) -> None:
        """Increment so the sample survives a discarded task attempt."""
        col = _obs.ACTIVE
        if col is not None:
            col.add_durable(self._encoded, amount)


class BoundGauge(_Bound):
    __slots__ = ("_store", "_lock")

    def __init__(self, encoded: str, store: dict, lock) -> None:
        super().__init__(encoded)
        self._store = store
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._store[self._encoded] = float(value)


class BoundHistogram(_Bound):
    """Pre-encoded ``(upper_bound, counter_name)`` rows, ascending."""

    __slots__ = ("_rows",)

    def __init__(self, rows: tuple) -> None:
        super().__init__(rows[-1][1])
        self._rows = rows

    def observe(self, value: float) -> None:
        col = _obs.ACTIVE
        if col is None:
            return
        for bound, encoded in self._rows:
            if value <= bound:
                col.add(encoded)
                return


class _Metric:
    """Shared bookkeeping: identity, label schema, bound-instrument cache."""

    type_name = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 label_names: tuple, help: str) -> None:
        self.registry = registry
        self.name = _check_token(name, "metric name")
        self.label_names = tuple(_check_token(label, "label name")
                                 for label in label_names)
        self.help = help
        self._bound: dict[tuple, Any] = {}

    def _resolve(self, labels: dict) -> tuple[tuple, dict]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.label_names)}, got {sorted(labels)}")
        key = tuple(str(labels[label]) for label in self.label_names)
        return key, labels

    def labels(self, **labels: Any):
        """The bound instrument for one label-value combination."""
        key, labels = self._resolve(labels)
        bound = self._bound.get(key)
        if bound is None:
            bound = self._make_bound(labels)
            self._bound[key] = bound
        return bound

    def describe(self) -> dict[str, Any]:
        return {"type": self.type_name, "help": self.help,
                "labels": list(self.label_names)}


class Counter(_Metric):
    type_name = "counter"

    def _make_bound(self, labels: dict) -> BoundCounter:
        return BoundCounter(encode_metric(self.name, labels))

    def inc(self, amount: int = 1, **labels: Any) -> None:
        self.labels(**labels).inc(amount)


class Gauge(_Metric):
    type_name = "gauge"

    def _make_bound(self, labels: dict) -> BoundGauge:
        return BoundGauge(encode_metric(self.name, labels),
                          self.registry._gauges, self.registry._lock)

    def set(self, value: float, **labels: Any) -> None:
        self.labels(**labels).set(value)


class Histogram(_Metric):
    type_name = "histogram"

    def __init__(self, registry, name, label_names, help,
                 buckets: Iterable[float]) -> None:
        super().__init__(registry, name, label_names, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be a "
                             f"non-empty strictly increasing sequence, "
                             f"got {bounds}")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds

    def _make_bound(self, labels: dict) -> BoundHistogram:
        rows = tuple(
            (bound,
             encode_metric(self.name,
                           {**labels, "bucket": format_bucket(bound)}))
            for bound in self.buckets)
        return BoundHistogram(rows)

    def observe(self, value: float, **labels: Any) -> None:
        self.labels(**labels).observe(value)

    def describe(self) -> dict[str, Any]:
        described = super().describe()
        described["buckets"] = [format_bucket(b) for b in self.buckets]
        return described


class MetricsRegistry:
    """Declares metrics once and decodes snapshots of their samples.

    Registration is idempotent: re-declaring a metric with the same
    type and label schema returns the existing instance (so modules can
    declare their instruments at import time without ordering concerns);
    a conflicting re-declaration raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def _register(self, cls, name, labels, help, **extra):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or \
                        existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.type_name} with labels "
                        f"{existing.label_names}")
                return existing
            metric = cls(self, name, tuple(labels), help, **extra)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, labels: Iterable[str] = (),
                help: str = "") -> Counter:
        return self._register(Counter, name, tuple(labels), help)

    def gauge(self, name: str, labels: Iterable[str] = (),
              help: str = "") -> Gauge:
        return self._register(Gauge, name, tuple(labels), help)

    def histogram(self, name: str, buckets: Iterable[float],
                  labels: Iterable[str] = (), help: str = "") -> Histogram:
        return self._register(Histogram, name, tuple(labels), help,
                              buckets=tuple(buckets))

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, profile: Profile | None = None, *,
                 include_unregistered: bool = True) -> dict[str, Any]:
        """A point-in-time document of every metric's current samples.

        Counter and histogram samples come from ``profile`` (or the
        active collector's snapshot when omitted); gauge values come
        from the registry itself.  Labeled counters that were never
        declared are included as untyped counters unless
        ``include_unregistered`` is false — plain unlabeled profile
        counters (the classic ``heap.push`` vocabulary) are left to the
        profile document they already live in.
        """
        if profile is None:
            col = _obs.ACTIVE
            profile = col.profile() if col is not None else Profile()
        families: dict[str, dict[str, Any]] = {}

        def family(name: str, metric: _Metric | None) -> dict[str, Any]:
            entry = families.get(name)
            if entry is None:
                described = (metric.describe() if metric is not None
                             else {"type": "counter", "help": "",
                                   "labels": None})
                entry = dict(described, samples=[])
                families[name] = entry
            return entry

        for encoded, value in profile.counters.items():
            name, labels = parse_metric(encoded)
            metric = self._metrics.get(name)
            if metric is None and (not labels or not include_unregistered):
                continue
            family(name, metric)["samples"].append(
                {"labels": labels, "value": value})
        with self._lock:
            gauges = dict(self._gauges)
        for encoded in sorted(gauges):
            name, labels = parse_metric(encoded)
            family(name, self._metrics.get(name))["samples"].append(
                {"labels": labels, "value": gauges[encoded]})
        for entry in families.values():
            entry["samples"].sort(
                key=lambda sample: sorted(sample["labels"].items()))
        return {"schema": SCHEMA,
                "trace_id": profile.trace_id,
                "metrics": {name: families[name]
                            for name in sorted(families)}}

    def snapshot_json(self, profile: Profile | None = None, *,
                      indent: int | None = 2) -> str:
        """The :meth:`snapshot` document as deterministic JSON."""
        return json.dumps(self.snapshot(profile), indent=indent,
                          sort_keys=True)

    def reset_gauges(self) -> None:
        """Forget all gauge values (test isolation helper)."""
        with self._lock:
            self._gauges.clear()


#: The process-wide default registry; modules declare instruments on it
#: at import time.
REGISTRY = MetricsRegistry()
