"""Immutable profile snapshots: span trees plus counter totals.

A :class:`Profile` is what a :class:`~repro.obs.collector.Collector`
produces when asked for a snapshot, what worker processes ship back to
the parent executor, what :attr:`CpprEngine.last_profile` holds, and
what the CLI and benchmark harness serialize.  It is a plain value
object with a stable dict form (``SCHEMA``) so profiles written by one
PR remain comparable in the next.

Span names follow ``family[detail]`` labels (``level[3]``,
``self_loop``); counter names are dotted (``heap.push``,
``deviation.edges_explored``).  The full vocabulary is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = ["Profile", "SpanNode", "SCHEMA"]

#: Schema tag embedded in every serialized profile.
SCHEMA = "repro.obs/profile@1"


@dataclass(frozen=True, slots=True)
class SpanNode:
    """One timed region: its label, wall seconds, and nested children."""

    name: str
    seconds: float
    children: tuple["SpanNode", ...] = ()
    #: Wall-clock offset (seconds) of the span's start relative to the
    #: collector's creation; ``0.0`` for hand-built or legacy profiles.
    start: float = 0.0

    @property
    def self_seconds(self) -> float:
        """Time spent in this span excluding its children."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self) -> Iterator[tuple[int, "SpanNode"]]:
        """Yield ``(depth, node)`` pairs depth-first, self first."""
        stack: list[tuple[int, SpanNode]] = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "seconds": self.seconds,
                "start": self.start,
                "children": [c.to_dict() for c in self.children]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanNode":
        return cls(name=str(data["name"]),
                   seconds=float(data["seconds"]),
                   children=tuple(cls.from_dict(c)
                                  for c in data.get("children", ())),
                   start=float(data.get("start", 0.0)))


@dataclass(frozen=True, slots=True)
class Profile:
    """A snapshot of collected spans and counters.

    ``spans`` holds the root spans in a deterministic order (collection
    order for single-threaded runs; executor task order for parallel
    runs, see :func:`repro.cppr.parallel.run_tasks`).  ``counters`` maps
    dotted counter names to integer totals, sorted by name.
    """

    spans: tuple[SpanNode, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    #: Fault/degradation events (dicts with an ``"event"`` key) recorded
    #: by the resilient scheduler and the engine's backend ladder during
    #: the profiled window; empty for clean runs.
    degraded: tuple[Mapping[str, Any], ...] = ()
    #: The collector's trace identifier, threading this snapshot to its
    #: exported trace (``None`` for hand-built or legacy profiles).
    trace_id: str | None = None
    #: Free-form header metadata (executor, resolved worker count,
    #: backend, shared-memory plane state...) stamped by the producer;
    #: rendered as header lines by ``format_profile``.  Values are
    #: short strings — never measurements, which belong in counters.
    meta: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counter(self, name: str, default: int = 0) -> int:
        """Total for one counter, ``default`` when never incremented."""
        return self.counters.get(name, default)

    def iter_spans(self) -> Iterator[SpanNode]:
        """Every span in the profile, depth-first across all roots."""
        for root in self.spans:
            for _depth, node in root.walk():
                yield node

    def span_seconds(self, name: str) -> float:
        """Summed wall seconds of every span labelled ``name``."""
        return sum(node.seconds for node in self.iter_spans()
                   if node.name == name)

    def total_seconds(self) -> float:
        """Summed wall seconds of the root spans."""
        return sum(root.seconds for root in self.spans)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def merged(self, other: "Profile") -> "Profile":
        """A new profile: concatenated spans, summed counters."""
        counters = dict(self.counters)
        for name, amount in other.counters.items():
            counters[name] = counters.get(name, 0) + amount
        return Profile(spans=self.spans + other.spans,
                       counters=dict(sorted(counters.items())),
                       degraded=self.degraded + other.degraded,
                       trace_id=self.trace_id or other.trace_id,
                       meta={**self.meta, **other.meta})

    def with_degraded(self, events) -> "Profile":
        """This profile with ``events`` as its degradation record."""
        return Profile(spans=self.spans, counters=self.counters,
                       degraded=tuple(dict(e) for e in events),
                       trace_id=self.trace_id, meta=dict(self.meta))

    def with_meta(self, meta: Mapping[str, str]) -> "Profile":
        """This profile with ``meta`` merged into its header metadata."""
        return Profile(spans=self.spans, counters=self.counters,
                       degraded=self.degraded, trace_id=self.trace_id,
                       meta={**self.meta,
                             **{str(k): str(v) for k, v in meta.items()}})

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = {"schema": SCHEMA,
                "trace_id": self.trace_id,
                "spans": [root.to_dict() for root in self.spans],
                "counters": dict(self.counters),
                "degraded": [dict(e) for e in self.degraded]}
        if self.meta:
            data["meta"] = dict(sorted(self.meta.items()))
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Profile":
        counters = {str(k): int(v)
                    for k, v in data.get("counters", {}).items()}
        trace_id = data.get("trace_id")
        return cls(spans=tuple(SpanNode.from_dict(s)
                               for s in data.get("spans", ())),
                   counters=dict(sorted(counters.items())),
                   degraded=tuple(dict(e)
                                  for e in data.get("degraded", ())),
                   trace_id=None if trace_id is None else str(trace_id),
                   meta={str(k): str(v)
                         for k, v in data.get("meta", {}).items()})
