"""Trace export: Chrome trace-event JSON and a compact JSONL span log.

A :class:`Profile` already carries everything a trace needs — a span
forest with durations and start offsets, counters, degradation events
and a ``trace_id`` — so export is a pure function of the snapshot.  Two
formats:

* :func:`to_chrome_trace` — the Chrome trace-event format (``ph: "X"``
  complete events, microsecond timestamps), loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  This is the
  per-request export surface the ROADMAP's serving tier reuses.
* :func:`to_span_log` — one flat JSON record per span (trace id, slash
  path, depth, start, total/self seconds), the grep/jq-friendly form.

Timeline layout: events are placed by *sequential packing* — each root
span starts where the previous root ended and children pack left to
right inside their parent, using only the recorded durations.  Packing
is deterministic and always properly nested, which keeps exported
traces diffable across runs and correct for spans absorbed from worker
processes (whose recorded wall starts are relative to a different
process epoch).  The recorded wall start is preserved per event under
``args.wall_start`` for when the true gap structure matters.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.collector import new_trace_id
from repro.obs.profile import Profile, SpanNode

__all__ = ["SCHEMA", "new_trace_id", "to_chrome_trace", "to_span_log",
           "write_chrome_trace", "write_span_log"]

#: Schema tag embedded in every exported Chrome trace's ``otherData``.
SCHEMA = "repro.obs/trace@1"


def _category(name: str) -> str:
    """Event category: the span family, stripped of its ``[detail]``."""
    return name.partition("[")[0]


def _pack_events(node: SpanNode, ts_us: float, events: list[dict],
                 trace_id: str, pid: int, tid: int) -> None:
    events.append({
        "name": node.name,
        "cat": _category(node.name),
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": round(ts_us, 3),
        "dur": round(node.seconds * 1e6, 3),
        "args": {"trace_id": trace_id,
                 "self_seconds": round(node.self_seconds, 9),
                 "wall_start": round(node.start, 9)},
    })
    child_ts = ts_us
    for child in node.children:
        _pack_events(child, child_ts, events, trace_id, pid, tid)
        child_ts += child.seconds * 1e6


def to_chrome_trace(profile: Profile, *, trace_id: str | None = None,
                    pid: int = 1) -> dict[str, Any]:
    """``profile`` as a Chrome trace-event document (a JSON-able dict)."""
    trace_id = trace_id or profile.trace_id or new_trace_id()
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": f"repro trace {trace_id}"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 1,
         "args": {"name": "spans"}},
    ]
    cursor = 0.0
    for root in profile.spans:
        _pack_events(root, cursor, events, trace_id, pid, tid=1)
        cursor += root.seconds * 1e6
    for index, event in enumerate(profile.degraded):
        record = {
            "name": str(event.get("event", "degraded")),
            "cat": "degraded",
            "ph": "i",
            "s": "p",
            "pid": pid,
            "tid": 1,
            "ts": round(cursor, 3) + index,
            "args": dict(event, trace_id=trace_id),
        }
        events.append(record)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA,
            "trace_id": trace_id,
            "counters": dict(profile.counters),
            "degraded_events": len(profile.degraded),
        },
    }


def write_chrome_trace(path, profile: Profile, *,
                       trace_id: str | None = None) -> str:
    """Write :func:`to_chrome_trace` JSON to ``path``; returns trace id."""
    document = to_chrome_trace(profile, trace_id=trace_id)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document["otherData"]["trace_id"]


def _iter_records(node: SpanNode, path: tuple, depth: int,
                  trace_id: str) -> Iterator[dict[str, Any]]:
    path = path + (node.name,)
    yield {"trace": trace_id,
           "span": node.name,
           "path": "/".join(path),
           "depth": depth,
           "start": round(node.start, 9),
           "seconds": round(node.seconds, 9),
           "self_seconds": round(node.self_seconds, 9)}
    for child in node.children:
        yield from _iter_records(child, path, depth + 1, trace_id)


def to_span_log(profile: Profile, *,
                trace_id: str | None = None) -> list[dict[str, Any]]:
    """One flat record per span, depth-first in stable span order."""
    trace_id = trace_id or profile.trace_id or new_trace_id()
    records: list[dict[str, Any]] = []
    for root in profile.spans:
        records.extend(_iter_records(root, (), 0, trace_id))
    return records


def write_span_log(path, profile: Profile, *,
                   trace_id: str | None = None) -> int:
    """Write :func:`to_span_log` as JSONL; returns the record count."""
    records = to_span_log(profile, trace_id=trace_id)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)
