"""Perf-regression sentinel over the ``BENCH_*.json`` family.

The benchmark harness (``benchmarks/run_experiments.py``) writes one
``BENCH_<step>.json`` per step.  Until now CI only archived them; the
sentinel makes the trajectory actionable:

1. :func:`collect_results` flattens every ``BENCH_*.json`` under a
   results directory into scalar metrics named by their JSON path
   (``batched/designs/leon2/batched/seconds``), keeping only leaves
   whose last segment ends in ``seconds`` / ``speedup`` / ``pct`` /
   ``fraction`` — the performance surface — and skipping work-counter
   and per-pass subtrees, which are covered by equivalence tests.
2. :class:`Baseline` keeps a rolling window of recent values per metric
   (median = reference) in a committed JSON file.
3. :meth:`Baseline.check` compares a current run against the reference
   with a tolerance band per metric.  Direction is inferred from the
   name: ``speedup`` metrics must not fall, everything else must not
   rise.  Tiny references are padded with a per-kind absolute floor so
   timer jitter on sub-hundredth-second metrics cannot fire the gate.

``repro bench-check`` (see :mod:`repro.cli`) wires this up and exits
nonzero on any regression, so CI consumes the benchmark trajectory
instead of just storing it.  ``--skip-absolute`` drops wall-clock
(``seconds``) metrics from the comparison — the right mode when the
baseline was recorded on different hardware, leaving the
machine-independent ratios (speedups, fractions, percentages) as the
cross-machine contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["Baseline", "Regression", "SCHEMA", "collect_results",
           "iter_bench_metrics", "run_check"]

#: Schema tag of the rolling-baseline file.
SCHEMA = "repro.obs/bench-baseline@1"

DEFAULT_TOLERANCE_PCT = 15.0
DEFAULT_WINDOW = 5

#: Value-bearing suffixes; everything else in a BENCH file is config or
#: work-counter data.
_VALUE_SUFFIXES = ("seconds", "speedup", "pct", "fraction")

#: Subtrees that hold work counters / per-span detail, not perf scalars.
_SKIP_SEGMENTS = frozenset({"counters", "per_pass_seconds", "profile",
                            "spans"})

#: Absolute slack added to the tolerance band, per metric kind, so a
#: near-zero reference (e.g. a -8% overhead measurement) keeps a usable
#: band instead of a vanishing one.
_ABSOLUTE_FLOOR = {"seconds": 0.02, "speedup": 0.25, "pct": 2.0,
                   "fraction": 0.005}


def metric_kind(name: str) -> str:
    """Which of ``_VALUE_SUFFIXES`` the metric's last segment ends in."""
    leaf = name.rsplit("/", 1)[-1]
    for suffix in _VALUE_SUFFIXES:
        if leaf.endswith(suffix):
            return suffix
    return ""


def higher_is_better(name: str) -> bool:
    return metric_kind(name) == "speedup"


def is_absolute(name: str) -> bool:
    """Machine-dependent wall-clock metrics (not comparable across hosts)."""
    return metric_kind(name) == "seconds"


def iter_bench_metrics(stem: str, payload: Any,
                       _path: tuple = ()) -> Iterator[tuple[str, float]]:
    """Flatten one BENCH payload into ``(metric_name, value)`` pairs."""
    if isinstance(payload, Mapping):
        for key, value in payload.items():
            key = str(key)
            if key in _SKIP_SEGMENTS:
                continue
            yield from iter_bench_metrics(stem, value, _path + (key,))
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            yield from iter_bench_metrics(stem, value, _path + (str(index),))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        if _path and metric_kind(_path[-1]):
            yield "/".join((stem,) + _path), float(payload)


def collect_results(results_dir) -> dict[str, float]:
    """Every perf metric from every ``BENCH_*.json`` under a directory."""
    metrics: dict[str, float] = {}
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        stem = path.stem[len("BENCH_"):]
        if stem == "baseline":
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        metrics.update(iter_bench_metrics(stem, payload))
    return dict(sorted(metrics.items()))


@dataclass(frozen=True)
class Regression:
    """One metric outside its tolerance band."""

    metric: str
    current: float
    reference: float
    bound: float
    direction: str  # "<=" (lower is better) or ">=" (higher is better)

    def describe(self) -> str:
        return (f"{self.metric}: {self.current:.6g} violates "
                f"{self.direction} {self.bound:.6g} "
                f"(reference {self.reference:.6g})")


class Baseline:
    """A rolling window of recent values per metric, stored as JSON."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 metrics: dict[str, list[float]] | None = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.metrics = {name: list(values)[-window:]
                        for name, values in (metrics or {}).items()}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(f"{path}: not a bench baseline "
                             f"(schema {data.get('schema')!r})")
        return cls(window=int(data.get("window", DEFAULT_WINDOW)),
                   metrics={str(k): [float(x) for x in v]
                            for k, v in data.get("metrics", {}).items()})

    def save(self, path) -> None:
        document = {"schema": SCHEMA, "window": self.window,
                    "metrics": {name: self.metrics[name]
                                for name in sorted(self.metrics)}}
        Path(path).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    # The rolling window
    # ------------------------------------------------------------------
    def record(self, current: Mapping[str, float]) -> None:
        """Append a run's values, trimming each window to ``window``."""
        for name, value in current.items():
            history = self.metrics.setdefault(name, [])
            history.append(float(value))
            del history[:-self.window]

    def reference(self, name: str) -> float | None:
        history = self.metrics.get(name)
        return median(history) if history else None

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def check(self, current: Mapping[str, float], *,
              tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
              skip_absolute: bool = False) -> list[Regression]:
        """Regressions of ``current`` against the rolling references.

        Metrics with no recorded history pass (they enter the window on
        the next ``record``); metrics in the baseline but absent from
        ``current`` are ignored (their step simply did not rerun).
        """
        regressions: list[Regression] = []
        slack = tolerance_pct / 100.0
        for name in sorted(current):
            if skip_absolute and is_absolute(name):
                continue
            reference = self.reference(name)
            if reference is None:
                continue
            floor = _ABSOLUTE_FLOOR.get(metric_kind(name), 0.0)
            value = float(current[name])
            if higher_is_better(name):
                bound = reference - max(abs(reference) * slack, floor)
                if value < bound:
                    regressions.append(Regression(name, value, reference,
                                                  bound, ">="))
            else:
                bound = reference + max(abs(reference) * slack, floor)
                if value > bound:
                    regressions.append(Regression(name, value, reference,
                                                  bound, "<="))
        return regressions


def run_check(results_dir, baseline_path, *,
              tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
              window: int = DEFAULT_WINDOW,
              update: bool = False,
              skip_absolute: bool = False) -> tuple[int, list[str]]:
    """The full sentinel pass: ``(exit_code, report_lines)``.

    A missing baseline file is initialized from the current results and
    reported as a pass — the first run seeds the window.  With
    ``update``, a passing run's values are appended to the rolling
    window and the baseline rewritten; a failing run never updates the
    baseline (regressed values must not poison the reference).
    """
    current = collect_results(results_dir)
    lines = [f"bench-check: {len(current)} metrics from "
             f"BENCH_*.json in {results_dir}"]
    if not current:
        lines.append("no BENCH_*.json results found — nothing to check")
        return 1, lines
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        baseline = Baseline(window=window)
        baseline.record(current)
        baseline.save(baseline_path)
        lines.append(f"initialized baseline {baseline_path} "
                     f"({len(current)} metrics) — PASS")
        return 0, lines
    baseline = Baseline.load(baseline_path)
    regressions = baseline.check(current, tolerance_pct=tolerance_pct,
                                 skip_absolute=skip_absolute)
    compared = sum(1 for name in current
                   if baseline.reference(name) is not None
                   and not (skip_absolute and is_absolute(name)))
    lines.append(f"compared {compared} metrics against {baseline_path} "
                 f"(tolerance {tolerance_pct:g}%"
                 f"{', wall-clock skipped' if skip_absolute else ''})")
    if regressions:
        lines.append(f"REGRESSIONS ({len(regressions)}):")
        lines.extend(f"  {r.describe()}" for r in regressions)
        return 1, lines
    if update:
        baseline.record(current)
        baseline.save(baseline_path)
        lines.append("baseline window updated")
    lines.append("no regressions — PASS")
    return 0, lines
