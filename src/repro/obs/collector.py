"""The active collector and the zero-cost-by-default instrumentation API.

Design constraints, in order of importance:

1. **Disabled instrumentation must cost (almost) nothing.**  Hot loops
   (heap pushes, deviation-edge scans, propagation relaxations) guard
   every event with a single module-attribute check::

       from repro.obs import collector as _obs
       ...
       col = _obs.ACTIVE
       if col is not None:
           col.add("heap.push")

   When no collector is installed ``ACTIVE`` is ``None`` and the guard
   is one attribute load plus an identity test — verified to stay under
   the 5% overhead budget by ``tests/obs/test_overhead.py``.

2. **Thread safety without hot-path locks.**  A :class:`Collector` keeps
   per-thread state (counters, span stack, finished root spans) behind
   ``threading.local``; the only lock is taken once per thread at
   registration and once per snapshot.  Counter totals are therefore
   exact under the thread executor, not approximate.

3. **Deterministic aggregation across executors.**  Parallel executors
   route each task's events into a detached state (:meth:`Collector.
   capture`) or a per-process sub-collector, then merge them back in
   task order (:meth:`Collector.absorb_state` / :meth:`Collector.
   absorb`), so counter totals are identical for ``serial``, ``thread``
   and ``process`` runs of the same workload.

The module-level helpers :func:`add` and :func:`span` are convenience
wrappers for call sites that are not performance-critical.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.profile import Profile, SpanNode

__all__ = ["ACTIVE", "Collector", "active_collector", "add", "collecting",
           "new_trace_id", "span"]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace identifier."""
    return uuid.uuid4().hex[:16]

#: The installed collector, or ``None`` when instrumentation is off.
#: Hot paths read this attribute directly; everything else should go
#: through :func:`collecting` / :func:`active_collector`.
ACTIVE: "Collector | None" = None


class _OpenSpan:
    """A span still on some thread's stack; mutable while children finish."""

    __slots__ = ("label", "children")

    def __init__(self, label: str) -> None:
        self.label = label
        self.children: list[SpanNode] = []


class _ThreadState:
    """One thread's (or one detached task's) private event storage."""

    __slots__ = ("counters", "roots", "stack")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.roots: list[SpanNode] = []
        self.stack: list[_OpenSpan] = []


class Collector:
    """Accumulates named counters and a hierarchical span tree.

    Instances are cheap; create one per measurement window via
    :func:`collecting`.  All methods are safe to call from multiple
    threads concurrently.
    """

    def __init__(self, clock=time.perf_counter,
                 trace_id: str | None = None) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._states: list[_ThreadState] = []
        self._tls = threading.local()
        #: Identifier stamped on every snapshot and exported trace; pass
        #: one in to correlate this window with an external request id.
        self.trace_id = new_trace_id() if trace_id is None else trace_id
        #: Creation instant — span ``start`` offsets are relative to it.
        self._epoch = clock()

    # ------------------------------------------------------------------
    # Per-thread state management
    # ------------------------------------------------------------------
    def _attached_state(self) -> _ThreadState:
        """This thread's permanent state — what :meth:`profile` reads."""
        state = getattr(self._tls, "attached", None)
        if state is None:
            state = _ThreadState()
            self._tls.attached = state
            with self._lock:
                self._states.append(state)
        return state

    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = self._attached_state()
            self._tls.state = state
        return state

    @contextmanager
    def capture(self) -> Iterator[_ThreadState]:
        """Route this thread's events into a detached state.

        Used by executors to give each task its own event bucket so the
        buckets can be merged back in task order (deterministically)
        with :meth:`absorb_state`.  The detached state is *not* included
        in :meth:`profile` snapshots until absorbed.
        """
        detached = _ThreadState()
        prev = getattr(self._tls, "state", None)
        self._tls.state = detached
        try:
            yield detached
        finally:
            self._tls.state = prev

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        counters = self._state().counters
        counters[name] = counters.get(name, 0) + amount

    def add_durable(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` so it survives a discarded task attempt.

        :meth:`capture` routes events into a detached state that is only
        merged when the task *succeeds* — the right policy for work
        counters, the wrong one for fault evidence.  This records on the
        thread's permanent state instead, bypassing any active capture,
        so injected-fault counters remain visible even when the attempt
        that triggered them is abandoned.
        """
        counters = self._attached_state().counters
        counters[name] = counters.get(name, 0) + amount

    @contextmanager
    def span(self, name: str, detail: Any = None) -> Iterator[None]:
        """Time a region as ``name`` (or ``name[detail]``) with children."""
        label = name if detail is None else f"{name}[{detail}]"
        state = self._state()
        node = _OpenSpan(label)
        state.stack.append(node)
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            state.stack.pop()
            finished = SpanNode(label, elapsed, tuple(node.children),
                                start=start - self._epoch)
            if state.stack:
                state.stack[-1].children.append(finished)
            else:
                state.roots.append(finished)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def absorb_state(self, state: _ThreadState) -> None:
        """Merge a detached state's events under the current span."""
        current = self._state()
        target = (current.stack[-1].children if current.stack
                  else current.roots)
        target.extend(state.roots)
        counters = current.counters
        for name, amount in state.counters.items():
            counters[name] = counters.get(name, 0) + amount

    def absorb(self, profile: Profile) -> None:
        """Merge a worker's :class:`Profile` under the current span.

        This is how per-process collectors returned from fork workers
        are folded back into the parent's collector.
        """
        current = self._state()
        target = (current.stack[-1].children if current.stack
                  else current.roots)
        target.extend(profile.spans)
        counters = current.counters
        for name, amount in profile.counters.items():
            counters[name] = counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def profile(self) -> Profile:
        """A point-in-time snapshot; open spans are not included."""
        with self._lock:
            states = list(self._states)
        counters: dict[str, int] = {}
        spans: list[SpanNode] = []
        for state in states:
            spans.extend(state.roots)
            for name, amount in state.counters.items():
                counters[name] = counters.get(name, 0) + amount
        return Profile(spans=tuple(spans),
                       counters=dict(sorted(counters.items())),
                       trace_id=self.trace_id)


# ----------------------------------------------------------------------
# Module-level API
# ----------------------------------------------------------------------
def active_collector() -> Collector | None:
    """The currently installed collector, or ``None``."""
    return ACTIVE


@contextmanager
def collecting(collector: Collector | None = None) -> Iterator[Collector]:
    """Install ``collector`` (or a fresh one) for the ``with`` body.

    Installation is process-global: worker threads (and forked worker
    processes) started inside the body observe the same collector.
    Nesting replaces the outer collector for the inner body and restores
    it on exit; the inner window's events are *not* forwarded to the
    outer collector.
    """
    global ACTIVE
    outer = ACTIVE
    col = Collector() if collector is None else collector
    ACTIVE = col
    try:
        yield col
    finally:
        ACTIVE = outer


def add(name: str, amount: int = 1) -> None:
    """Increment a counter on the active collector, if any."""
    col = ACTIVE
    if col is not None:
        col.add(name, amount)


class _NullSpan:
    """Reusable no-op context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, detail: Any = None):
    """A timed span on the active collector; no-op when disabled."""
    col = ACTIVE
    if col is None:
        return _NULL_SPAN
    return col.span(name, detail)
