"""repro.obs — the observability plane: traces, metrics, sentinel.

Three subsystems on one substrate:

* **Profiling/tracing** — hierarchical spans with monotonic timing and
  per-window trace ids, named counters for heap/deviation/propagation
  work, and :class:`Profile` snapshots that aggregate deterministically
  across the ``serial``/``thread``/``process`` executors.
* **Metrics** (:mod:`repro.obs.metrics`) — typed counters, gauges and
  fixed-bucket histograms with label sets, encoded onto the collector's
  counter substrate so they ride the same executor-aware merge.
* **Export and regression gating** — :mod:`repro.obs.export` renders a
  profile as Chrome trace-event JSON (Perfetto-loadable) or a JSONL
  span log; :mod:`repro.obs.sentinel` checks ``BENCH_*.json`` results
  against a rolling baseline (``repro bench-check``).

Quickstart::

    from repro.obs import collecting, format_profile, write_chrome_trace

    with collecting() as col:
        engine.top_paths(k=50, mode="setup")
    print(format_profile(col.profile()))
    write_chrome_trace("trace.json", col.profile())

Instrumentation is zero-cost by default: until :func:`collecting`
installs a collector, every instrumented call site reduces to a single
module-attribute check (see :mod:`repro.obs.collector`).  The span and
counter vocabulary is documented in ``docs/OBSERVABILITY.md``.
"""

from repro.obs.collector import (Collector, active_collector, add,
                                 collecting, new_trace_id, span)
from repro.obs.export import (to_chrome_trace, to_span_log,
                              write_chrome_trace, write_span_log)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.profile import SCHEMA, Profile, SpanNode
from repro.obs.render import format_profile, profile_to_json
from repro.obs.sentinel import Baseline, collect_results, run_check

__all__ = [
    "Baseline",
    "Collector",
    "MetricsRegistry",
    "Profile",
    "REGISTRY",
    "SCHEMA",
    "SpanNode",
    "active_collector",
    "add",
    "collect_results",
    "collecting",
    "format_profile",
    "new_trace_id",
    "profile_to_json",
    "run_check",
    "span",
    "to_chrome_trace",
    "to_span_log",
    "write_chrome_trace",
    "write_span_log",
]
