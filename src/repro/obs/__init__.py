"""repro.obs — structured tracing, counters, and profile reports.

The engine's instrumentation layer: hierarchical spans with monotonic
timing, named counters for heap/deviation/propagation work, and
:class:`Profile` snapshots that aggregate deterministically across the
``serial``/``thread``/``process`` executors.

Quickstart::

    from repro.obs import collecting, format_profile

    with collecting() as col:
        engine.top_paths(k=50, mode="setup")
    print(format_profile(col.profile()))

Instrumentation is zero-cost by default: until :func:`collecting`
installs a collector, every instrumented call site reduces to a single
module-attribute check (see :mod:`repro.obs.collector`).  The span and
counter vocabulary is documented in ``docs/OBSERVABILITY.md``.
"""

from repro.obs.collector import (Collector, active_collector, add,
                                 collecting, span)
from repro.obs.profile import SCHEMA, Profile, SpanNode
from repro.obs.render import format_profile, profile_to_json

__all__ = [
    "Collector",
    "Profile",
    "SCHEMA",
    "SpanNode",
    "active_collector",
    "add",
    "collecting",
    "format_profile",
    "profile_to_json",
    "span",
]
