"""Human- and machine-readable renderings of :class:`Profile` objects.

``format_profile`` produces the span tree + counter table printed by
``python -m repro report --profile``; ``profile_to_json`` is the
``--profile-json`` payload and the benchmark harness format.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.profile import Profile

__all__ = ["format_profile", "profile_to_json"]


def _format_span_tree(profile: Profile) -> list[str]:
    lines = [f"{'total s':>10}  {'self s':>10}  span"]
    for root in profile.spans:
        for depth, node in root.walk():
            indent = "  " * depth
            lines.append(f"{node.seconds:>10.4f}  {node.self_seconds:>10.4f}"
                         f"  {indent}{node.name}")
    return lines


def _format_counters(profile: Profile) -> list[str]:
    width = max((len(name) for name in profile.counters), default=7)
    width = max(width, len("counter"))
    lines = [f"{'counter':<{width}}  {'value':>12}"]
    for name in sorted(profile.counters):
        lines.append(f"{name:<{width}}  {profile.counters[name]:>12}")
    return lines


def format_profile(profile: Profile, title: str = "Profile") -> str:
    """Render a profile as a span tree plus a counter table."""
    lines = [f"== {title} =="]
    lines.append("")
    lines.append("-- span tree --")
    if profile.spans:
        lines.extend(_format_span_tree(profile))
    else:
        lines.append("(no spans recorded)")
    lines.append("")
    lines.append("-- counters --")
    if profile.counters:
        lines.extend(_format_counters(profile))
    else:
        lines.append("(no counters recorded)")
    if profile.degraded:
        lines.append("")
        lines.append("-- degraded --")
        for event in profile.degraded:
            name = event.get("event", "?")
            detail = ", ".join(f"{k}={v}" for k, v in sorted(event.items())
                               if k != "event")
            lines.append(f"{name}  {detail}" if detail else name)
    return "\n".join(lines)


def profile_to_json(profile: Profile, *,
                    extra: dict[str, Any] | None = None,
                    indent: int | None = 2) -> str:
    """Serialize a profile (plus optional metadata) as a JSON document."""
    payload = profile.to_dict()
    if extra:
        for key, value in extra.items():
            if key in payload:
                raise ValueError(f"extra key {key!r} collides with the "
                                 f"profile schema")
            payload[key] = value
    return json.dumps(payload, indent=indent, sort_keys=False)
