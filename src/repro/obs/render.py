"""Human- and machine-readable renderings of :class:`Profile` objects.

``format_profile`` produces the span tree + counter table printed by
``python -m repro report --profile``; ``profile_to_json`` is the
``--profile-json`` payload and the benchmark harness format.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.profile import Profile

__all__ = ["format_profile", "profile_to_json"]

#: Counter suffixes that mark a cache-traffic counter; ``<prefix>.<suffix>``
#: rows are regrouped into the ``-- caches --`` table.
_CACHE_SUFFIXES = ("hit", "miss", "evict", "stale.detected")


def _format_span_tree(profile: Profile) -> list[str]:
    lines = [f"{'total s':>10}  {'self s':>10}  span"]
    for root in profile.spans:
        for depth, node in root.walk():
            indent = "  " * depth
            lines.append(f"{node.seconds:>10.4f}  {node.self_seconds:>10.4f}"
                         f"  {indent}{node.name}")
    return lines


def _format_counters(profile: Profile) -> list[str]:
    width = max((len(name) for name in profile.counters), default=7)
    width = max(width, len("counter"))
    lines = [f"{'counter':<{width}}  {'value':>12}"]
    for name in sorted(profile.counters):
        lines.append(f"{name:<{width}}  {profile.counters[name]:>12}")
    return lines


def _cache_traffic(profile: Profile) -> dict[str, dict[str, int]]:
    """Cache counters regrouped as ``{prefix: {suffix: value}}``."""
    stats: dict[str, dict[str, int]] = {}
    for name, value in profile.counters.items():
        if "{" in name:  # labeled metric samples render in the counter table
            continue
        for suffix in _CACHE_SUFFIXES:
            tail = "." + suffix
            if name.endswith(tail):
                stats.setdefault(name[:-len(tail)], {})[suffix] = value
                break
    # A lone ``.evict`` counter (heap.evict, topk.evict) is not a cache;
    # only prefixes with lookup traffic qualify.
    return {prefix: row for prefix, row in stats.items()
            if "hit" in row or "miss" in row}


def _format_caches(stats: dict[str, dict[str, int]]) -> list[str]:
    width = max(max(len(prefix) for prefix in stats), len("cache"))
    lines = [f"{'cache':<{width}}  {'hit':>8}  {'miss':>8}  {'evict':>8}"
             f"  {'stale':>8}  {'hit rate':>8}"]
    for prefix in sorted(stats):
        row = stats[prefix]
        hit, miss = row.get("hit", 0), row.get("miss", 0)
        lookups = hit + miss
        rate = f"{hit / lookups:.1%}" if lookups else "n/a"
        lines.append(f"{prefix:<{width}}  {hit:>8}  {miss:>8}"
                     f"  {row.get('evict', 0):>8}"
                     f"  {row.get('stale.detected', 0):>8}  {rate:>8}")
    return lines


def format_profile(profile: Profile, title: str = "Profile") -> str:
    """Render a profile as a span tree plus counter and cache tables."""
    lines = [f"== {title} =="]
    if profile.trace_id:
        lines.append(f"trace: {profile.trace_id}")
    for key in sorted(profile.meta):
        lines.append(f"{key}: {profile.meta[key]}")
    lines.append("")
    lines.append("-- span tree --")
    if profile.spans:
        lines.extend(_format_span_tree(profile))
    else:
        lines.append("(no spans recorded)")
    lines.append("")
    lines.append("-- counters --")
    if profile.counters:
        lines.extend(_format_counters(profile))
    else:
        lines.append("(no counters recorded)")
    caches = _cache_traffic(profile)
    if caches:
        lines.append("")
        lines.append("-- caches --")
        lines.extend(_format_caches(caches))
    if profile.degraded:
        lines.append("")
        lines.append("-- degraded --")
        for event in profile.degraded:
            name = event.get("event", "?")
            detail = ", ".join(f"{k}={v}" for k, v in sorted(event.items())
                               if k != "event")
            lines.append(f"{name}  {detail}" if detail else name)
    return "\n".join(lines)


def profile_to_json(profile: Profile, *,
                    extra: dict[str, Any] | None = None,
                    indent: int | None = 2) -> str:
    """Serialize a profile (plus optional metadata) as a JSON document.

    Output is deterministic: keys are sorted and span order is the
    profile's stable collection/task order, so two structurally equal
    runs diff cleanly (only timings and the trace id vary).
    """
    payload = profile.to_dict()
    if extra:
        for key, value in extra.items():
            if key in payload:
                raise ValueError(f"extra key {key!r} collides with the "
                                 f"profile schema")
            payload[key] = value
    return json.dumps(payload, indent=indent, sort_keys=True)
