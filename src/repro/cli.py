"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``stats`` — Table III-style statistics of a design file or suite
  design.
* ``report`` — top-k post-CPPR critical paths (or the pre-CPPR endpoint
  summary with ``--pre``); ``--eco updates.json`` reports the design
  *after* applying the ECO edits, via an incremental session.
* ``eco`` — before/after what-if analysis: baseline query, apply the
  update file through a :class:`~repro.pipeline.session.CpprSession`,
  re-query incrementally, and print both reports plus pipeline stats.
* ``generate`` — synthesize a suite or random design to a file.
* ``convert`` — convert between the ``.cppr`` text and ``.json``
  formats.
* ``compare`` — run several timer architectures on one design and print
  their runtimes and agreement.
* ``bench-check`` — the perf-regression sentinel: compare the
  ``BENCH_*.json`` family against a rolling baseline and exit nonzero
  on regression (see :mod:`repro.obs.sentinel`).

``report`` and ``eco`` accept ``--trace-out FILE`` (a Chrome
trace-event JSON, loadable in Perfetto) and ``--span-log FILE`` (JSONL,
one record per span); see ``docs/OBSERVABILITY.md``.  Both also take a
repeatable ``--corner NAME=FILE`` flag (an ECO-update JSON naming a
delay corner; ``NAME=-`` is the base design) plus ``--merged-worst``
for one cross-corner worst-paths report; see ``docs/MCMM.md``.

Designs are read from ``.cppr``/``.json`` files, or generated on the
fly with ``--suite NAME [--suite-scale S]``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines import (BlockBasedTimer, BranchBoundTimer,
                             ExhaustiveTimer, PairEnumTimer)
from repro.cppr.engine import CpprEngine, CpprOptions
from repro.cppr.report import format_path_report
from repro.exceptions import ReproError
from repro.io.frontend import ImportedDesign, formats
from repro.io.frontend import load_design as load_frontend_design
from repro.io.json_format import save_design_json
from repro.io.tau_format import save_design
from repro.sta.report import format_endpoint_report
from repro.sta.timing import TimingAnalyzer
from repro.utils.measure import measure_runtime
from repro.workloads.random_circuit import RandomDesignSpec, random_design
from repro.workloads.stats import DesignStats, design_statistics
from repro.workloads.suite import (build_design, design_names,
                                   suggest_clock_period)
from repro.sta.constraints import TimingConstraints

__all__ = ["main"]

_TIMERS = {
    "ours": CpprEngine,
    "pair": PairEnumTimer,
    "block": BlockBasedTimer,
    "bnb": BranchBoundTimer,
    "exhaustive": ExhaustiveTimer,
}


def _make_timer(name: str, analyzer, backend: str,
                batch_levels: str = "auto",
                resilience: dict | None = None):
    """One timer instance, passing the backend to those that take it."""
    if name == "ours":
        return CpprEngine(analyzer, CpprOptions(backend=backend,
                                                batch_levels=batch_levels,
                                                **(resilience or {})))
    if name == "pair":
        return PairEnumTimer(analyzer, backend=backend)
    if name == "block":
        return BlockBasedTimer(analyzer, backend=backend)
    return _TIMERS[name](analyzer)


def _save(graph, constraints, path: str) -> None:
    if path.endswith(".json"):
        save_design_json(graph, constraints, path)
    else:
        save_design(graph, constraints, path)


def _design_from_args(args) -> ImportedDesign:
    """The design named by the CLI args, through the frontend registry."""
    if args.suite is not None:
        graph, constraints = build_design(args.suite,
                                          scale=args.suite_scale)
        return ImportedDesign(graph=graph, constraints=constraints,
                              format="suite", path=args.suite,
                              meta={"scale": args.suite_scale})
    if args.design is None:
        raise ReproError("no design given: pass a file or --suite NAME")
    return load_frontend_design(
        args.design,
        format=getattr(args, "format", None) or "auto",
        sdc=getattr(args, "sdc", None),
        sdf=getattr(args, "sdf", None),
        clock_period=getattr(args, "clock_period", None),
        sdf_corners=getattr(args, "sdf_corners", False))


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock budget before the "
                             "scheduler abandons and retries it "
                             "(default: none)")
    parser.add_argument("--max-retries", type=int, default=2,
                        metavar="N",
                        help="retries per failed task before falling "
                             "back to a safer executor (default 2)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="base delay between retry waves, doubled "
                             "each attempt (default 0.05)")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast: raise instead of degrading to "
                             "a safer executor/backend")


def _resilience_from_args(args) -> dict:
    return {"task_timeout": args.task_timeout,
            "max_retries": args.max_retries,
            "retry_backoff": args.retry_backoff,
            "strict": args.strict}


def _add_corner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--corner", action="append", default=None,
                        metavar="NAME=FILE", dest="corners",
                        help="analyze a named delay corner (ECO-update "
                             "JSON delta from the base design); repeat "
                             "for multiple corners.  NAME=- names the "
                             "base design itself (empty delta)")
    parser.add_argument("--merged-worst", action="store_true",
                        help="with --corner: one merged report of the "
                             "k worst paths across all corners instead "
                             "of per-corner reports")


def _corners_from_args(args, imported: ImportedDesign | None = None):
    """The validated :class:`~repro.corners.CornerSet`, or ``None``.

    Merges the repeatable ``--corner NAME=FILE`` specs with any corners
    the frontend extracted from an SDF's min/typ/max triples
    (``--sdf-corners``).  Spec-shape problems fail here; unknown pins
    or clock nodes inside a corner file fail eagerly at engine
    construction (both before any query runs), and file-format problems
    carry the loader's usual ``path: context`` diagnostics.
    """
    specs = getattr(args, "corners", None)
    sdf_set = imported.corners if imported is not None else None
    if not specs and sdf_set is None:
        if getattr(args, "merged_worst", False):
            raise ReproError(
                "--merged-worst needs at least one --corner NAME=FILE "
                "or --sdf-corners")
        return None
    from repro.corners import Corner, CornerSet

    corners = list(sdf_set) if sdf_set is not None else []
    for spec in specs or ():
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(
                f"--corner {spec!r}: expected NAME=FILE (a corner name "
                f"and an ECO-update JSON path)")
        if path == "-":
            corners.append(Corner(name))
        else:
            corners.append(Corner.load(name, path))
    return CornerSet(corners)


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("design", nargs="?",
                        help="design file (.cppr, .json, .v, or Yosys "
                             "write_json)")
    parser.add_argument("--format", dest="format", default="auto",
                        choices=["auto"] + [s.name for s in formats()],
                        help="input format (default: auto-detect by "
                             "extension and content)")
    parser.add_argument("--sdc",
                        help="SDC constraints (required for .v designs; "
                             "optional for Yosys JSON)")
    parser.add_argument("--sdf", metavar="FILE",
                        help="SDF delay annotation for netlist formats "
                             "(IOPATH/INTERCONNECT min:typ:max)")
    parser.add_argument("--sdf-corners", action="store_true",
                        help="with --sdf: realize the min/typ/max "
                             "triples as an MCMM corner set")
    parser.add_argument("--clock-period", type=float, default=None,
                        metavar="T",
                        help="clock period for a synthesized Yosys "
                             "clock (default: auto-suggested)")
    parser.add_argument("--suite", choices=design_names(),
                        help="use a generated suite design instead")
    parser.add_argument("--suite-scale", type=float, default=1.0,
                        help="scale for --suite (default 1.0)")


def _cmd_stats(args) -> int:
    imported = _design_from_args(args)
    graph, constraints = imported
    stats = design_statistics(graph)
    print(DesignStats.header())
    print(stats.row())
    print(f"clock period: {constraints.clock_period:.4f}")
    return 0


def _write_trace_outputs(args, profile) -> None:
    """Honor ``--trace-out`` / ``--span-log`` for a collected profile."""
    from repro.obs import write_chrome_trace, write_span_log

    if getattr(args, "trace_out", None) is not None:
        trace_id = write_chrome_trace(args.trace_out, profile)
        print(f"wrote Chrome trace {trace_id} -> {args.trace_out}",
              file=sys.stderr)
    if getattr(args, "span_log", None) is not None:
        count = write_span_log(args.span_log, profile)
        print(f"wrote {count} span records -> {args.span_log}",
              file=sys.stderr)


def _cmd_report(args) -> int:
    from repro.cppr.queries import endpoint_paths, pair_paths
    from repro.obs import collecting, format_profile, profile_to_json

    profiling = (args.profile or args.profile_json
                 or args.trace_out is not None
                 or args.span_log is not None)
    imported = _design_from_args(args)
    graph, constraints = imported
    corner_set = _corners_from_args(args, imported)
    if corner_set is not None:
        if args.pre or args.pair is not None or args.endpoint is not None:
            raise ReproError(
                "--corner applies to the full engine report; drop "
                "--pre / --pair / --endpoint")
        if args.save_json is not None:
            raise ReproError("--save-json is not supported with --corner")
    eco = None
    if getattr(args, "eco", None) is not None:
        from repro.io.eco import load_eco_updates
        eco = load_eco_updates(args.eco)
        if args.pre or args.pair is not None or args.endpoint is not None:
            # Filtered queries have no session entry point; apply the
            # edits functionally and analyze the derived design.
            from repro.sta.incremental import (apply_clock_updates,
                                               apply_delay_updates)
            if eco.delays:
                graph = apply_delay_updates(graph, list(eco.delays))
            if eco.clock:
                graph = apply_clock_updates(graph, eco.clock)
    analyzer = TimingAnalyzer(graph, constraints)
    eco_suffix = f" (ECO: {eco.describe()})" if eco else ""

    meta_engine = None  # set when the full engine runs the query

    def run():
        nonlocal analyzer, meta_engine
        if args.pre:
            return None, format_endpoint_report(analyzer, args.mode,
                                                limit=args.k)
        if args.pair is not None:
            launch, _, capture = args.pair.partition(":")
            if not capture:
                raise ReproError(
                    "--pair expects LAUNCH:CAPTURE flip-flop names")
            paths = pair_paths(analyzer, launch, capture, args.k,
                               args.mode, backend=args.backend,
                               strict=args.strict)
            title = (f"Top-{args.k} post-CPPR {args.mode} paths "
                     f"{launch} -> {capture}{eco_suffix}")
        elif args.endpoint is not None:
            paths = endpoint_paths(analyzer, args.endpoint, args.k,
                                   args.mode, backend=args.backend,
                                   strict=args.strict)
            title = (f"Top-{args.k} post-CPPR {args.mode} paths into "
                     f"{args.endpoint}{eco_suffix}")
        else:
            engine = CpprEngine(analyzer, CpprOptions(
                backend=args.backend, batch_levels=args.batch_levels,
                corners=corner_set,
                **_resilience_from_args(args)))
            meta_engine = engine
            if corner_set is not None:
                # Multi-corner: the rendered report(s) are the result.
                source = engine
                if eco:
                    source = engine.session()
                    source.update(delays=list(eco.delays),
                                  clock=eco.clock)
                if args.merged_worst:
                    text = source.merged_worst_report(
                        args.k, args.mode,
                        title=f"Top-{args.k} post-CPPR {args.mode} "
                              f"paths (merged worst across corners)"
                              f"{eco_suffix}")
                else:
                    text = "\n".join(
                        source.report(
                            args.k, args.mode,
                            title=f"Top-{args.k} post-CPPR {args.mode} "
                                  f"paths [corner {name}]{eco_suffix}",
                            corner=name)
                        for name in corner_set.names)
                return None, text
            if eco:
                session = engine.session()
                session.update(delays=list(eco.delays), clock=eco.clock)
                paths = session.top_paths(args.k, args.mode)
                analyzer = session.analyzer
            else:
                paths = engine.top_paths(args.k, args.mode)
            title = (f"Top-{args.k} post-CPPR {args.mode} paths"
                     f"{eco_suffix}")
        return paths, title

    if profiling:
        with collecting() as col:
            paths, title = run()
        profile = col.profile()
        if meta_engine is not None:
            profile = profile.with_meta(meta_engine.profile_meta())
        _write_trace_outputs(args, profile)
    else:
        paths, title = run()
        profile = None

    if args.profile_json:
        # Machine-readable mode: the profile JSON is the whole output.
        print(profile_to_json(profile))
        return 0
    if paths is None:  # --pre: title holds the rendered report
        print(title)
    elif args.save_json is not None:
        from repro.io.reports import save_paths_json
        save_paths_json(analyzer, paths, args.save_json)
        print(f"wrote {len(paths)} paths -> {args.save_json}")
    else:
        print(format_path_report(analyzer, paths, title=title))
    if profile is not None and args.profile:
        print()
        print(format_profile(profile, title=f"Profile ({args.mode})"))
    return 0


def _cmd_eco(args) -> int:
    from repro.io.eco import load_eco_updates
    from repro.obs import collecting, format_profile

    profiling = (args.profile or args.trace_out is not None
                 or args.span_log is not None)
    imported = _design_from_args(args)
    graph, constraints = imported
    corner_set = _corners_from_args(args, imported)
    updates = load_eco_updates(args.updates)
    if not updates:
        raise ReproError(f"{args.updates}: no delay or clock edits")
    analyzer = TimingAnalyzer(graph, constraints)
    engine = CpprEngine(analyzer, CpprOptions(
        backend=args.backend, batch_levels=args.batch_levels,
        corners=corner_set,
        **_resilience_from_args(args)))
    session = engine.session()

    def query():
        if corner_set is None:
            return session.top_paths(args.k, args.mode)
        if args.merged_worst:
            # (corner, path) pairs; slack order matches top_paths.
            return session.merged_worst(args.k, args.mode)
        return session.top_paths_by_corner(args.k, args.mode)

    def go():
        baseline = measure_runtime(query)
        summary = session.update(delays=list(updates.delays),
                                 clock=updates.clock)
        requery = measure_runtime(query)
        return baseline, summary, requery

    if profiling:
        with collecting() as col:
            baseline, summary, requery = go()
        profile = col.profile()
        _write_trace_outputs(args, profile)
    else:
        baseline, summary, requery = go()
        profile = None

    before, after = baseline.value, requery.value

    def worst_slack(result) -> float:
        if not result:
            return float("inf")
        if corner_set is None:
            return result[0].slack
        if args.merged_worst:
            return result[0][1].slack
        return min((paths[0].slack for paths in result.values()
                    if paths), default=float("inf"))

    if corner_set is None:
        print(format_path_report(
            session.analyzer, after,
            title=f"Top-{args.k} post-CPPR {args.mode} paths after ECO "
                  f"({updates.describe()})"))
    elif args.merged_worst:
        print(session.merged_worst_report(
            args.k, args.mode,
            title=f"Top-{args.k} post-CPPR {args.mode} paths after ECO "
                  f"({updates.describe()}; merged worst across "
                  f"corners)"))
    else:
        print("\n".join(session.report(
            args.k, args.mode,
            title=f"Top-{args.k} post-CPPR {args.mode} paths after ECO "
                  f"({updates.describe()}) [corner {name}]",
            corner=name) for name in corner_set.names))
    print()
    print(f"worst slack: {worst_slack(before):.4f} -> "
          f"{worst_slack(after):.4f}")
    print(f"baseline query: {baseline.seconds:.3f}s   "
          f"incremental re-query: {requery.seconds:.3f}s")
    print(f"dirty: {summary['dirty_pins']} pins "
          f"({summary['dirty_fraction']:.2%})"
          + ("  [full rebuild]" if summary["full_rebuild"] else ""))
    print(f"families kept: {summary['families_kept']}   "
          f"dropped: {summary['families_dropped']}")
    stats = session.stats()
    if corner_set is None:
        print(f"family cache: {stats['families']}   "
              f"select cache: {stats['select']}")
    else:
        for name, row in stats["corners"].items():
            print(f"[corner {name}] family cache: {row['families']}   "
                  f"select cache: {row['select']}")
    if profile is not None and args.profile:
        print()
        print(format_profile(profile, title=f"Profile ({args.mode})"))
    return 0


def _cmd_generate(args) -> int:
    if args.suite is not None:
        graph, constraints = build_design(args.suite,
                                          scale=args.suite_scale)
    else:
        spec = RandomDesignSpec(
            name=args.name, seed=args.seed, num_ffs=args.ffs,
            num_gates=args.gates, clock_depth=args.depth,
            layers=args.layers, channels=args.channels)
        graph = random_design(spec)
        constraints = TimingConstraints(suggest_clock_period(graph))
    _save(graph, constraints, args.output)
    print(f"wrote {graph.describe()} -> {args.output}")
    return 0


def _cmd_convert(args) -> int:
    graph, constraints = load_frontend_design(
        args.input, format=args.format or "auto",
        sdc=getattr(args, "sdc", None), sdf=getattr(args, "sdf", None),
        clock_period=getattr(args, "clock_period", None))
    _save(graph, constraints, args.output)
    print(f"converted {args.input} -> {args.output}")
    return 0


def _cmd_compare(args) -> int:
    from repro.obs import collecting, format_profile, profile_to_json

    profiling = args.profile or args.profile_json
    graph, constraints = _design_from_args(args)
    analyzer = TimingAnalyzer(graph, constraints)
    reference: list[float] | None = None
    profiles: list[tuple[str, float, object]] = []
    table_lines = [f"{'timer':<12} {'runtime':>10}   agreement"]
    for name in args.timers.split(","):
        name = name.strip()
        if name not in _TIMERS:
            raise ReproError(
                f"unknown timer {name!r}; choose from "
                f"{sorted(_TIMERS)}")
        timer = _make_timer(name, analyzer, args.backend,
                            args.batch_levels,
                            resilience=_resilience_from_args(args))
        if profiling:
            with collecting() as col:
                result = measure_runtime(
                    lambda t=timer: t.top_slacks(args.k, args.mode))
            profiles.append((name, result.seconds, col.profile()))
        else:
            result = measure_runtime(
                lambda t=timer: t.top_slacks(args.k, args.mode))
        slacks = result.value
        if reference is None:
            reference = slacks
            agreement = "(reference)"
        else:
            same = len(slacks) == len(reference) and all(
                abs(a - b) < 1e-9 for a, b in zip(slacks, reference))
            agreement = "exact match" if same else "MISMATCH"
        table_lines.append(f"{name:<12} {result.seconds:>9.3f}s   "
                           f"{agreement}")
    if args.profile_json:
        import json
        payload = {name: {"seconds": seconds,
                          "profile": profile.to_dict()}
                   for name, seconds, profile in profiles}
        print(json.dumps(payload, indent=2))
        return 0
    print("\n".join(table_lines))
    for name, _seconds, profile in profiles:
        print()
        print(format_profile(profile, title=f"Profile: {name}"))
    return 0


def _cmd_bench_check(args) -> int:
    from repro.obs.sentinel import run_check

    code, lines = run_check(
        args.results_dir, args.baseline,
        tolerance_pct=args.tolerance,
        window=args.window,
        update=args.update,
        skip_absolute=args.skip_absolute)
    print("\n".join(lines))
    return code


def _cmd_serve(args) -> int:
    from repro.server import ServerOptions, TimingService, run_server

    # Eager validation: every envelope flag is checked here, before any
    # design is loaded — a bad --port fails in milliseconds, not after
    # minutes of netlist parsing.
    options = ServerOptions(
        host=args.host, port=args.port,
        max_inflight=args.max_inflight, queue_depth=args.queue_depth,
        deadline=args.deadline, drain_grace=args.drain_grace,
        breaker_failures=args.breaker_failures,
        breaker_degraded=args.breaker_degraded,
        breaker_cooldown=args.breaker_cooldown,
        trace_out=args.trace_out, span_log=args.span_log)
    service = TimingService(options)
    if args.design is not None or args.suite is not None:
        imported = _design_from_args(args)
        corners = _corners_from_args(args, imported)
        graph, constraints = imported
        token = service.add_design(
            graph, constraints,
            CpprOptions(backend=args.backend,
                        batch_levels=args.batch_levels,
                        executor=args.executor, workers=args.workers,
                        corners=corners,
                        **_resilience_from_args(args)),
            token=args.token)
        print(f"loaded design {token!r}: {graph.num_pins} pins, "
              f"{graph.num_ffs} FFs"
              + (f", {len(corners)} corners" if corners else ""))
    print(f"serving on http://{options.host}:{options.port or '<auto>'} "
          f"(max-inflight {options.max_inflight}, queue "
          f"{options.queue_depth}, deadline "
          f"{options.deadline if options.deadline is not None else 'none'}"
          f"s); SIGTERM/SIGINT drains")
    summary = run_server(service)
    print(f"drained: {summary}")
    return 0


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write the run's Chrome trace-event JSON "
                             "(open in https://ui.perfetto.dev)")
    parser.add_argument("--span-log", metavar="FILE",
                        help="write the run's spans as JSONL, one "
                             "record per span")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Common Path Pessimism Removal toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="design statistics (Table III)")
    _add_design_arguments(stats)
    stats.set_defaults(func=_cmd_stats)

    report = sub.add_parser("report", help="critical-path report")
    _add_design_arguments(report)
    report.add_argument("-k", type=int, default=10,
                        help="number of paths (default 10)")
    report.add_argument("--mode", choices=["setup", "hold"],
                        default="setup")
    report.add_argument("--pre", action="store_true",
                        help="pre-CPPR endpoint summary instead")
    report.add_argument("--endpoint", metavar="FF",
                        help="only paths captured by this flip-flop")
    report.add_argument("--pair", metavar="LAUNCH:CAPTURE",
                        help="only paths for this flip-flop pair")
    report.add_argument("--eco", metavar="UPDATES.json",
                        help="apply the ECO update file (delay/clock "
                             "edits) before reporting, via an "
                             "incremental session")
    report.add_argument("--save-json", metavar="FILE",
                        help="write a machine-readable report instead")
    report.add_argument("--profile", action="store_true",
                        help="also print a span tree + counter table")
    report.add_argument("--profile-json", action="store_true",
                        help="print the profile as JSON (and nothing "
                             "else)")
    report.add_argument("--backend",
                        choices=["auto", "scalar", "array"],
                        default="auto",
                        help="compute substrate: scalar reference or "
                             "numpy arrays (default auto)")
    report.add_argument("--batch-levels",
                        choices=["auto", "on", "off"],
                        default="auto",
                        help="run all per-level propagations as one "
                             "(D x n) batched sweep (array backend "
                             "only; default auto)")
    _add_corner_arguments(report)
    _add_trace_arguments(report)
    _add_resilience_arguments(report)
    report.set_defaults(func=_cmd_report)

    eco = sub.add_parser("eco", help="incremental before/after ECO "
                                     "what-if analysis")
    _add_design_arguments(eco)
    eco.add_argument("updates", help="ECO update file (JSON; see "
                                     "docs/INCREMENTAL.md)")
    eco.add_argument("-k", type=int, default=10,
                     help="number of paths (default 10)")
    eco.add_argument("--mode", choices=["setup", "hold"],
                     default="setup")
    eco.add_argument("--profile", action="store_true",
                     help="also print a span tree + counter table")
    eco.add_argument("--backend", choices=["auto", "scalar", "array"],
                     default="auto",
                     help="compute substrate (default auto)")
    eco.add_argument("--batch-levels", choices=["auto", "on", "off"],
                     default="auto",
                     help="level-batched propagation (default auto)")
    _add_corner_arguments(eco)
    _add_trace_arguments(eco)
    _add_resilience_arguments(eco)
    eco.set_defaults(func=_cmd_eco)

    generate = sub.add_parser("generate", help="synthesize a design")
    generate.add_argument("output", help="output file (.cppr or .json)")
    generate.add_argument("--suite", choices=design_names())
    generate.add_argument("--suite-scale", type=float, default=1.0)
    generate.add_argument("--name", default="random")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--ffs", type=int, default=50)
    generate.add_argument("--gates", type=int, default=200)
    generate.add_argument("--depth", type=int, default=5)
    generate.add_argument("--layers", type=int, default=0)
    generate.add_argument("--channels", type=int, default=1)
    generate.set_defaults(func=_cmd_generate)

    convert = sub.add_parser("convert", help="convert between formats")
    convert.add_argument("input",
                         help="any registered input format (.cppr, "
                              ".json, .v, Yosys JSON)")
    convert.add_argument("output", help="output file (.cppr or .json)")
    convert.add_argument("--format", default="auto",
                         choices=["auto"] + [s.name for s in formats()],
                         help="input format (default auto-detect)")
    convert.add_argument("--sdc",
                         help="SDC constraints for netlist inputs")
    convert.add_argument("--sdf", metavar="FILE",
                         help="SDF delay annotation for netlist inputs")
    convert.add_argument("--clock-period", type=float, default=None,
                         metavar="T",
                         help="clock period for a synthesized Yosys "
                              "clock")
    convert.set_defaults(func=_cmd_convert)

    compare = sub.add_parser("compare", help="race timer architectures")
    _add_design_arguments(compare)
    compare.add_argument("-k", type=int, default=50)
    compare.add_argument("--mode", choices=["setup", "hold"],
                         default="setup")
    compare.add_argument("--timers", default="ours,block,bnb",
                         help="comma list: ours,pair,block,bnb,exhaustive")
    compare.add_argument("--profile", action="store_true",
                         help="also print per-timer profiles")
    compare.add_argument("--profile-json", action="store_true",
                         help="print per-timer profiles as JSON (and "
                              "nothing else)")
    compare.add_argument("--backend",
                         choices=["auto", "scalar", "array"],
                         default="auto",
                         help="compute substrate for timers that "
                              "support it (default auto)")
    compare.add_argument("--batch-levels",
                         choices=["auto", "on", "off"],
                         default="auto",
                         help="level-batched propagation for the "
                              "'ours' engine (default auto)")
    _add_resilience_arguments(compare)
    compare.set_defaults(func=_cmd_compare)

    bench = sub.add_parser(
        "bench-check",
        help="perf-regression sentinel over BENCH_*.json results")
    bench.add_argument("--results-dir", default="benchmarks/results",
                       metavar="DIR",
                       help="directory holding BENCH_*.json files "
                            "(default benchmarks/results)")
    bench.add_argument("--baseline",
                       default="benchmarks/results/BENCH_baseline.json",
                       metavar="FILE",
                       help="rolling-baseline file; created on first "
                            "run (default benchmarks/results/"
                            "BENCH_baseline.json)")
    bench.add_argument("--tolerance", type=float, default=15.0,
                       metavar="PCT",
                       help="tolerance band around the rolling median, "
                            "percent (default 15)")
    bench.add_argument("--window", type=int, default=5, metavar="N",
                       help="rolling-window length for new baselines "
                            "(default 5)")
    bench.add_argument("--update", action="store_true",
                       help="on a passing check, fold the current "
                            "values into the rolling window")
    bench.add_argument("--skip-absolute", action="store_true",
                       help="ignore wall-clock (seconds) metrics — use "
                            "when the baseline was recorded on "
                            "different hardware")
    bench.set_defaults(func=_cmd_bench_check)

    serve = sub.add_parser(
        "serve",
        help="persistent timing server (HTTP/JSON; see docs/SERVER.md)")
    _add_design_arguments(serve)
    serve.add_argument("--token", metavar="NAME",
                       help="design token clients address the preloaded "
                            "design by (default: the design's name)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port; 0 picks a free one (default 8787)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       metavar="N",
                       help="requests executing concurrently before new "
                            "ones queue (default 8)")
    serve.add_argument("--queue-depth", type=int, default=16, metavar="N",
                       help="queued requests beyond which the server "
                            "sheds with 429 (default 16)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="default per-request deadline; requests "
                            "override with a \"deadline\" field or "
                            "X-Deadline header, tightest wins "
                            "(default 30)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="how long SIGTERM waits for in-flight "
                            "requests before flushing (default 10)")
    serve.add_argument("--breaker-failures", type=int, default=3,
                       metavar="N",
                       help="consecutive hard failures that open a "
                            "design's circuit (default 3)")
    serve.add_argument("--breaker-degraded", type=int, default=3,
                       metavar="N",
                       help="consecutive degraded results before "
                            "demoting a design down the ladder "
                            "(default 3)")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="SECONDS",
                       help="open-circuit / demotion cooldown "
                            "(default 30)")
    serve.add_argument("--executor",
                       choices=["serial", "thread", "process"],
                       default="serial",
                       help="scheduler executor for the preloaded "
                            "design (default serial)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker count for thread/process executors")
    serve.add_argument("--backend", choices=["auto", "scalar", "array"],
                       default="auto",
                       help="compute substrate (default auto)")
    serve.add_argument("--batch-levels", choices=["auto", "on", "off"],
                       default="auto",
                       help="batched per-level sweeps (default auto)")
    _add_corner_arguments(serve)
    _add_trace_arguments(serve)
    _add_resilience_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); not an error.
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
