"""The timing service: designs, sessions, and the request envelope.

:class:`TimingService` is the transport-independent core of
CPPR-as-a-service.  It loads designs once (one immutable
:class:`~repro.core.arrays.CoreStructure` each), opens many concurrent
:class:`~repro.pipeline.session.CpprSession` /
:class:`~repro.pipeline.session.MultiCornerSession` forks over them
(copy-on-write ``CoreValues`` per session), and answers the
``rank_paths`` / ``compute_slack`` / ``verify_path`` query vocabulary
per corner and mode — plus journaled ECO updates and
checkpoint/restore on sessions.

``handle(method, path, body, deadline)`` is a plain thread-safe call
returning ``(status, payload)``; the asyncio HTTP adapter
(:mod:`repro.server.http`) dispatches socket requests onto a worker
pool, and the test-suite calls it in-process.  Every heavy request
passes through the robustness envelope, in order:

1. **drain gate** — a draining server answers 503 immediately;
2. **admission** (:class:`~repro.server.admission.AdmissionGate`) —
   bounded queue, load-shedding 429s, ``server.inflight`` /
   ``server.shed{reason}`` metrics;
3. **circuit breaker** (:class:`~repro.server.breaker.CircuitBreaker`,
   per design) — open circuits answer 503 with ``Retry-After``;
   repeated degraded results demote the design down the
   ``batched -> array -> scalar`` ladder;
4. **deadline scope** — the request's remaining budget becomes the
   ambient :func:`~repro.cppr.parallel.deadline_scope`, so cooperative
   cancellation propagates into the resilient scheduler and the
   session replay loop; expiry surfaces as a structured 408, never a
   partial report;
5. **crash recovery** — a session operation that dies
   (``server.session_crash``) is rebuilt by journal replay, verified
   to the exact pre-crash ``values_version``, and retried once.

Chaos sites ``server.request_timeout`` / ``server.session_crash`` /
``server.queue_overflow`` strike inside steps 4, 5 and 2 respectively.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import faults
from repro.cppr.engine import CpprEngine, CpprOptions
from repro.cppr.parallel import check_deadline, deadline_scope
from repro.cppr.pathutils import build_timing_path
from repro.exceptions import (AnalysisError, DeadlineExpired,
                              ExecutionError, FormatError, ReproError)
from repro.io.eco import EcoUpdates, parse_eco_updates
from repro.io.reports import paths_to_dicts
from repro.obs import collector as _obs
from repro.obs import metrics as _metrics
from repro.obs.collector import Collector
from repro.pipeline.session import MultiCornerSession
from repro.server.admission import AdmissionGate
from repro.server.breaker import DEMOTION_RUNGS, CircuitBreaker
from repro.server.errors import (ApiError, BadRequest, DeadlineError,
                                 Draining, InternalError, MethodNotAllowed,
                                 NotFound, SessionCrashed)
from repro.server.journal import (SessionJournal, normalize_basis,
                                  replay_journal)
from repro.sta.modes import AnalysisMode
from repro.sta.timing import TimingAnalyzer

__all__ = ["ServerOptions", "TimingService"]

_REQUESTS = _metrics.REGISTRY.counter(
    "server.requests", labels=("endpoint", "status"),
    help="Requests handled by the timing server, by endpoint and "
         "HTTP status")

_REQUEST_SECONDS = _metrics.REGISTRY.histogram(
    "server.request_seconds",
    buckets=(0.005, 0.02, 0.1, 0.5, 2.0, 10.0),
    help="Wall-clock latency of handled requests")

_RECOVERY = _metrics.REGISTRY.counter(
    "server.recovery", labels=("outcome",),
    help="Session crash-recovery attempts by outcome "
         "(replayed / diverged / failed)")

#: CpprOptions fields a client may set per design / per session.
_OPTION_KEYS = frozenset({
    "executor", "workers", "include_self_loops",
    "include_primary_inputs", "include_output_tests", "heap_capacity",
    "backend", "batch_levels", "task_timeout", "max_retries",
    "retry_backoff", "strict"})


@dataclass(frozen=True, slots=True)
class ServerOptions:
    """Tunables of the robustness envelope (validated eagerly)."""

    host: str = "127.0.0.1"
    port: int = 8787
    max_inflight: int = 8
    queue_depth: int = 16
    deadline: float | None = 30.0
    drain_grace: float = 10.0
    breaker_failures: int = 3
    breaker_degraded: int = 3
    breaker_cooldown: float = 30.0
    trace_out: str | None = None
    span_log: str | None = None

    def __post_init__(self) -> None:
        if not self.host:
            raise AnalysisError("server host must be non-empty")
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or not 0 <= self.port <= 65535:
            raise AnalysisError(
                f"server port must be an integer in [0, 65535], "
                f"got {self.port!r}")
        if not isinstance(self.max_inflight, int) \
                or isinstance(self.max_inflight, bool) \
                or self.max_inflight < 1:
            raise AnalysisError(
                f"max-inflight must be a positive integer, "
                f"got {self.max_inflight!r}")
        if not isinstance(self.queue_depth, int) \
                or isinstance(self.queue_depth, bool) \
                or self.queue_depth < 0:
            raise AnalysisError(
                f"queue-depth must be a non-negative integer, "
                f"got {self.queue_depth!r}")
        if self.deadline is not None and (
                isinstance(self.deadline, bool)
                or not isinstance(self.deadline, (int, float))
                or self.deadline <= 0):
            raise AnalysisError(
                f"deadline must be a positive number of seconds or "
                f"None, got {self.deadline!r}")
        if (isinstance(self.drain_grace, bool)
                or not isinstance(self.drain_grace, (int, float))
                or self.drain_grace < 0):
            raise AnalysisError(
                f"drain-grace must be >= 0 seconds, "
                f"got {self.drain_grace!r}")
        for name, value in (("breaker-failures", self.breaker_failures),
                            ("breaker-degraded", self.breaker_degraded)):
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise AnalysisError(
                    f"{name} must be a positive integer, got {value!r}")
        if (isinstance(self.breaker_cooldown, bool)
                or not isinstance(self.breaker_cooldown, (int, float))
                or self.breaker_cooldown < 0):
            raise AnalysisError(
                f"breaker-cooldown must be >= 0 seconds, "
                f"got {self.breaker_cooldown!r}")


@dataclass
class _DesignEntry:
    token: str
    analyzer: TimingAnalyzer
    options: CpprOptions
    engine: CpprEngine
    breaker: CircuitBreaker
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Lazily constructed demoted-rung engines, keyed by rung index.
    rung_engines: dict[int, CpprEngine] = field(default_factory=dict)

    def engine_for_rung(self, rung: int) -> CpprEngine:
        if rung == 0:
            return self.engine
        with self.lock:
            engine = self.rung_engines.get(rung)
            if engine is None:
                engine = self.engine.with_options(**DEMOTION_RUNGS[rung])
                engine.meta_context = dict(self.engine.meta_context)
                self.rung_engines[rung] = engine
        return engine


@dataclass
class _SessionEntry:
    sid: str
    design: _DesignEntry
    session: Any  # CpprSession | MultiCornerSession
    journal: SessionJournal
    lock: threading.Lock = field(default_factory=threading.Lock)
    crashes: int = 0
    recovered: int = 0


class TimingService:
    """The transport-independent CPPR service (see module docstring)."""

    def __init__(self, options: ServerOptions | None = None) -> None:
        self.options = options or ServerOptions()
        self.gate = AdmissionGate(self.options.max_inflight,
                                  self.options.queue_depth)
        self._lock = threading.Lock()
        self._designs: dict[str, _DesignEntry] = {}
        self._sessions: dict[str, _SessionEntry] = {}
        self._design_seq = itertools.count(1)
        self._session_seq = itertools.count(1)
        self._draining = False
        self._drained = threading.Event()
        self._started = time.monotonic()
        self._collector: Collector | None = None
        self._previous_collector: Collector | None = None
        #: Set by the HTTP layer once the listening socket is bound.
        self.bound_port: int | None = None
        #: Profile of the most recent heavy request served while a
        #: collector was active, stamped with the serving context
        #: (design token, session id, corner count) via the engine's /
        #: session's ``profile_meta()``.
        self.last_profile = None

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def start_collecting(self) -> None:
        """Install a server-lifetime collector (for trace export)."""
        if self._collector is None:
            self._collector = Collector()
            self._previous_collector = _obs.ACTIVE
            _obs.ACTIVE = self._collector

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting heavy requests (in-flight work continues)."""
        self._draining = True

    def drain(self, grace: float | None = None) -> dict:
        """Finish in-flight work, flush obs state, sweep shm segments.

        Returns a summary of what was flushed.  Safe to call more than
        once; the drain gate stays closed afterwards.
        """
        self.begin_drain()
        grace = self.options.drain_grace if grace is None else grace
        waited = time.monotonic()
        while self.gate.inflight > 0 \
                and time.monotonic() - waited < grace:
            time.sleep(0.01)
        summary = {"inflight_at_flush": self.gate.inflight,
                   "trace_out": None, "span_log": None}
        if self._collector is not None:
            profile = self._collector.profile().with_meta(
                self._serving_meta())
            if self.options.trace_out:
                from repro.obs.export import write_chrome_trace
                write_chrome_trace(self.options.trace_out, profile)
                summary["trace_out"] = self.options.trace_out
            if self.options.span_log:
                from repro.obs.export import write_span_log
                write_span_log(self.options.span_log, profile)
                summary["span_log"] = self.options.span_log
            _obs.ACTIVE = self._previous_collector
            self._collector = None
        from repro.core import shm
        shm.REGISTRY.sweep()
        self._drained.set()
        return summary

    def _serving_meta(self) -> dict[str, str]:
        with self._lock:
            return {"server": "repro-timing-service",
                    "designs": str(len(self._designs)),
                    "sessions": str(len(self._sessions))}

    # ==================================================================
    # The request envelope
    # ==================================================================
    def handle(self, method: str, path: str,
               body: dict | None = None,
               deadline: float | None = None) -> tuple[int, dict]:
        """Serve one request; returns ``(status, json_payload)``.

        ``deadline`` (seconds, e.g. from an ``X-Deadline`` header) and
        a ``"deadline"`` body field override the server default; the
        tightest given budget wins.  Never raises — every failure is a
        structured error document.
        """
        started = time.monotonic()
        endpoint = "unmatched"
        heavy = False
        try:
            if body is None:
                body = {}
            if not isinstance(body, dict):
                raise BadRequest("request body must be a JSON object")
            name, heavy, fn, params = self._match(method.upper(), path)
            endpoint = name
            budget = self._budget(body, deadline)
            if heavy:
                if self._draining:
                    raise Draining(
                        "server is draining; no new work accepted")
                expires_at = (None if budget is None
                              else started + budget)
                payload = self._run_heavy(fn, params, body, expires_at)
            else:
                payload = fn(params, body)
            status = 200
            if not isinstance(payload, dict):
                payload = {"result": payload}
            payload.setdefault("ok", True)
        except ApiError as exc:
            status, payload = exc.status, exc.body()
        except DeadlineExpired as exc:
            error = DeadlineError(str(exc))
            status, payload = error.status, error.body()
        except FormatError as exc:
            error = BadRequest(str(exc))
            status, payload = error.status, error.body()
        except ExecutionError as exc:
            error = InternalError(f"query execution failed: {exc}")
            status, payload = error.status, error.body()
        except AnalysisError as exc:
            error = BadRequest(str(exc))
            status, payload = error.status, error.body()
        except ReproError as exc:
            error = InternalError(str(exc))
            status, payload = error.status, error.body()
        except Exception as exc:  # noqa: BLE001 - the last line of defense
            error = InternalError(f"unexpected server error: {exc!r}")
            status, payload = error.status, error.body()
        elapsed = time.monotonic() - started
        _REQUESTS.labels(endpoint=endpoint, status=str(status)).inc()
        if heavy:
            _REQUEST_SECONDS.labels().observe(elapsed)
        return status, payload

    def _budget(self, body: dict, header: float | None) -> float | None:
        budget = self.options.deadline
        if header is not None:
            budget = header if budget is None else min(budget, header)
        raw = body.get("deadline")
        if raw is not None:
            if isinstance(raw, bool) or not isinstance(raw, (int, float)) \
                    or raw <= 0:
                raise BadRequest(
                    f"deadline must be a positive number of seconds, "
                    f"got {raw!r}")
            budget = raw if budget is None else min(budget, float(raw))
        return budget

    def _run_heavy(self, fn: Callable, params: dict, body: dict,
                   expires_at: float | None) -> dict:
        remaining = (None if expires_at is None
                     else expires_at - time.monotonic())
        with self.gate.admit(remaining):
            with deadline_scope(expires_at):
                # The injected hung-handler: sleeps, so the next
                # deadline check answers 408 before any compute runs.
                faults.check("server.request_timeout")
                check_deadline()
                return fn(params, body)

    # ==================================================================
    # Routing
    # ==================================================================
    def _match(self, method: str, path: str):
        segments = [s for s in path.split("?")[0].split("/") if s]
        for (m, pattern, name, heavy, fn) in self._routes():
            if len(pattern) != len(segments):
                continue
            params = {}
            for want, got in zip(pattern, segments):
                if want.startswith("{"):
                    params[want[1:-1]] = got
                elif want != got:
                    break
            else:
                if m != method:
                    continue
                return name, heavy, fn, params
        # Distinguish 405 from 404: does any method match the path?
        for (m, pattern, name, _heavy, _fn) in self._routes():
            if len(pattern) == len(segments) and all(
                    want.startswith("{") or want == got
                    for want, got in zip(pattern, segments)):
                raise MethodNotAllowed(
                    f"{method} not allowed on {path}")
        raise NotFound(f"no route for {method} {path}")

    def _routes(self):
        return (
            ("GET", ["healthz"], "healthz", False, self._ep_healthz),
            ("GET", ["metrics"], "metrics", False, self._ep_metrics),
            ("GET", ["designs"], "designs.list", False,
             self._ep_designs_list),
            ("POST", ["designs"], "designs.create", True,
             self._ep_designs_create),
            ("GET", ["designs", "{token}"], "designs.get", False,
             self._ep_design_get),
            ("DELETE", ["designs", "{token}"], "designs.delete", False,
             self._ep_design_delete),
            ("POST", ["designs", "{token}", "rank_paths"],
             "designs.rank_paths", True, self._ep_design_rank),
            ("POST", ["designs", "{token}", "compute_slack"],
             "designs.compute_slack", True, self._ep_design_slack),
            ("POST", ["designs", "{token}", "verify_path"],
             "designs.verify_path", True, self._ep_design_verify),
            ("GET", ["sessions"], "sessions.list", False,
             self._ep_sessions_list),
            ("POST", ["sessions"], "sessions.create", True,
             self._ep_sessions_create),
            ("POST", ["sessions", "restore"], "sessions.restore", True,
             self._ep_sessions_restore),
            ("GET", ["sessions", "{sid}"], "sessions.get", False,
             self._ep_session_get),
            ("DELETE", ["sessions", "{sid}"], "sessions.delete", False,
             self._ep_session_delete),
            ("POST", ["sessions", "{sid}", "update"], "sessions.update",
             True, self._ep_session_update),
            ("POST", ["sessions", "{sid}", "rank_paths"],
             "sessions.rank_paths", True, self._ep_session_rank),
            ("POST", ["sessions", "{sid}", "compute_slack"],
             "sessions.compute_slack", True, self._ep_session_slack),
            ("POST", ["sessions", "{sid}", "verify_path"],
             "sessions.verify_path", True, self._ep_session_verify),
            ("GET", ["sessions", "{sid}", "checkpoint"],
             "sessions.checkpoint", False, self._ep_session_checkpoint),
        )

    # ==================================================================
    # Designs
    # ==================================================================
    def add_design(self, graph, constraints,
                   cppr_options: CpprOptions | None = None,
                   token: str | None = None) -> str:
        """Register a loaded design (the CLI preload path)."""
        if token is None:
            token = graph.name or f"d{next(self._design_seq)}"
        analyzer = TimingAnalyzer(graph, constraints)
        options = cppr_options or CpprOptions()
        engine = CpprEngine(analyzer, options)
        corners = len(engine._corner_analyzers)
        engine.meta_context = {"design": token,
                               "serving_corners": str(corners)}
        entry = _DesignEntry(
            token=token, analyzer=analyzer, options=options,
            engine=engine,
            breaker=CircuitBreaker(
                failure_threshold=self.options.breaker_failures,
                degraded_threshold=self.options.breaker_degraded,
                cooldown=self.options.breaker_cooldown))
        with self._lock:
            if token in self._designs:
                raise BadRequest(f"design token {token!r} already loaded")
            self._designs[token] = entry
        return token

    def _design(self, token: str) -> _DesignEntry:
        with self._lock:
            entry = self._designs.get(token)
        if entry is None:
            raise NotFound(f"unknown design {token!r}")
        return entry

    def _design_info(self, entry: _DesignEntry) -> dict:
        graph = entry.analyzer.graph
        with self._lock:
            sessions = [sid for sid, s in self._sessions.items()
                        if s.design is entry]
        return {"token": entry.token,
                "design": graph.name,
                "pins": graph.num_pins,
                "ffs": graph.num_ffs,
                "corners": list(entry.engine._corner_analyzers),
                "backend": entry.engine.backend,
                "executor": entry.options.executor,
                "breaker": entry.breaker.describe(),
                "sessions": sessions}

    def _ep_designs_list(self, params: dict, body: dict) -> dict:
        with self._lock:
            entries = list(self._designs.values())
        return {"designs": [self._design_info(e) for e in entries]}

    def _ep_designs_create(self, params: dict, body: dict) -> dict:
        known = {"suite", "scale", "path", "token", "options",
                 "corners", "deadline", "format", "sdc", "sdf",
                 "sdf_corners", "clock_period"}
        unknown = set(body) - known
        if unknown:
            raise BadRequest(
                f"unknown field(s) {sorted(unknown)}; expected "
                f"{sorted(known)}")
        suite, path = body.get("suite"), body.get("path")
        if (suite is None) == (path is None):
            raise BadRequest(
                "pass exactly one of 'suite' or 'path'")
        cppr_options = self._parse_options(body.get("options"))
        corner_list: list = []
        corners = body.get("corners")
        if corners is not None:
            from repro.corners import Corner
            if not isinstance(corners, dict) or not corners:
                raise BadRequest(
                    "'corners' must map corner names to ECO objects")
            corner_list = [
                Corner.from_eco(name,
                                parse_eco_updates(
                                    eco, where=f"corners[{name!r}]"))
                for name, eco in corners.items()]
        if suite is not None:
            for key in ("format", "sdc", "sdf", "sdf_corners",
                        "clock_period"):
                if body.get(key):
                    raise BadRequest(
                        f"{key!r} applies to file designs, not 'suite'")
            from repro.workloads.suite import build_design
            scale = body.get("scale", 1.0)
            if isinstance(scale, bool) \
                    or not isinstance(scale, (int, float)) or scale <= 0:
                raise BadRequest(
                    f"scale must be a positive number, got {scale!r}")
            try:
                graph, constraints = build_design(suite, scale=float(scale))
            except KeyError as exc:
                raise BadRequest(str(exc.args[0]) if exc.args
                                 else f"unknown suite {suite!r}") from None
        else:
            if not isinstance(path, str):
                raise BadRequest("'path' must be a file path string")
            format_name = body.get("format", "auto")
            if not isinstance(format_name, str):
                raise BadRequest("'format' must be a format name string")
            clock_period = body.get("clock_period")
            if clock_period is not None and (
                    isinstance(clock_period, bool)
                    or not isinstance(clock_period, (int, float))
                    or clock_period <= 0):
                raise BadRequest(
                    f"clock_period must be a positive number, got "
                    f"{clock_period!r}")
            from repro.io.frontend import load_design
            imported = load_design(
                path, format=format_name,
                sdc=body.get("sdc"), sdf=body.get("sdf"),
                clock_period=clock_period,
                sdf_corners=bool(body.get("sdf_corners")))
            graph, constraints = imported
            if imported.corners is not None:
                corner_list = list(imported.corners) + corner_list
        if corner_list:
            from repro.corners import CornerSet
            cppr_options = CpprOptions(**{
                **_options_dict(cppr_options),
                "corners": CornerSet(corner_list)})
        token = self.add_design(graph, constraints, cppr_options,
                                token=body.get("token"))
        return {"token": token,
                "design": self._design_info(self._design(token))}

    def _ep_design_get(self, params: dict, body: dict) -> dict:
        return {"design": self._design_info(self._design(params["token"]))}

    def _ep_design_delete(self, params: dict, body: dict) -> dict:
        entry = self._design(params["token"])
        with self._lock:
            del self._designs[entry.token]
            dropped = [sid for sid, s in self._sessions.items()
                       if s.design is entry]
            for sid in dropped:
                del self._sessions[sid]
        return {"deleted": entry.token, "sessions_dropped": dropped}

    # -- design-scoped queries -----------------------------------------
    def _ep_design_rank(self, params: dict, body: dict) -> dict:
        return self._design_query(params["token"], body, self._rank)

    def _ep_design_slack(self, params: dict, body: dict) -> dict:
        return self._design_query(params["token"], body, self._slack)

    def _ep_design_verify(self, params: dict, body: dict) -> dict:
        return self._design_query(params["token"], body, self._verify)

    def _design_query(self, token: str, body: dict, op) -> dict:
        entry = self._design(token)
        rung = entry.breaker.before_request()
        engine = entry.engine_for_rung(rung)
        try:
            with entry.lock:
                payload = op(_EngineTarget(engine), body)
        except (DeadlineExpired, ApiError):
            # Deadlines and structured rejections are the client's
            # budget or the envelope itself — not design health.
            raise
        except AnalysisError as exc:
            if isinstance(exc, ExecutionError):
                entry.breaker.record_failure()
            raise
        except Exception:
            entry.breaker.record_failure()
            raise
        degraded = bool(engine.last_degraded)
        entry.breaker.record_success(degraded=degraded)
        if rung > 0:
            payload["demoted"] = {
                "rung": rung,
                "overrides": dict(DEMOTION_RUNGS[rung]),
                "retry_after": round(entry.breaker.retry_after(), 3)}
        if degraded:
            payload["degraded"] = True
        self._stamp_profile(engine)
        return payload

    def _stamp_profile(self, target) -> None:
        col = _obs.ACTIVE
        if col is not None:
            self.last_profile = col.profile().with_meta(
                target.profile_meta())

    # ==================================================================
    # Sessions
    # ==================================================================
    def _ep_sessions_list(self, params: dict, body: dict) -> dict:
        with self._lock:
            entries = list(self._sessions.values())
        return {"sessions": [self._session_info(e) for e in entries]}

    def _session_info(self, entry: _SessionEntry) -> dict:
        return {"sid": entry.sid,
                "design": entry.design.token,
                "basis": normalize_basis(entry.session.basis()),
                "journal_entries": len(entry.journal),
                "crashes": entry.crashes,
                "recovered": entry.recovered}

    def _ep_sessions_create(self, params: dict, body: dict) -> dict:
        known = {"design", "options", "deadline"}
        unknown = set(body) - known
        if unknown:
            raise BadRequest(
                f"unknown field(s) {sorted(unknown)}; expected "
                f"{sorted(known)}")
        token = body.get("design")
        if not isinstance(token, str):
            raise BadRequest("'design' must name a loaded design token")
        design = self._design(token)
        changes = _options_changes(self._parse_options(
            body.get("options")))
        session = design.engine.session(**changes)
        return {"session": self._register_session(design, session)}

    def _register_session(self, design: _DesignEntry, session) -> dict:
        sid = f"s{next(self._session_seq)}"
        corners = (len(session.sessions)
                   if isinstance(session, MultiCornerSession) else 0)
        session.meta_context = {"design": design.token,
                                "session": sid,
                                "serving_corners": str(corners)}
        entry = _SessionEntry(sid=sid, design=design, session=session,
                              journal=SessionJournal(design.token))
        with self._lock:
            self._sessions[sid] = entry
        return self._session_info(entry)

    def _session_entry(self, sid: str) -> _SessionEntry:
        with self._lock:
            entry = self._sessions.get(sid)
        if entry is None:
            raise NotFound(f"unknown session {sid!r}")
        return entry

    def _ep_session_get(self, params: dict, body: dict) -> dict:
        return {"session": self._session_info(
            self._session_entry(params["sid"]))}

    def _ep_session_delete(self, params: dict, body: dict) -> dict:
        entry = self._session_entry(params["sid"])
        with self._lock:
            self._sessions.pop(entry.sid, None)
        return {"deleted": entry.sid}

    def _ep_session_checkpoint(self, params: dict, body: dict) -> dict:
        entry = self._session_entry(params["sid"])
        with entry.lock:
            checkpoint = entry.journal.to_dict()
            checkpoint["live_basis"] = normalize_basis(
                entry.session.basis())
        return {"checkpoint": checkpoint}

    def _ep_sessions_restore(self, params: dict, body: dict) -> dict:
        raw = body.get("checkpoint")
        if raw is None:
            raise BadRequest("missing 'checkpoint' document")
        journal = SessionJournal.from_dict(raw)
        design = self._design(journal.design)
        session = replay_journal(journal, design.engine)
        info = self._register_session(design, session)
        with self._lock:
            self._sessions[info["sid"]].journal = journal
        info["basis"] = normalize_basis(session.basis())
        return {"session": info, "replayed_entries": len(journal)}

    def _ep_session_update(self, params: dict, body: dict) -> dict:
        entry = self._session_entry(params["sid"])
        known = {"delays", "clock", "deadline"}
        unknown = set(body) - known
        if unknown:
            raise BadRequest(
                f"unknown field(s) {sorted(unknown)}; expected "
                f"{sorted(known)}")
        eco = parse_eco_updates(
            {k: body[k] for k in ("delays", "clock") if k in body},
            where="<update>")

        def op(session):
            summary = session.update(delays=eco.delays,
                                     clock=dict(eco.clock) or None)
            entry.journal.record(eco, session.basis())
            return {"update": summary,
                    "basis": normalize_basis(session.basis()),
                    "journal_entries": len(entry.journal)}

        return self._session_op(entry, op)

    def _ep_session_rank(self, params: dict, body: dict) -> dict:
        return self._session_query(params["sid"], body, self._rank)

    def _ep_session_slack(self, params: dict, body: dict) -> dict:
        return self._session_query(params["sid"], body, self._slack)

    def _ep_session_verify(self, params: dict, body: dict) -> dict:
        return self._session_query(params["sid"], body, self._verify)

    def _session_query(self, sid: str, body: dict, op) -> dict:
        entry = self._session_entry(sid)

        def run(session):
            payload = op(_SessionTarget(session), body)
            payload["basis"] = normalize_basis(session.basis())
            return payload

        return self._session_op(entry, run)

    def _session_op(self, entry: _SessionEntry, op) -> dict:
        """Run one session operation with crash recovery by replay."""
        with entry.lock:
            try:
                faults.check("server.session_crash")
                payload = op(entry.session)
            except (DeadlineExpired, ApiError, ReproError):
                raise
            except Exception as exc:
                self._recover(entry, exc)
                try:
                    payload = op(entry.session)
                except (DeadlineExpired, ApiError, ReproError):
                    raise
                except Exception as retry_exc:
                    _RECOVERY.labels(outcome="failed").inc_durable()
                    entry.design.breaker.record_failure()
                    raise SessionCrashed(
                        f"session {entry.sid} crashed again after "
                        f"recovery: {retry_exc!r}") from retry_exc
        entry.design.breaker.record_success()
        self._stamp_profile(entry.session)
        return payload

    def _recover(self, entry: _SessionEntry, exc: Exception) -> None:
        """Rebuild a crashed session by journal replay (verified)."""
        entry.crashes += 1
        try:
            session = replay_journal(entry.journal, entry.design.engine)
        except SessionCrashed:
            _RECOVERY.labels(outcome="diverged").inc_durable()
            entry.design.breaker.record_failure()
            raise
        session.meta_context = dict(entry.session.meta_context)
        entry.session = session
        entry.recovered += 1
        _RECOVERY.labels(outcome="replayed").inc_durable()
        _obs.add("server.session.recovered")

    # ==================================================================
    # The query vocabulary (shared by designs and sessions)
    # ==================================================================
    def _rank(self, target: "_Target", body: dict) -> dict:
        k, mode, corner = self._query_args(target, body)
        page = _page_arg(body, "page", 0)
        page_size = _page_arg(body, "page_size", k, minimum=1)
        paths = target.top_paths(k, mode, corner)
        start = page * page_size
        sliced = paths[start:start + page_size]
        serialized = paths_to_dicts(target.analyzer(corner), sliced)
        for offset, entry in enumerate(serialized):
            entry["rank"] = start + offset + 1
        return {"mode": mode.value,
                "corner": corner,
                "k": k,
                "total": len(paths),
                "page": page,
                "page_size": page_size,
                "paths": serialized}

    def _slack(self, target: "_Target", body: dict) -> dict:
        k, mode, corner = self._query_args(target, body)
        paths = target.top_paths(k, mode, corner)
        return {"mode": mode.value,
                "corner": corner,
                "k": k,
                "slacks": [path.slack for path in paths],
                "wns": paths[0].slack if paths else None}

    def _verify(self, target: "_Target", body: dict) -> dict:
        _k, mode, corner = self._query_args(target, body, need_k=False)
        pins = body.get("pins")
        if not isinstance(pins, list) or not pins \
                or not all(isinstance(p, str) for p in pins):
            raise BadRequest(
                "'pins' must be a non-empty list of pin names")
        analyzer = target.analyzer(corner)
        graph = analyzer.graph
        indices = []
        for name in pins:
            index = graph.pin_index.get(name)
            if index is None:
                raise BadRequest(f"unknown pin {name!r}")
            indices.append(index)
        path = build_timing_path(analyzer, tuple(indices), mode)
        payload = {"mode": mode.value,
                   "corner": corner,
                   "path": paths_to_dicts(analyzer, [path])[0]}
        expected = body.get("expect_slack")
        if expected is not None:
            if isinstance(expected, bool) \
                    or not isinstance(expected, (int, float)):
                raise BadRequest("expect_slack must be a number")
            payload["matches"] = (
                abs(path.slack - float(expected)) <= 1e-9)
        return payload

    def _query_args(self, target: "_Target", body: dict,
                    need_k: bool = True):
        known = {"k", "mode", "corner", "page", "page_size", "pins",
                 "expect_slack", "deadline"}
        unknown = set(body) - known
        if unknown:
            raise BadRequest(
                f"unknown field(s) {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}")
        k = body.get("k", 1 if not need_k else None)
        if need_k:
            if k is None:
                raise BadRequest("missing 'k' (number of paths)")
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                raise BadRequest(
                    f"k must be a positive integer, got {k!r}")
        mode_raw = body.get("mode", "setup")
        try:
            mode = AnalysisMode.coerce(mode_raw)
        except (ValueError, KeyError, AnalysisError):
            raise BadRequest(
                f"unknown mode {mode_raw!r}; expected 'setup' or "
                f"'hold'") from None
        corner = body.get("corner")
        if corner is not None and not isinstance(corner, str):
            raise BadRequest("'corner' must be a corner name string")
        target.validate_corner(corner)
        return k, mode, corner

    # ==================================================================
    # Introspection endpoints
    # ==================================================================
    def _ep_healthz(self, params: dict, body: dict) -> dict:
        with self._lock:
            designs = len(self._designs)
            sessions = len(self._sessions)
            recovered = sum(e.recovered for e in self._sessions.values())
            crashes = sum(e.crashes for e in self._sessions.values())
        return {"status": "draining" if self._draining else "serving",
                "uptime_seconds": round(
                    time.monotonic() - self._started, 3),
                "designs": designs,
                "sessions": sessions,
                "inflight": self.gate.inflight,
                "waiting": self.gate.waiting,
                "shed": dict(self.gate.shed_counts),
                "crashes": crashes,
                "recovered": recovered}

    def _ep_metrics(self, params: dict, body: dict) -> dict:
        return {"metrics": _metrics.REGISTRY.snapshot()}

    # ==================================================================
    def _parse_options(self, raw) -> CpprOptions:
        if raw is None:
            return CpprOptions()
        if not isinstance(raw, dict):
            raise BadRequest("'options' must be an object")
        unknown = set(raw) - _OPTION_KEYS
        if unknown:
            raise BadRequest(
                f"unknown option(s) {sorted(unknown)}; valid options: "
                f"{sorted(_OPTION_KEYS)}")
        try:
            options = CpprOptions(**raw)
            # Validation normally happens at engine construction;
            # surface it here so bad options 400 before any load.
            from repro.cppr.engine import _validate_options
            _validate_options(options)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid options: {exc}") from None
        return options


def _options_dict(options: CpprOptions) -> dict:
    from dataclasses import asdict, fields
    return {f.name: getattr(options, f.name)
            for f in fields(CpprOptions)}


def _options_changes(options: CpprOptions) -> dict:
    """Only the fields that differ from the defaults (for session())."""
    defaults = CpprOptions()
    return {name: value
            for name, value in _options_dict(options).items()
            if value != getattr(defaults, name)}


def _page_arg(body: dict, key: str, default: int,
              minimum: int = 0) -> int:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int) \
            or value < minimum:
        raise BadRequest(
            f"{key} must be an integer >= {minimum}, got {value!r}")
    return value


class _Target:
    """Uniform query adapter over an engine or a session."""


class _EngineTarget(_Target):
    def __init__(self, engine: CpprEngine) -> None:
        self.engine = engine

    def top_paths(self, k, mode, corner):
        return self.engine.top_paths(k, mode, corner=corner)

    def analyzer(self, corner):
        if corner is None:
            return self.engine.analyzer
        return self.engine._corner_analyzers[corner]

    def validate_corner(self, corner) -> None:
        self.engine._corner_key(corner)

    def profile_meta(self):
        return self.engine.profile_meta()


class _SessionTarget(_Target):
    def __init__(self, session) -> None:
        self.session = session

    def top_paths(self, k, mode, corner):
        if isinstance(self.session, MultiCornerSession):
            return self.session.top_paths(k, mode, corner)
        if corner is not None:
            raise BadRequest(
                f"this session has no corners; drop corner={corner!r}")
        return self.session.top_paths(k, mode)

    def analyzer(self, corner):
        if isinstance(self.session, MultiCornerSession):
            return self.session._session(corner).analyzer
        return self.session.analyzer

    def validate_corner(self, corner) -> None:
        if isinstance(self.session, MultiCornerSession):
            self.session._session(corner)
        elif corner is not None:
            raise BadRequest(
                f"this session has no corners; drop corner={corner!r}")

    def profile_meta(self):
        return self.session.profile_meta()
