"""The asyncio HTTP/1.1 face of the timing service.

A deliberately small, dependency-free server: the event loop only
parses requests and writes responses; every :meth:`TimingService.handle`
call runs on a worker-thread pool so the admission gate can park queued
requests without stalling the loop.  Supported surface:

* HTTP/1.1 with ``Content-Length`` bodies (no chunked encoding) and
  keep-alive,
* JSON in / JSON out (``Content-Type: application/json``),
* an ``X-Deadline`` request header (seconds) as an alternative to the
  ``"deadline"`` body field — the tightest budget wins,
* ``Retry-After`` response headers mirrored from structured 429/503
  bodies.

:func:`run_server` is the CLI entry point: it serves until SIGTERM /
SIGINT, then **drains** — stops admitting, finishes in-flight requests
within the grace period, flushes the observability plane (Chrome trace
/ span log), and sweeps shared-memory segments — before the process
exits.  :class:`BackgroundServer` runs the same stack on an ephemeral
port inside a daemon thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.server.service import ServerOptions, TimingService

__all__ = ["BackgroundServer", "run_server", "serve"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _encode_response(status: int, payload: dict,
                     keep_alive: bool) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    retry_after = (payload.get("error") or {}).get("retry_after") \
        if isinstance(payload, dict) else None
    if retry_after is not None:
        lines.append(f"Retry-After: {retry_after}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, headers, body)`` or
    ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ValueError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise ValueError("request head too large")
    text = head.decode("latin-1")
    request_line, *header_lines = text.split("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {request_line!r}")
    method, path, _version = parts
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise ValueError(f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class _HttpServer:
    """One service + one asyncio server + one worker pool."""

    def __init__(self, service: TimingService) -> None:
        self.service = service
        options = service.options
        self._pool = ThreadPoolExecutor(
            max_workers=options.max_inflight + options.queue_depth + 4,
            thread_name_prefix="repro-serve")
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def start(self) -> None:
        options = self.service.options
        self._server = await asyncio.start_server(
            self._handle_connection, options.host, options.port,
            limit=_MAX_HEADER_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except (ValueError, asyncio.IncompleteReadError) as exc:
                    writer.write(_encode_response(
                        400, {"ok": False, "error": {
                            "code": "bad_request",
                            "message": f"unparseable request: {exc}"}},
                        keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                method, path, headers, raw_body = request
                body, parse_error = None, None
                if raw_body:
                    try:
                        body = json.loads(raw_body.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        parse_error = f"request body is not JSON: {exc}"
                deadline = None
                raw_deadline = headers.get("x-deadline")
                if raw_deadline is not None:
                    try:
                        deadline = float(raw_deadline)
                    except ValueError:
                        parse_error = (f"X-Deadline header must be "
                                       f"seconds, got {raw_deadline!r}")
                if parse_error is not None:
                    status, payload = 400, {
                        "ok": False, "error": {"code": "bad_request",
                                               "message": parse_error}}
                else:
                    status, payload = await loop.run_in_executor(
                        self._pool, self.service.handle,
                        method, path, body, deadline)
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                writer.write(_encode_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def shutdown_pool(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=False)


async def serve(service: TimingService, *,
                ready: threading.Event | None = None,
                stop: asyncio.Event | None = None) -> dict:
    """Serve until ``stop`` is set (or SIGTERM/SIGINT), then drain.

    Returns the drain summary.  ``ready`` (if given) is set once the
    listening socket is bound — the bound port is published on
    ``service.bound_port``.
    """
    if service.options.trace_out or service.options.span_log:
        service.start_collecting()
    server = _HttpServer(service)
    await server.start()
    service.bound_port = server.port
    stop = stop or asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                break
    try:
        if ready is not None:
            ready.set()
        await stop.wait()
        # Drain: refuse new work, stop accepting, finish in-flight.
        service.begin_drain()
        await server.close()
        summary = await loop.run_in_executor(None, service.drain)
        server.shutdown_pool()
        return summary
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def run_server(service: TimingService) -> dict:
    """Blocking entry point used by ``repro serve``."""
    return asyncio.run(serve(service))


class BackgroundServer:
    """The full HTTP stack on an ephemeral port, in a daemon thread.

    For tests and benchmarks::

        with BackgroundServer(service) as server:
            status, payload = server.request("GET", "/healthz")
    """

    def __init__(self, service: TimingService) -> None:
        self.service = service
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._summary: dict | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._summary = await serve(
                self.service, ready=self._ready, stop=self._stop)

        asyncio.run(main())

    def start(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server failed to start within 30s")
        return self

    @property
    def port(self) -> int:
        return self.service.bound_port

    @property
    def address(self) -> tuple[str, int]:
        return (self.service.options.host, self.port)

    def stop(self, timeout: float = 30.0) -> dict | None:
        """Trigger drain and wait for the server thread to exit."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        return self._summary

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def request(self, method: str, path: str, body: dict | None = None,
                *, deadline: float | None = None,
                timeout: float = 60.0) -> tuple[int, dict]:
        """One plain-socket HTTP request (no external client library)."""
        import socket

        payload = b"" if body is None else json.dumps(body).encode()
        headers = [f"{method} {path} HTTP/1.1",
                   f"Host: {self.service.options.host}",
                   f"Content-Length: {len(payload)}",
                   "Content-Type: application/json",
                   "Connection: close"]
        if deadline is not None:
            headers.append(f"X-Deadline: {deadline}")
        raw = ("\r\n".join(headers) + "\r\n\r\n").encode() + payload
        with socket.create_connection(self.address,
                                      timeout=timeout) as sock:
            sock.sendall(raw)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        response = b"".join(chunks)
        head, _, tail = response.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        return status, json.loads(tail) if tail else {}
