"""Session checkpointing: an ECO-edit journal with recorded bases.

A served :class:`~repro.pipeline.session.CpprSession` is pure state —
the base design plus the exact sequence of applied updates determines
every answer bit-for-bit.  The journal exploits that: each successful
``update()`` appends its edits *and the validity basis the session
reached* (``(tree_epoch, values_version)``, per corner for
multi-corner sessions).  Recovery from a crashed session is then
**replay**: open a fresh session over the same engine, re-apply every
journaled edit in order, and verify the replayed basis equals the
recorded pre-crash basis — a structural proof that the restored
session is the exact pre-crash state (the test-suite additionally pins
the reports bit-for-bit against a never-crashed session).

The checkpoint wire format (``GET /sessions/{sid}/checkpoint``) is::

    {"design": "<token>", "entries": [
        {"eco": {"delays": [...], "clock": {...}},   # io.eco shape
         "basis": [tree_epoch, values_version]}      # or {corner: [..]}
     ],
     "basis": <final basis>}

and ``POST /sessions/restore`` accepts the same document, so a
checkpoint taken from one server process restores on another.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import FormatError
from repro.io.eco import EcoUpdates, eco_to_dict, parse_eco_updates
from repro.server.errors import SessionCrashed

__all__ = ["JournalEntry", "SessionJournal", "normalize_basis",
           "replay_journal"]


def normalize_basis(basis) -> object:
    """A JSON-stable form of a session basis (tuple or per-corner dict)."""
    if isinstance(basis, dict):
        return {name: [int(epoch), int(version)]
                for name, (epoch, version) in sorted(basis.items())}
    epoch, version = basis
    return [int(epoch), int(version)]


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One applied update and the basis the session reached after it."""

    eco: EcoUpdates
    basis: object  # normalized (list, or {corner: list})

    def to_dict(self) -> dict:
        return {"eco": eco_to_dict(self.eco), "basis": self.basis}


class SessionJournal:
    """Append-only edit history of one served session (thread-safe)."""

    def __init__(self, design: str) -> None:
        self.design = design
        self._lock = threading.Lock()
        self._entries: list[JournalEntry] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def record(self, eco: EcoUpdates, basis) -> None:
        """Append one *successfully applied* update."""
        with self._lock:
            self._entries.append(
                JournalEntry(eco, normalize_basis(basis)))

    def entries(self) -> tuple[JournalEntry, ...]:
        with self._lock:
            return tuple(self._entries)

    def expected_basis(self) -> object | None:
        """The basis the session must be at (``None`` = no edits yet)."""
        with self._lock:
            return self._entries[-1].basis if self._entries else None

    def to_dict(self) -> dict:
        """The checkpoint document (see module docstring)."""
        entries = self.entries()
        return {"design": self.design,
                "entries": [entry.to_dict() for entry in entries],
                "basis": entries[-1].basis if entries else None}

    @classmethod
    def from_dict(cls, raw: dict, where: str = "<checkpoint>"
                  ) -> "SessionJournal":
        """Parse a checkpoint document (FormatError diagnostics)."""
        if not isinstance(raw, dict):
            raise FormatError(f"{where}: expected a JSON object")
        design = raw.get("design")
        if not isinstance(design, str) or not design:
            raise FormatError(f"{where}: missing design token")
        entries = raw.get("entries", [])
        if not isinstance(entries, list):
            raise FormatError(f"{where}: 'entries' must be a list")
        journal = cls(design)
        for index, entry in enumerate(entries):
            here = f"{where}: entries[{index}]"
            if not isinstance(entry, dict) or "eco" not in entry \
                    or "basis" not in entry:
                raise FormatError(f"{here}: expected an object with "
                                  f"'eco' and 'basis'")
            eco = parse_eco_updates(entry["eco"], where=here)
            journal._entries.append(JournalEntry(eco, entry["basis"]))
        return journal


def replay_journal(journal: SessionJournal, engine):
    """A fresh session driven back to the journal's recorded state.

    Opens ``engine.session()`` and re-applies every journaled edit in
    order, verifying after the final entry that the replayed session's
    basis equals the recorded one.  Raises :class:`SessionCrashed`
    (structured 500) on divergence — a divergent replay must never be
    served as if it were the pre-crash session.
    """
    session = engine.session()
    for entry in journal.entries():
        session.update(delays=entry.eco.delays,
                       clock=dict(entry.eco.clock) or None)
    expected = journal.expected_basis()
    if expected is not None:
        reached = normalize_basis(session.basis())
        if reached != expected:
            raise SessionCrashed(
                f"journal replay diverged: reached basis {reached}, "
                f"journal recorded {expected}")
    return session
