"""Bounded admission: at most ``max_inflight`` requests execute, at
most ``queue_depth`` wait, everything beyond that is shed with a
structured 429.

The gate is thread-based (requests execute on a worker pool, so a
queued request parks its worker thread in ``Semaphore.acquire``) and
deadline-aware: the wait for an execution slot is capped at the
request's remaining budget, and a request whose deadline expires while
queued is shed as a 408 — it never starts computing an answer nobody
is waiting for.

Two metrics make the envelope observable: the ``server.inflight`` gauge
tracks concurrently executing requests, and the ``server.shed{reason}``
counter labels every rejection with why it happened —

``queue_full``
    the bounded queue was at capacity,
``overflow``
    the ``server.queue_overflow`` chaos site fired (modelling a
    memory-pressure shed while slots were nominally free),
``deadline``
    the request's budget expired while it waited,
``draining``
    the server was shutting down.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro import faults
from repro.obs import metrics as _metrics
from repro.server.errors import DeadlineError, Overloaded

__all__ = ["AdmissionGate"]

_INFLIGHT = _metrics.REGISTRY.gauge(
    "server.inflight",
    help="Requests currently executing on the timing server")

_SHED = _metrics.REGISTRY.counter(
    "server.shed", labels=("reason",),
    help="Requests rejected by the admission gate, by shed reason")


class AdmissionGate:
    """A counting semaphore with a bounded wait queue and shed metrics."""

    def __init__(self, max_inflight: int, queue_depth: int) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {queue_depth}")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._waiting = 0
        #: Total sheds by reason (plain ints — metrics counters only
        #: record under an active collector; these always do).
        self.shed_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    def _shed(self, reason: str) -> None:
        with self._lock:
            self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        _SHED.labels(reason=reason).inc_durable()

    def _retry_hint(self) -> float:
        """A crude Retry-After estimate: half a slot-turnover per waiter."""
        with self._lock:
            depth = self._waiting + max(0, self._inflight
                                        - self.max_inflight + 1)
        return max(0.5, 0.5 * depth)

    # ------------------------------------------------------------------
    @contextmanager
    def admit(self, remaining: float | None = None):
        """Hold one execution slot for the ``with`` body.

        ``remaining`` caps the queued wait (seconds; ``None`` waits
        forever).  Raises :class:`Overloaded` (429) when the queue is
        full or the ``server.queue_overflow`` site fires, and
        :class:`DeadlineError` (408) when the budget runs out first.
        """
        if faults.triggered("server.queue_overflow"):
            self._shed("overflow")
            raise Overloaded(
                "injected queue overflow: request shed",
                retry_after=self._retry_hint())
        with self._lock:
            depth = (self._inflight, self._waiting)
            full = (self._waiting >= self.queue_depth
                    and self._inflight >= self.max_inflight)
            if not full:
                self._waiting += 1
        if full:
            self._shed("queue_full")
            raise Overloaded(
                f"admission queue full ({depth[0]} in flight, "
                f"{depth[1]} queued)",
                retry_after=self._retry_hint())
        try:
            if remaining is not None and remaining <= 0.0:
                acquired = False
            else:
                acquired = self._slots.acquire(timeout=remaining)
        finally:
            with self._lock:
                self._waiting -= 1
        if not acquired:
            self._shed("deadline")
            raise DeadlineError(
                "deadline expired while queued for admission")
        with self._lock:
            self._inflight += 1
            _INFLIGHT.set(self._inflight)
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                _INFLIGHT.set(self._inflight)
            self._slots.release()
