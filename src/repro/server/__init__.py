"""CPPR-as-a-service: the fault-tolerant persistent timing server.

Designs load once; many concurrent sessions (copy-on-write values over
one shared immutable structure) serve the ``rank_paths`` /
``compute_slack`` / ``verify_path`` vocabulary per corner and mode,
with journaled ECO updates and checkpoint/restore.  The robustness
envelope — per-request deadlines, bounded admission with load-shedding,
a per-design circuit breaker over the degradation ladder, and
crash recovery by journal replay — lives in the submodules:

========================  ============================================
:mod:`repro.server.service`   the transport-independent request core
:mod:`repro.server.http`      asyncio HTTP/1.1 adapter + drain
:mod:`repro.server.admission` bounded queue, 429 shedding, metrics
:mod:`repro.server.breaker`   per-design circuit breaker / demotion
:mod:`repro.server.journal`   ECO journal, checkpoint, verified replay
:mod:`repro.server.errors`    the structured error vocabulary
========================  ============================================

See ``docs/SERVER.md`` for the endpoint reference and semantics.
"""

from repro.server.errors import ApiError
from repro.server.http import BackgroundServer, run_server
from repro.server.service import ServerOptions, TimingService

__all__ = ["ApiError", "BackgroundServer", "ServerOptions",
           "TimingService", "run_server"]
