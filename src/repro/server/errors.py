"""Structured error vocabulary of the timing service.

Every failure a client can observe maps to one :class:`ApiError`
subclass carrying an HTTP status and a stable machine-readable ``code``.
The service converts an error to a JSON body of the form::

    {"ok": false,
     "error": {"code": "deadline", "message": "...", "retry_after": 1.5}}

so a deadline-expired or shed request is always a *structured* 408/429
document — never a partial report, never a bare connection reset.
``retry_after`` (seconds, optional) doubles as the ``Retry-After``
response header; the admission gate stamps it on shed responses and the
circuit breaker on open-circuit 503s.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ReproError

__all__ = ["ApiError", "BadRequest", "BreakerOpen", "DeadlineError",
           "Draining", "InternalError", "MethodNotAllowed", "NotFound",
           "Overloaded", "SessionCrashed"]


class ApiError(ReproError):
    """Base class: an HTTP status plus a stable error code."""

    status = 500
    code = "internal"

    def __init__(self, message: str, *,
                 retry_after: float | None = None,
                 details: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.details = dict(details or {})

    def body(self) -> dict[str, Any]:
        """The structured JSON document served for this error."""
        error: dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.retry_after is not None:
            error["retry_after"] = round(float(self.retry_after), 3)
        if self.details:
            error["details"] = self.details
        return {"ok": False, "error": error}


class BadRequest(ApiError):
    """Malformed request: unknown fields, bad types, invalid values."""

    status = 400
    code = "bad_request"


class NotFound(ApiError):
    """Unknown route, design token, or session id."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ApiError):
    """The path exists but not with this HTTP method."""

    status = 405
    code = "method_not_allowed"


class DeadlineError(ApiError):
    """The request's deadline expired before a full answer existed."""

    status = 408
    code = "deadline"


class Overloaded(ApiError):
    """Load shed: the bounded admission queue rejected the request."""

    status = 429
    code = "overloaded"


class BreakerOpen(ApiError):
    """The design's circuit breaker is open; retry after the cooldown."""

    status = 503
    code = "breaker_open"


class Draining(ApiError):
    """The server is finishing in-flight work before shutting down."""

    status = 503
    code = "draining"


class SessionCrashed(ApiError):
    """A session crashed and journal replay could not restore it."""

    status = 500
    code = "session_crashed"


class InternalError(ApiError):
    """An unexpected failure the service could not recover from."""

    status = 500
    code = "internal"
