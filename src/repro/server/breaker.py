"""Per-design circuit breaker over the engine's degradation ladder.

The PR 4 scheduler already recovers *inside* a query: a fault walks the
``batched -> array -> scalar`` / ``process -> thread -> serial``
ladders and the answer stays exact.  The breaker closes the loop
*across* queries: a design whose requests keep coming back degraded is
paying ladder-walk latency on every call, so the breaker proactively
**demotes** the design to the safer rung the queries were ending up on
anyway (first ``batch_levels="off"``, then ``backend="scalar"``) and
re-probes the configured rung after a cooldown.  Demotion changes how
fast answers are computed, never what they contain — every rung is
bit-for-bit equivalent.

Hard failures are handled classically: ``failure_threshold``
consecutive errors **open** the circuit and requests for that design
are rejected with a structured 503 carrying a ``Retry-After`` hint;
after the cooldown one half-open probe decides between closing and
re-opening.

State transitions are counted on ``server.breaker{event}``
(``open`` / ``half_open`` / ``close`` / ``demote`` / ``promote``).
"""

from __future__ import annotations

import threading
import time

from repro.obs import metrics as _metrics
from repro.server.errors import BreakerOpen

__all__ = ["CircuitBreaker", "DEMOTION_RUNGS"]

_BREAKER = _metrics.REGISTRY.counter(
    "server.breaker", labels=("event",),
    help="Circuit-breaker state transitions on the timing server")

#: Option overrides per demotion rung, safest last.  Rung 0 is the
#: design's configured options; each next rung pre-applies the safer
#: strategy degraded queries were falling back to.
DEMOTION_RUNGS: tuple[dict, ...] = (
    {},
    {"batch_levels": "off"},
    {"batch_levels": "off", "backend": "scalar"},
)


class CircuitBreaker:
    """Degraded-result and failure tracking for one served design."""

    def __init__(self, *, failure_threshold: int = 3,
                 degraded_threshold: int = 3,
                 cooldown: float = 30.0,
                 clock=time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.degraded_threshold = degraded_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"  # closed | open | half_open
        self.rung = 0
        self._failures = 0
        self._degraded = 0
        self._opened_at: float | None = None
        self._demoted_at: float | None = None

    # ------------------------------------------------------------------
    def _event(self, name: str) -> None:
        _BREAKER.labels(event=name).inc_durable()

    def retry_after(self) -> float:
        """Seconds until the next state probe is due."""
        with self._lock:
            stamp = (self._opened_at if self.state == "open"
                     else self._demoted_at)
        if stamp is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - stamp))

    # ------------------------------------------------------------------
    def before_request(self) -> int:
        """Gate one request; returns the demotion rung to serve it on.

        Raises :class:`BreakerOpen` (503 + ``Retry-After``) while the
        circuit is open inside its cooldown.  After the cooldown one
        caller is let through as the half-open probe; its outcome
        (:meth:`record_success` / :meth:`record_failure`) decides
        between closing and re-opening.  A demoted-but-closed design
        promotes back to the configured rung once its cooldown passes.
        """
        now = self._clock()
        with self._lock:
            if self.state == "open":
                opened_at = (self._opened_at if self._opened_at
                             is not None else now)
                elapsed = now - opened_at
                if elapsed < self.cooldown:
                    remaining = self.cooldown - elapsed
                    raise BreakerOpen(
                        f"circuit open for this design; retry in "
                        f"{remaining:.1f}s", retry_after=remaining)
                self.state = "half_open"
                self._event("half_open")
            elif self.rung > 0 and self._demoted_at is not None \
                    and now - self._demoted_at >= self.cooldown:
                # Cooled down: probe the configured fast rung again.
                self.rung = 0
                self._demoted_at = None
                self._degraded = 0
                self._event("promote")
            return self.rung

    # ------------------------------------------------------------------
    def record_success(self, degraded: bool = False) -> None:
        """Account one completed request (``degraded`` = exact result,
        but only after an in-query fallback)."""
        with self._lock:
            self._failures = 0
            if self.state in ("half_open", "open"):
                self.state = "closed"
                self._opened_at = None
                self._event("close")
            if not degraded:
                self._degraded = 0
                return
            self._degraded += 1
            if (self._degraded >= self.degraded_threshold
                    and self.rung < len(DEMOTION_RUNGS) - 1):
                self.rung += 1
                self._degraded = 0
                self._demoted_at = self._clock()
                self._event("demote")

    def record_failure(self) -> None:
        """Account one hard failure (error or unrecovered crash)."""
        with self._lock:
            self._failures += 1
            if self.state == "half_open" \
                    or self._failures >= self.failure_threshold:
                if self.state != "open":
                    self._event("open")
                self.state = "open"
                self._failures = 0
                self._opened_at = self._clock()

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """A JSON-ready snapshot for status endpoints."""
        with self._lock:
            return {"state": self.state,
                    "rung": self.rung,
                    "rung_overrides": dict(DEMOTION_RUNGS[self.rung]),
                    "retry_after": round(self.retry_after_locked(), 3)}

    def retry_after_locked(self) -> float:
        stamp = (self._opened_at if self.state == "open"
                 else self._demoted_at)
        if stamp is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - stamp))
