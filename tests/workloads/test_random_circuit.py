"""Tests for the parametric random design generator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.circuit.validate import validate_graph
from repro.workloads.random_circuit import RandomDesignSpec, random_design


class TestSpecValidation:
    def test_zero_ffs_rejected(self):
        with pytest.raises(ValueError):
            RandomDesignSpec(num_ffs=0)

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            RandomDesignSpec(clock_depth=0)

    def test_bad_global_mix_rejected(self):
        with pytest.raises(ValueError):
            RandomDesignSpec(global_mix=1.5)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RandomDesignSpec(recent_window=0)

    def test_zero_gate_inputs_rejected(self):
        with pytest.raises(ValueError):
            RandomDesignSpec(max_gate_inputs=0)


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        spec = RandomDesignSpec(seed=5, num_ffs=10, num_gates=20)
        a = random_design(spec)
        b = random_design(spec)
        assert a.num_pins == b.num_pins
        assert a.num_edges == b.num_edges
        assert [p.name for p in a.pins] == [p.name for p in b.pins]
        assert a.fanout == b.fanout

    def test_different_seeds_differ(self):
        a = random_design(RandomDesignSpec(seed=1, num_ffs=10,
                                           num_gates=30))
        b = random_design(RandomDesignSpec(seed=2, num_ffs=10,
                                           num_gates=30))
        assert a.fanout != b.fanout

    def test_counts_match_spec(self):
        spec = RandomDesignSpec(seed=3, num_ffs=12, num_gates=25,
                                num_pis=3, num_pos=5)
        graph = random_design(spec)
        assert graph.num_ffs == 12
        assert len(graph.primary_inputs) == 3
        assert len(graph.primary_outputs) == 5

    def test_every_d_pin_is_driven(self):
        graph = random_design(RandomDesignSpec(seed=4, num_ffs=15,
                                               num_gates=30))
        for ff in graph.ffs:
            assert graph.fanin[ff.d_pin], f"{ff.name} D pin undriven"

    def test_clock_depth_is_respected(self):
        spec = RandomDesignSpec(seed=6, num_ffs=64, num_gates=10,
                                clock_depth=4, depth_jitter=0.0)
        graph = random_design(spec)
        assert graph.clock_tree.num_levels == 4

    def test_depth_jitter_allows_shallower_leaves(self):
        spec = RandomDesignSpec(seed=6, num_ffs=64, num_gates=10,
                                clock_depth=4, depth_jitter=0.9)
        tree = random_design(spec).clock_tree
        depths = {tree.depth(leaf) for leaf in tree.leaves()}
        assert min(depths) < 4  # some leaves attached early
        assert tree.num_levels <= 4

    def test_minimal_design(self):
        graph = random_design(RandomDesignSpec(
            seed=0, num_ffs=1, num_gates=1, num_pis=0, num_pos=0,
            clock_depth=1))
        validate_graph(graph)
        assert graph.num_ffs == 1


@given(st.integers(min_value=0, max_value=3000))
def test_generated_designs_are_always_valid(seed):
    spec = RandomDesignSpec(seed=seed, num_ffs=8, num_gates=15,
                            num_pis=2, num_pos=2, clock_depth=3)
    validate_graph(random_design(spec))
