"""Tests for the scaled benchmark suite and design statistics."""

from __future__ import annotations

import pytest

from repro.circuit.validate import validate_graph
from repro.sta.arrival import propagate_arrivals
from repro.sta.timing import TimingAnalyzer
from repro.workloads.stats import (DesignStats, design_statistics,
                                   total_connected_pairs)
from repro.workloads.suite import (SUITE_SPECS, build_design, design_names,
                                   suggest_clock_period)
from tests.helpers import demo_netlist, two_ff_design


class TestSuite:
    def test_eight_designs_in_table_three_order(self):
        assert design_names() == ["vga_lcdv2", "combo4v2", "combo5v2",
                                  "combo6v2", "combo7v2", "netcard",
                                  "leon2", "leon3mp"]

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError, match="unknown design"):
            build_design("nonexistent")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            build_design("vga_lcdv2", scale=0)

    def test_small_scale_builds_and_validates(self):
        for name in design_names():
            graph, constraints = build_design(name, scale=0.05)
            validate_graph(graph)
            assert constraints.clock_period > 0

    def test_scale_grows_the_design(self):
        small, _c1 = build_design("vga_lcdv2", scale=0.05)
        big, _c2 = build_design("vga_lcdv2", scale=0.2)
        assert big.num_ffs > small.num_ffs
        assert big.num_edges > small.num_edges

    def test_build_is_deterministic(self):
        a, ca = build_design("combo4v2", scale=0.1)
        b, cb = build_design("combo4v2", scale=0.1)
        assert a.fanout == b.fanout
        assert ca.clock_period == cb.clock_period

    def test_period_makes_worst_setup_slack_slightly_negative(self):
        graph, constraints = build_design("vga_lcdv2", scale=0.1)
        analyzer = TimingAnalyzer(graph, constraints)
        worst = analyzer.worst_endpoint("setup")
        assert worst.slack < 0
        # utilization 0.95 -> at most ~5% of the period below zero.
        assert worst.slack > -0.2 * constraints.clock_period


class TestSuggestClockPeriod:
    def test_bad_utilization_rejected(self):
        graph, _ = build_design("vga_lcdv2", scale=0.05)
        with pytest.raises(ValueError):
            suggest_clock_period(graph, utilization=0)

    def test_utilization_one_makes_worst_slack_zero(self):
        from repro import TimingConstraints
        graph, _constraints = two_ff_design()
        period = suggest_clock_period(graph, utilization=1.0)
        analyzer = TimingAnalyzer(graph, TimingConstraints(period))
        worst = analyzer.worst_endpoint("setup")
        assert worst.slack == pytest.approx(0.0, abs=1e-9)

    def test_design_without_reachable_endpoints_defaults(self):
        # A clock-less design has no FF endpoints at all.
        from repro import Netlist
        clockless = Netlist("c")
        clockless.add_primary_input("a")
        clockless.add_primary_output("y", rat_late=1.0)
        clockless.connect("a", "y")
        graph = clockless.elaborate()
        assert suggest_clock_period(graph) == 1.0


class TestStats:
    def test_two_ff_connected_pairs(self):
        graph, _ = two_ff_design()
        # Only ffa -> ffb.
        assert total_connected_pairs(graph) == 1

    def test_demo_connected_pairs(self):
        graph = demo_netlist().elaborate()
        # ff1 -> {ff2, ff4}; ff3 -> {ff2, ff4}; ff2 -> ff1.
        assert total_connected_pairs(graph) == 5

    def test_design_statistics_fields(self):
        graph = demo_netlist().elaborate()
        stats = design_statistics(graph)
        assert stats.name == "demo"
        assert stats.num_ffs == 4
        assert stats.num_levels == 2
        assert stats.ffs_per_level == pytest.approx(2.0)
        assert stats.ff_connectivity == pytest.approx(5 / 4)
        # data edges + clock tree edges (root + 2 buffers + 4 leaves - 1)
        assert stats.num_edges == graph.num_edges + 6

    def test_row_and_header_align(self):
        graph = demo_netlist().elaborate()
        stats = design_statistics(graph)
        assert len(stats.row()) > 0
        assert DesignStats.header().split() == [
            "Benchmark", "#Edges", "#FFs", "D", "#FFs/D", "FFconn"]

    def test_suite_connectivity_ordering(self):
        """The dense designs must dominate the sparse ones (Table III)."""
        connectivity = {}
        for name in ("vga_lcdv2", "leon2"):
            graph, _c = build_design(name, scale=0.25)
            connectivity[name] = design_statistics(graph).ff_connectivity
        assert connectivity["leon2"] > 2 * connectivity["vga_lcdv2"]
